//! `deptree gateway`: a supervising front for a fleet of `deptree serve`
//! workers — sharding, health-probed respawn, and a self-healing data
//! plane (DESIGN.md §12).
//!
//! The gateway is one process that:
//!
//! - **spawns and supervises** N worker processes on ephemeral ports
//!   ([`supervisor`]): crash → exponential-backoff respawn, crash loop →
//!   quarantine, wedged worker → `/readyz` probes declare it dead;
//! - **places datasets** ([`shard`]): whole datasets get a digest-stable
//!   home worker (plus optional replicas), sharded datasets are split
//!   into contiguous row slices — each slice registered as `dataset#i`
//!   on its primary and on `--replicas` successor workers — with the
//!   full snapshot retained in the gateway for merging;
//! - **routes requests**: single-dataset requests are proxied to the
//!   home worker byte-for-byte (replica failover on refusal), discovery
//!   over a sharded dataset fans out per slice under a split budget to
//!   the least-loaded live copy (hedging to the next copy when the
//!   first runs slow) and merges with full-snapshot re-validation
//!   ([`merge`]);
//! - **heals instead of degrading**: a background replane loop watches
//!   the routing table — a slice whose every boot copy is dead gets
//!   re-homed onto a live survivor by POSTing the retained slice file
//!   (`/admin/datasets`), and re-absorbed back once the primary has
//!   settled. A crash is a degraded blip of at most one replane tick,
//!   not a respawn-backoff-long outage;
//! - **restarts rolling**: `POST /admin/reload` (or SIGHUP) drains one
//!   worker at a time — pre-homing its sole copies, waiting for the
//!   respawn to go ready before touching the next slot — so capacity
//!   never drops below N−1 and no request is refused;
//! - **front-ends with the same hardened listener** as `deptree serve`
//!   ([`crate::listener`]): admission control, slow-loris bounds, panic
//!   barrier, and the two-phase drain all apply unchanged.
//!
//! Lifecycle on SIGTERM: stop accepting, drain in-flight fan-outs,
//! SIGTERM every worker, reap each under a grace (SIGKILL past it),
//! exit 0 — see [`GatewayHandle::drain_and_join`].

mod chaos;
mod merge;
mod shard;
mod supervisor;

pub use shard::DatasetSpec;

use crate::client::{self, ClientConfig};
use crate::drain::DrainState;
use crate::json::Json;
use crate::listener::{spawn_service, ListenOpts, ServerHandle, Service, ServiceReply};
use crate::protocol::{error_body, ErrorCode, Request};
use crate::router::{self, AppState};
use crate::telemetry;
use deptree_core::engine::obs::Gauge;
use deptree_core::engine::Budget;
use deptree_core::DeptreeError;
use merge::ShardReply;
use shard::SliceRoute;
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};
use supervisor::{log, Supervisor, SupervisorConfig};

/// Everything `spawn_gateway` needs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The worker binary; normally the running `deptree` binary itself.
    pub worker_bin: PathBuf,
    /// How many workers to supervise.
    pub workers: usize,
    /// Extra copies of each dataset on successor workers: proxy
    /// failover for whole datasets, replica reads for sharded slices.
    pub replicas: usize,
    /// Datasets to place, from `--data` / `--shard`.
    pub datasets: Vec<DatasetSpec>,
    /// Parse CSVs leniently (drop bad rows with a warning).
    pub lossy: bool,
    /// Engine threads per worker (and for the gateway's local tasks).
    pub worker_threads: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard cap on any requested deadline.
    pub max_deadline: Duration,
    /// Base respawn delay after a worker crash.
    pub respawn_base: Duration,
    /// Cap on the exponential respawn delay.
    pub respawn_max: Duration,
    /// Uptime below this counts as a fast crash (quarantine fuel).
    pub fast_crash: Duration,
    /// Consecutive fast crashes before a worker is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined worker sits out before probation.
    pub quarantine_cooldown: Duration,
    /// How often each Up worker's `/readyz` is probed.
    pub probe_interval: Duration,
    /// Consecutive failed probes before a worker is declared dead.
    pub probe_failures: u32,
    /// How long a starting worker may take to announce its address.
    pub spawn_timeout: Duration,
    /// SIGTERM→SIGKILL grace per worker at shutdown and rolling drain.
    pub child_grace: Duration,
    /// Test-only: arm a deterministic kill/wedge/slow schedule derived
    /// from this seed against the fleet ([`chaos`]).
    pub chaos_seed: Option<u64>,
    /// Front-end transport knobs (bind address, admission, timeouts).
    pub listen: ListenOpts,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            worker_bin: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("deptree")),
            workers: 4,
            replicas: 0,
            datasets: Vec::new(),
            lossy: false,
            worker_threads: 1,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            respawn_base: Duration::from_millis(500),
            respawn_max: Duration::from_secs(15),
            fast_crash: Duration::from_secs(1),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(30),
            probe_interval: Duration::from_millis(500),
            probe_failures: 3,
            spawn_timeout: Duration::from_secs(10),
            child_grace: Duration::from_secs(5),
            chaos_seed: None,
            listen: ListenOpts::default(),
        }
    }
}

/// How often the replane loop re-examines the routing table. A dead
/// slice is therefore unreachable for at most one tick plus one
/// slice-file POST before a survivor serves it.
const REPLANE_INTERVAL: Duration = Duration::from_millis(50);

/// A point-in-time copy of every slice's route and overlay entry,
/// taken under the read lock so healing decisions run outside it.
type RouteSnapshot = Vec<(String, SliceRoute, Option<(usize, u64)>)>;

/// One slice's runtime routing state: the boot placement plus the
/// healing overlay.
struct SliceState {
    route: SliceRoute,
    /// Survivor currently holding a POSTed copy of the slice, recorded
    /// with the epoch it was POSTed under: an epoch move means the copy
    /// died with that process, invalidating the entry.
    rehomed: Option<(usize, u64)>,
}

/// The gateway's [`Service`]: routing on top of the shared listener.
struct GatewayState {
    supervisor: Arc<Supervisor>,
    /// Full snapshots of sharded datasets; answers non-discovery tasks
    /// locally and re-validates merged candidates.
    local: AppState,
    /// Sharded dataset → runtime routing table, one entry per slice.
    slices: RwLock<BTreeMap<String, Vec<SliceState>>>,
    /// Whole dataset → candidate workers (home first, then replicas).
    homes: BTreeMap<String, Vec<usize>>,
    drain: Arc<DrainState>,
    default_deadline: Duration,
    max_deadline: Duration,
    /// Gateway→worker in-flight gauges, one per slot; the fan-out sorts
    /// slice copies by these to pick the least-loaded one.
    inflight: Vec<Arc<Gauge>>,
    /// Set while the coordinator is running a rolling restart.
    reloading: AtomicBool,
    /// Edge-trigger from `/admin/reload` / SIGHUP to the coordinator.
    reload_requested: AtomicBool,
    /// How long a rolling restart waits for a drained slot to return.
    restart_wait: Duration,
    /// Idle keep-alive connections to workers, shared across the proxy,
    /// catalogue, metrics and slice-read paths. A worker restart leaves
    /// stale sockets behind; the pooled client falls back to a fresh
    /// dial, so staleness costs one round trip, never a failed request.
    pool: client::ConnPool,
}

impl Service for GatewayState {
    fn respond(&self, req: &Request) -> ServiceReply {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => ServiceReply::Text(200, self.aggregated_metrics()),
            ("GET", "/healthz") => ServiceReply::Json(200, self.healthz()),
            ("GET", "/readyz") => {
                let (status, body) = self.readyz();
                ServiceReply::Json(status, body)
            }
            ("GET", "/v1/datasets") => ServiceReply::Json(200, self.catalogue()),
            (
                "POST",
                "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup",
            ) => self.task(req),
            ("POST", "/admin/reload") => self.reload(),
            (_, "/admin/reload") => {
                reply_err(ErrorCode::MethodNotAllowed, "use POST /admin/reload")
            }
            // Worker-internal surface: the replane loop POSTs slices to
            // workers directly; letting these through to the gateway's
            // own router would silently mutate the merge snapshot.
            (_, "/admin/datasets" | "/admin/datasets/drop") => reply_err(
                ErrorCode::Unsupported,
                "dataset admin is internal to the data plane; place datasets via gateway flags",
            ),
            // Everything else (method mismatches, unknown routes) gets the
            // router's own answers, byte-identical to a single worker's.
            _ => {
                let (status, body) = router::handle(&self.local, req);
                ServiceReply::Json(status, body)
            }
        }
    }

    fn drain_handle(&self) -> &Arc<DrainState> {
        &self.drain
    }
}

impl GatewayState {
    fn healthz(&self) -> Json {
        Json::obj()
            .set("status", "ok")
            .set("draining", self.drain.is_draining())
            .set("inflight", self.drain.inflight() as u64)
            .set("workers", self.supervisor.status_json())
            .set("quarantined", self.supervisor.quarantined_count() as u64)
            .set("resharded", self.resharded_count())
            .set("reloading", self.reloading.load(Ordering::Acquire))
    }

    /// Slices currently living on a re-homed survivor copy.
    fn resharded_count(&self) -> u64 {
        let table = self.slices.read().unwrap_or_else(PoisonError::into_inner);
        table
            .values()
            .flat_map(|slices| slices.iter())
            .filter(|s| s.rehomed.is_some())
            .count() as u64
    }

    fn readyz(&self) -> (u16, Json) {
        if self.drain.is_draining() {
            return (
                503,
                Json::obj().set("ready", false).set(
                    "error",
                    Json::obj()
                        .set("code", ErrorCode::Draining.wire())
                        .set("message", "server is draining; retry elsewhere"),
                ),
            );
        }
        let up = self.supervisor.live_count();
        if up == 0 {
            return (
                503,
                Json::obj().set("ready", false).set(
                    "error",
                    Json::obj()
                        .set("code", ErrorCode::Overloaded.wire())
                        .set("message", "no live workers"),
                ),
            );
        }
        (
            200,
            Json::obj().set("ready", true).set("workers_up", up as u64),
        )
    }

    /// Union catalogue: sharded datasets from the local snapshots (full
    /// row counts, not slice counts), whole datasets from their home
    /// worker's own catalogue. Unreachable datasets are omitted; they
    /// reappear when a home or replica comes back.
    fn catalogue(&self) -> Json {
        let mut entries: BTreeMap<String, (u64, u64)> = self
            .local
            .dataset_summaries()
            .into_iter()
            .map(|(name, rows, columns)| (name, (rows as u64, columns as u64)))
            .collect();
        let mut fetched: BTreeMap<usize, Option<Json>> = BTreeMap::new();
        for (name, holders) in &self.homes {
            for &w in holders {
                let Some(addr) = self.supervisor.worker_addr(w) else {
                    continue;
                };
                let body = fetched.entry(w).or_insert_with(|| {
                    client::query_pooled(
                        &self.pool,
                        &self.worker_client(&addr, 0, Duration::from_secs(5)),
                        "GET",
                        "/v1/datasets",
                        None,
                    )
                    .ok()
                    .map(|r| r.body)
                });
                let Some(body) = body else { continue };
                let found = body
                    .get("datasets")
                    .and_then(Json::as_arr)
                    .and_then(|list| {
                        list.iter()
                            .find(|d| d.str_field("name") == Some(name.as_str()))
                            .map(|d| {
                                (
                                    d.u64_field("rows").unwrap_or(0),
                                    d.u64_field("columns").unwrap_or(0),
                                )
                            })
                    });
                if let Some(dims) = found {
                    entries.insert(name.clone(), dims);
                    break;
                }
            }
        }
        let list: Vec<Json> = entries
            .iter()
            .map(|(name, (rows, columns))| {
                Json::obj()
                    .set("name", name.as_str())
                    .set("rows", *rows)
                    .set("columns", *columns)
            })
            .collect();
        Json::obj().set("datasets", list)
    }

    /// Gateway registry first, then every live worker's exposition with
    /// a `worker="N"` label injected so same-named series stay apart.
    fn aggregated_metrics(&self) -> String {
        let mut out = telemetry::render();
        for (w, addr) in self.supervisor.live() {
            let cfg = self.worker_client(&addr, 0, Duration::from_secs(5));
            if let Ok((200, text)) = client::fetch_text_pooled(&self.pool, &cfg, "/metrics") {
                out.push_str(&telemetry::relabel_worker(&text, w));
            }
        }
        out
    }

    /// Kick off a rolling restart: flag the coordinator thread and
    /// return immediately — progress is observable in `/healthz`
    /// (`reloading`) and the per-worker restart counters.
    fn reload(&self) -> ServiceReply {
        let _inflight = self.drain.track();
        if self.drain.is_draining() {
            return reply_err(ErrorCode::Draining, "server is draining");
        }
        if !self.request_reload() {
            return reply_err(
                ErrorCode::Overloaded,
                "a rolling restart is already in progress",
            );
        }
        log("rolling restart requested via POST /admin/reload");
        ServiceReply::Json(
            200,
            Json::obj()
                .set("reload", "started")
                .set("workers", self.supervisor.slot_count() as u64),
        )
    }

    /// Edge-trigger a rolling restart; `false` when one is already
    /// running or pending.
    fn request_reload(&self) -> bool {
        if self.reloading.load(Ordering::Acquire) {
            return false;
        }
        !self.reload_requested.swap(true, Ordering::AcqRel)
    }

    fn task(&self, req: &Request) -> ServiceReply {
        // Track before the drain check, like the router: the drain
        // coordinator must never miss a fan-out that raced past the flag.
        let _inflight = self.drain.track();
        if self.drain.is_draining() {
            return reply_err(ErrorCode::Draining, "server is draining");
        }
        let body = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_owned())
            .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(msg) => return reply_err(ErrorCode::Parse, &msg),
        };
        let Some(name) = body.str_field("dataset") else {
            return reply_err(ErrorCode::BadRequest, "missing `dataset` field");
        };
        if self.local.dataset(name).is_some() {
            if req.path == "/v1/discover" {
                return self.fan_out(name, &body);
            }
            // Validate/detect/repair/dedup on a sharded dataset: answer
            // from the full local snapshot through the shared router, so
            // the rendering path (and therefore the bytes) match a
            // single worker holding the whole dataset.
            let (status, body) = router::handle(&self.local, req);
            return ServiceReply::Json(status, body);
        }
        let name = name.to_owned();
        match self.homes.get(&name) {
            Some(holders) => self.proxy(req, &name, holders),
            None => reply_err(ErrorCode::NotFound, &format!("unknown dataset `{name}`")),
        }
    }

    /// Proxy a whole-dataset request to its home worker, failing over to
    /// replicas in digest order. The worker's response body is forwarded
    /// byte-for-byte. A holder that answers but only to refuse (429
    /// overloaded / 503 draining — e.g. mid rolling restart with its
    /// retry budget spent) is treated as a failover signal too; its
    /// refusal is forwarded only when every holder refused.
    fn proxy(&self, req: &Request, name: &str, holders: &[usize]) -> ServiceReply {
        let deadline = self.deadline_of(req);
        let mut last_err: Option<client::ClientError> = None;
        let mut last_refusal: Option<client::RawResponse> = None;
        for &w in holders {
            let Some(addr) = self.supervisor.worker_addr(w) else {
                continue;
            };
            let cfg = self.worker_client(&addr, 1, deadline);
            match client::forward_pooled(&self.pool, &cfg, &req.method, &req.path, Some(&req.body))
            {
                Ok(raw) if matches!(raw.status, 429 | 503) => {
                    log(&format!(
                        "proxy of `{name}` to worker {w} refused ({}): failing over",
                        raw.status
                    ));
                    last_refusal = Some(raw);
                }
                Ok(raw) => {
                    telemetry::gateway_metrics().proxied.inc();
                    return ServiceReply::Bytes(raw.status, raw.body);
                }
                Err(e) => {
                    log(&format!(
                        "proxy of `{name}` to worker {w} failed ({}): failing over",
                        e.code.wire()
                    ));
                    last_err = Some(e);
                }
            }
        }
        if let Some(raw) = last_refusal {
            telemetry::gateway_metrics().proxied.inc();
            return ServiceReply::Bytes(raw.status, raw.body);
        }
        match last_err {
            Some(e) => reply_err(
                e.code,
                &format!("every holder of `{name}` failed; last: {}", e.message),
            ),
            None => reply_err(
                ErrorCode::Overloaded,
                &format!("no live worker holds `{name}` (respawning); retry"),
            ),
        }
    }

    /// Row-sharded discovery: scatter per slice to the least-loaded live
    /// copy under a split budget — hedging to the next copy when the
    /// first runs slow — then union + re-validate on the full snapshot.
    /// Always 200 — a missing slice degrades the merge, never the
    /// request.
    fn fan_out(&self, name: &str, body: &Json) -> ServiceReply {
        let started = Instant::now();
        let routes: Vec<(SliceRoute, Option<(usize, u64)>)> = {
            let table = self.slices.read().unwrap_or_else(PoisonError::into_inner);
            match table.get(name) {
                Some(list) => list.iter().map(|s| (s.route.clone(), s.rehomed)).collect(),
                None => return reply_err(ErrorCode::Internal, "sharded dataset lost its plan"),
            }
        };
        let Some(full) = self.local.dataset(name) else {
            return reply_err(ErrorCode::Internal, "sharded dataset lost its snapshot");
        };
        let shards = routes.len().max(1);

        // One request budget, split into per-shard shares. Counter caps
        // divide (ceil); the wall-clock deadline is shared because the
        // shards run concurrently.
        let deadline = match body.get("timeout_ms") {
            None => self.default_deadline,
            Some(v) => match v.as_u64() {
                Some(ms) => Duration::from_millis(ms).min(self.max_deadline),
                None => {
                    return reply_err(
                        ErrorCode::InvalidConfig,
                        "bad `timeout_ms` (want a non-negative integer)",
                    )
                }
            },
        };
        let mut budget = Budget::new().with_deadline(deadline);
        for (field, setter) in [
            (
                "max_nodes",
                Budget::with_max_nodes as fn(Budget, u64) -> Budget,
            ),
            ("max_rows", Budget::with_max_rows),
        ] {
            if let Some(v) = body.get(field) {
                match v.as_u64() {
                    Some(n) => budget = setter(budget, n),
                    None => {
                        return reply_err(
                            ErrorCode::InvalidConfig,
                            &format!("bad `{field}` (want a non-negative integer)"),
                        )
                    }
                }
            }
        }
        let share = budget.split(shards);
        let error = body.f64_field("error").unwrap_or(0.0);
        // Holder-independent payload: every copy registers the slice
        // under the same `dataset#i` name, so only `dataset` varies per
        // slice, never per copy.
        let mut wbody = Json::obj()
            .set("max_lhs", body.u64_field("max_lhs").unwrap_or(2))
            .set("error", error)
            .set("timeout_ms", deadline.as_millis() as u64);
        if let Some(n) = share.max_nodes {
            wbody = wbody.set("max_nodes", n);
        }
        if let Some(n) = share.max_rows {
            wbody = wbody.set("max_rows", n);
        }
        let hedge = hedge_delay(deadline);
        let mut replies: Vec<ShardReply> = Vec::with_capacity(shards);
        let mut joins = Vec::new();
        for (route, rehomed) in routes {
            let candidates = self.slice_candidates(&route, rehomed, deadline);
            if candidates.is_empty() {
                replies.push(ShardReply {
                    shard: route.index,
                    worker: route.primary,
                    outcome: Err("down (respawning)".into()),
                });
                continue;
            }
            let payload = wbody.clone().set("dataset", route.slice_name.as_str());
            let (shard_idx, primary) = (route.index, route.primary);
            let pool = self.pool.clone();
            let handle = std::thread::Builder::new()
                .name(format!("deptree-fanout-{shard_idx}"))
                .spawn(move || slice_read(&pool, candidates, payload, hedge));
            match handle {
                Ok(h) => joins.push((shard_idx, primary, h)),
                Err(e) => replies.push(ShardReply {
                    shard: shard_idx,
                    worker: primary,
                    outcome: Err(format!("fan-out thread failed to spawn: {e}")),
                }),
            }
        }
        for (shard_idx, primary, h) in joins {
            let (worker, outcome) = match h.join() {
                Ok(done) => done,
                Err(_) => (primary, Err("fan-out thread panicked".into())),
            };
            replies.push(ShardReply {
                shard: shard_idx,
                worker,
                outcome,
            });
        }

        let out = merge::merge_discover(name, &full, error, shards, &replies, started.elapsed());
        let m = telemetry::gateway_metrics();
        m.fanout_latency.observe_duration(started.elapsed());
        if out.degraded {
            m.degraded.inc();
        }
        ServiceReply::Json(200, out.body)
    }

    /// The live copies of one slice, least-loaded first (in-flight
    /// gauge), primary preferred on ties: the boot primary, a
    /// still-valid re-homed copy, then the boot replicas.
    fn slice_candidates(
        &self,
        route: &SliceRoute,
        rehomed: Option<(usize, u64)>,
        deadline: Duration,
    ) -> Vec<SliceCandidate> {
        let mut ids = vec![route.primary];
        if let Some((w, epoch)) = rehomed {
            // An epoch move means the POSTed copy died with the old
            // process; the replane loop will rebuild it.
            if self.supervisor.epoch_of(w) == Some(epoch) {
                ids.push(w);
            }
        }
        ids.extend(route.replicas.iter().copied());
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for w in ids {
            if !seen.insert(w) {
                continue;
            }
            let Some(addr) = self.supervisor.worker_addr(w) else {
                continue;
            };
            out.push(SliceCandidate {
                worker: w,
                config: self.worker_client(&addr, 1, deadline),
                inflight: Arc::clone(&self.inflight[w]),
            });
        }
        out.sort_by_key(|c| (c.inflight.get(), c.worker != route.primary));
        out
    }

    /// One replane pass: for every slice, re-home it when no boot copy
    /// is live and no valid re-homed copy exists, and re-absorb the
    /// re-homed copy back once the primary has settled (Up and out of
    /// probation). Runs outside the table lock except for the brief
    /// pointer updates.
    fn replane_once(&self) {
        let snapshot: RouteSnapshot = {
            let table = self.slices.read().unwrap_or_else(PoisonError::into_inner);
            table
                .iter()
                .flat_map(|(name, slices)| {
                    slices
                        .iter()
                        .map(move |s| (name.clone(), s.route.clone(), s.rehomed))
                })
                .collect()
        };
        for (name, route, rehomed) in snapshot {
            if self.supervisor.settled(route.primary) {
                if let Some((w, epoch)) = rehomed {
                    self.reabsorb(&name, &route, w, epoch);
                }
                continue;
            }
            if self.supervisor.worker_addr(route.primary).is_some() {
                // Up but still on probation: it reloaded its argv copy,
                // so reads are covered; keep the re-homed copy as a
                // hedge until the probation verdict is in.
                continue;
            }
            let replica_live = route
                .replicas
                .iter()
                .any(|&w| self.supervisor.worker_addr(w).is_some());
            if replica_live {
                continue;
            }
            let rehomed_valid = rehomed.is_some_and(|(w, epoch)| {
                self.supervisor.epoch_of(w) == Some(epoch)
                    && self.supervisor.worker_addr(w).is_some()
            });
            if rehomed_valid {
                continue;
            }
            self.rehome_slice(&name, &route, None);
        }
    }

    /// Drop a re-homed copy now that the primary holds the slice again,
    /// and clear the routing overlay. The drop is best-effort: a dead
    /// holder lost the copy with its process anyway.
    fn reabsorb(&self, dataset: &str, route: &SliceRoute, w: usize, epoch: u64) {
        if self.supervisor.epoch_of(w) == Some(epoch) {
            if let Some(addr) = self.supervisor.worker_addr(w) {
                let body = Json::obj().set("name", route.slice_name.as_str());
                let cfg = self.worker_client(&addr, 0, Duration::from_secs(5));
                let _ = client::query(&cfg, "POST", "/admin/datasets/drop", Some(&body));
            }
        }
        let mut table = self.slices.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = table
            .get_mut(dataset)
            .and_then(|slices| slices.get_mut(route.index))
        {
            if slot.rehomed == Some((w, epoch)) {
                slot.rehomed = None;
                log(&format!(
                    "re-absorbed shard {} of `{dataset}` back onto worker {} (copy on worker {w} dropped)",
                    route.index, route.primary
                ));
            }
        }
    }

    /// Re-home one slice whose every boot copy is dead: POST the slice
    /// CSV (the gateway retained the file) to the least-loaded live
    /// survivor and record the copy against that worker's epoch. The
    /// whole slice moves to one survivor — contents and boundaries are
    /// unchanged, only the host differs — so the merged answer stays
    /// byte-identical to an all-healthy run.
    fn rehome_slice(&self, dataset: &str, route: &SliceRoute, exclude: Option<usize>) {
        let csv = match std::fs::read_to_string(&route.path) {
            Ok(s) => s,
            Err(e) => {
                log(&format!(
                    "re-home of shard {} of `{dataset}` failed: slice file {}: {e}",
                    route.index, route.path
                ));
                return;
            }
        };
        let mut survivors: Vec<(usize, String)> = self
            .supervisor
            .live()
            .into_iter()
            .filter(|(w, _)| {
                *w != route.primary && !route.replicas.contains(w) && Some(*w) != exclude
            })
            .collect();
        survivors.sort_by_key(|(w, _)| (self.inflight[*w].get(), *w));
        for (w, addr) in survivors {
            let Some(epoch) = self.supervisor.epoch_of(w) else {
                continue;
            };
            let mut body = Json::obj()
                .set("name", route.slice_name.as_str())
                .set("csv", csv.as_str());
            if let Some(t) = &route.types {
                body = body.set("types", t.as_str());
            }
            let cfg = self.worker_client(&addr, 1, Duration::from_secs(10));
            match client::query(&cfg, "POST", "/admin/datasets", Some(&body)) {
                Ok(_) => {
                    {
                        let mut table = self.slices.write().unwrap_or_else(PoisonError::into_inner);
                        if let Some(slot) = table
                            .get_mut(dataset)
                            .and_then(|slices| slices.get_mut(route.index))
                        {
                            slot.rehomed = Some((w, epoch));
                        }
                    }
                    telemetry::gateway_metrics().reshard.inc();
                    log(&format!(
                        "re-homed shard {} of `{dataset}` onto worker {w} (epoch {epoch})",
                        route.index
                    ));
                    return;
                }
                Err(e) => log(&format!(
                    "re-home of shard {} of `{dataset}` to worker {w} failed: {e}",
                    route.index
                )),
            }
        }
        log(&format!(
            "re-home of shard {} of `{dataset}` found no survivor; fan-out degrades until one returns",
            route.index
        ));
    }

    /// Before draining worker `id`, make sure no slice's only live copy
    /// sits on it: re-home such slices onto another survivor first, so
    /// the drain never opens a degraded window.
    fn prehome_for_drain(&self, id: usize) {
        let snapshot: RouteSnapshot = {
            let table = self.slices.read().unwrap_or_else(PoisonError::into_inner);
            table
                .iter()
                .flat_map(|(name, slices)| {
                    slices
                        .iter()
                        .map(move |s| (name.clone(), s.route.clone(), s.rehomed))
                })
                .collect()
        };
        for (name, route, rehomed) in snapshot {
            let mut copies = vec![route.primary];
            if let Some((w, epoch)) = rehomed {
                if self.supervisor.epoch_of(w) == Some(epoch) {
                    copies.push(w);
                }
            }
            copies.extend(route.replicas.iter().copied());
            let (mut on_target, mut live_elsewhere) = (false, false);
            for w in copies {
                if self.supervisor.worker_addr(w).is_some() {
                    if w == id {
                        on_target = true;
                    } else {
                        live_elsewhere = true;
                    }
                }
            }
            if on_target && !live_elsewhere {
                self.rehome_slice(&name, &route, Some(id));
            }
        }
    }

    /// The rolling restart itself, run on the coordinator thread: drain
    /// one Up worker at a time, waiting for its respawn to answer
    /// `/readyz` before touching the next slot — capacity never drops
    /// below N−1, and pre-homing keeps every slice readable throughout.
    fn rolling_restart(&self, stop: &AtomicBool) {
        let n = self.supervisor.slot_count();
        log(&format!(
            "rolling restart: cycling {n} worker(s) one at a time"
        ));
        for id in 0..n {
            if stop.load(Ordering::Acquire) {
                return;
            }
            if self.supervisor.worker_addr(id).is_none() {
                log(&format!(
                    "rolling restart: worker {id} not up; left to the crash machinery"
                ));
                continue;
            }
            self.prehome_for_drain(id);
            if !self.supervisor.begin_drain(id) {
                log(&format!(
                    "rolling restart: worker {id} refused drain; skipped"
                ));
                continue;
            }
            let deadline = Instant::now() + self.restart_wait;
            loop {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(addr) = self.supervisor.worker_addr(id) {
                    let cfg = self.worker_client(&addr, 0, Duration::from_secs(2));
                    if matches!(client::fetch_text(&cfg, "/readyz"), Ok((200, _))) {
                        break;
                    }
                }
                if Instant::now() >= deadline {
                    log(&format!(
                        "rolling restart: worker {id} did not return within {:?}; aborting",
                        self.restart_wait
                    ));
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            log(&format!("rolling restart: worker {id} restarted and ready"));
        }
        log("rolling restart: complete");
    }

    /// The deadline a proxied request is working under, for sizing the
    /// gateway→worker I/O timeouts around it.
    fn deadline_of(&self, req: &Request) -> Duration {
        std::str::from_utf8(&req.body)
            .ok()
            .and_then(|t| Json::parse(t).ok())
            .and_then(|b| b.u64_field("timeout_ms"))
            .map_or(self.default_deadline, |ms| {
                Duration::from_millis(ms).min(self.max_deadline)
            })
    }

    /// Client config for one gateway→worker call: generous I/O timeouts
    /// beyond the task deadline (the worker enforces the real budget),
    /// retries only for the transient codes the client already knows.
    fn worker_client(&self, addr: &str, retries: u32, deadline: Duration) -> ClientConfig {
        ClientConfig {
            addr: addr.to_owned(),
            retries,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(1),
            io_timeout: deadline + Duration::from_secs(10),
            frame_timeout: deadline + Duration::from_secs(15),
            seed: shard::fnv1a64(addr),
            max_response_bytes: 64 << 20,
        }
    }
}

/// One live copy of a slice, ready to be queried.
struct SliceCandidate {
    worker: usize,
    config: ClientConfig,
    inflight: Arc<Gauge>,
}

/// How long a slice read waits on its first copy before racing a
/// second. A quarter of the wall deadline, clamped: the deadline is
/// shared across concurrent shards (`Budget::split` keeps wall clocks
/// whole), so a share-derived hedge point would be the full deadline —
/// too late to help. The 25 ms floor keeps healthy sub-millisecond
/// reads from hedging at all.
fn hedge_delay(deadline: Duration) -> Duration {
    (deadline / 4).clamp(Duration::from_millis(25), Duration::from_secs(1))
}

/// Query one slice: fire at the least-loaded copy first; if it is still
/// silent past the hedge delay (or fails outright), race the next copy.
/// First success wins; the loser's response lands in a closed channel.
/// Returns the worker whose answer (or final error) was used.
fn slice_read(
    pool: &client::ConnPool,
    candidates: Vec<SliceCandidate>,
    payload: Json,
    hedge: Duration,
) -> (usize, Result<Json, String>) {
    use std::sync::mpsc;
    let (tx, rx) = mpsc::channel::<(usize, Result<Json, String>)>();
    let launch = |i: usize| -> bool {
        let c = &candidates[i];
        let worker = c.worker;
        let config = c.config.clone();
        let gauge = Arc::clone(&c.inflight);
        let payload = payload.clone();
        let tx = tx.clone();
        let pool = pool.clone();
        std::thread::Builder::new()
            .name(format!("deptree-slice-read-{worker}"))
            .spawn(move || {
                gauge.add(1);
                let outcome = match client::query_pooled(
                    &pool,
                    &config,
                    "POST",
                    "/v1/discover",
                    Some(&payload),
                ) {
                    Ok(resp) => Ok(resp.body),
                    Err(e) => Err(format!(
                        "{} after {} attempt(s): {}",
                        e.code.wire(),
                        e.attempts,
                        e.message
                    )),
                };
                gauge.add(-1);
                let _ = tx.send((worker, outcome));
            })
            .is_ok()
    };
    let mut launched = 0usize;
    let mut outstanding = 0usize;
    while launched < candidates.len() && outstanding == 0 {
        if launch(launched) {
            outstanding += 1;
        }
        launched += 1;
    }
    let mut last_err: Option<(usize, String)> = None;
    while outstanding > 0 {
        let wait = if launched < candidates.len() {
            hedge
        } else {
            // All copies racing: each is bounded by its own I/O
            // timeouts, so this only has to outlast the slowest.
            Duration::from_secs(3600)
        };
        match rx.recv_timeout(wait) {
            Ok((w, Ok(body))) => return (w, Ok(body)),
            Ok((w, Err(msg))) => {
                outstanding -= 1;
                last_err = Some((w, msg));
                // A failed copy frees its turn: move straight to the
                // next one rather than waiting out the hedge delay.
                while launched < candidates.len() {
                    let ok = launch(launched);
                    launched += 1;
                    if ok {
                        outstanding += 1;
                        break;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                while launched < candidates.len() {
                    let ok = launch(launched);
                    launched += 1;
                    if ok {
                        outstanding += 1;
                        telemetry::gateway_metrics().hedged_reads.inc();
                        break;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    match last_err {
        Some((w, msg)) => (w, Err(msg)),
        None => (
            candidates.first().map_or(0, |c| c.worker),
            Err("no copy of the slice could be queried".into()),
        ),
    }
}

fn reply_err(code: ErrorCode, message: &str) -> ServiceReply {
    ServiceReply::Json(code.http_status(), error_body(code, message))
}

/// A running gateway: front-end server plus the supervised fleet and
/// the healing threads.
pub struct GatewayHandle {
    server: ServerHandle,
    supervisor: Arc<Supervisor>,
    state: Arc<GatewayState>,
    slice_dir: PathBuf,
    /// Stops the replane loop, the reload coordinator, and any armed
    /// chaos schedule.
    bg_stop: Arc<AtomicBool>,
    bg_threads: Vec<std::thread::JoinHandle<()>>,
}

impl GatewayHandle {
    /// The gateway's bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The lifecycle state, for wiring signal handlers.
    pub fn drain_state(&self) -> &Arc<DrainState> {
        self.server.drain_state()
    }

    /// Current worker pids, one entry per slot (`None` while down).
    pub fn worker_pids(&self) -> Vec<Option<u32>> {
        self.supervisor.pids()
    }

    /// Total worker respawns so far (initial spawns not counted).
    pub fn worker_restarts(&self) -> u64 {
        self.supervisor.restarts()
    }

    /// Respawns of one slot, for restarted-exactly-once assertions.
    pub fn worker_restarts_of(&self, id: usize) -> u64 {
        self.supervisor.restarts_of(id)
    }

    /// Kick off a rolling restart (the SIGHUP path); `false` when one
    /// is already running or pending.
    pub fn request_reload(&self) -> bool {
        self.state.request_reload()
    }

    /// The orderly exit: stop accepting, drain in-flight fan-outs
    /// (cancelling stragglers past the grace), stop the healing and
    /// chaos threads, then SIGTERM every worker and reap it — SIGKILL
    /// past the child grace — and remove the slice files. No zombies
    /// survive this call.
    pub fn drain_and_join(self) {
        self.server.drain();
        self.server.join();
        self.bg_stop.store(true, Ordering::Release);
        for t in self.bg_threads {
            let _ = t.join();
        }
        self.supervisor.shutdown();
        let _ = std::fs::remove_dir_all(&self.slice_dir);
    }
}

/// Build the placement, boot the fleet, and bind the front end.
pub fn spawn_gateway(config: GatewayConfig) -> Result<GatewayHandle, DeptreeError> {
    static SLICE_SEQ: AtomicU64 = AtomicU64::new(0);
    let slice_dir = std::env::temp_dir().join(format!(
        "deptree-gateway-{}-{}",
        std::process::id(),
        SLICE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&slice_dir).map_err(|e| DeptreeError::Io {
        path: slice_dir.display().to_string(),
        message: e.to_string(),
    })?;
    let plan = match shard::build_plan(
        &config.datasets,
        config.workers,
        config.replicas,
        &slice_dir,
        config.lossy,
    ) {
        Ok(plan) => plan,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&slice_dir);
            return Err(e);
        }
    };
    for warning in &plan.warnings {
        log(&format!("warning: {warning}"));
    }

    let worker_args: Vec<Vec<String>> = plan
        .worker_specs
        .iter()
        .map(|specs| {
            let mut args = vec![
                "serve".to_owned(),
                "--addr".to_owned(),
                "127.0.0.1:0".to_owned(),
                "--threads".to_owned(),
                config.worker_threads.max(1).to_string(),
                "--default-timeout-ms".to_owned(),
                config.default_deadline.as_millis().to_string(),
                "--max-timeout-ms".to_owned(),
                config.max_deadline.as_millis().to_string(),
            ];
            for spec in specs {
                args.push("--data".to_owned());
                args.push(spec.clone());
            }
            if config.lossy {
                args.push("--lossy".to_owned());
            }
            args
        })
        .collect();

    // Register every gateway series before the first scrape, so the CI
    // smoke sees them at zero.
    let _ = telemetry::gateway_metrics();
    for w in 0..config.workers.max(1) {
        let _ = telemetry::worker_up(w);
        let _ = telemetry::worker_restarts(w);
        let _ = telemetry::worker_inflight(w);
        for state in telemetry::SLOT_STATES {
            let _ = telemetry::slot_state(w, state);
        }
    }

    let supervisor = Supervisor::start(SupervisorConfig {
        worker_bin: config.worker_bin.clone(),
        worker_args,
        respawn_base: config.respawn_base,
        respawn_max: config.respawn_max,
        fast_crash: config.fast_crash,
        quarantine_after: config.quarantine_after.max(1),
        quarantine_cooldown: config.quarantine_cooldown,
        probe_interval: config.probe_interval,
        probe_failures: config.probe_failures.max(1),
        spawn_timeout: config.spawn_timeout,
        child_grace: config.child_grace,
    });

    let drain = DrainState::new();
    let mut datasets = BTreeMap::new();
    for (name, r) in plan.sharded {
        datasets.insert(name, r);
    }
    let local = AppState::new(
        datasets,
        Arc::clone(&drain),
        config.worker_threads.max(1),
        config.default_deadline,
        config.max_deadline,
        // The gateway's local router answers merge re-validations whose
        // inputs change per fan-out; caching them would only hold bytes.
        0,
    );
    let slices: BTreeMap<String, Vec<SliceState>> = plan
        .slices
        .into_iter()
        .map(|(name, routes)| {
            (
                name,
                routes
                    .into_iter()
                    .map(|route| SliceState {
                        route,
                        rehomed: None,
                    })
                    .collect(),
            )
        })
        .collect();
    let inflight: Vec<Arc<Gauge>> = (0..config.workers.max(1))
        .map(telemetry::worker_inflight)
        .collect();
    let state = Arc::new(GatewayState {
        supervisor: Arc::clone(&supervisor),
        local,
        slices: RwLock::new(slices),
        homes: plan.homes,
        drain,
        default_deadline: config.default_deadline,
        max_deadline: config.max_deadline,
        inflight,
        reloading: AtomicBool::new(false),
        reload_requested: AtomicBool::new(false),
        restart_wait: config.spawn_timeout + config.child_grace + Duration::from_secs(10),
        pool: client::ConnPool::new(),
    });

    let bg_stop = Arc::new(AtomicBool::new(false));
    let mut bg_threads = Vec::new();
    // The replane loop: heals the routing table. Runs even during a
    // rolling restart, so a crash elsewhere in the fleet is still
    // re-homed while one slot is deliberately down.
    {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&bg_stop);
        if let Ok(t) = std::thread::Builder::new()
            .name("deptree-replane".to_owned())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    state.replane_once();
                    std::thread::sleep(REPLANE_INTERVAL);
                }
            })
        {
            bg_threads.push(t);
        }
    }
    // The reload coordinator: waits for the edge-trigger and runs the
    // rolling restart off the request path.
    {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&bg_stop);
        if let Ok(t) = std::thread::Builder::new()
            .name("deptree-reload".to_owned())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if state.reload_requested.swap(false, Ordering::AcqRel) {
                        state.reloading.store(true, Ordering::Release);
                        state.rolling_restart(&stop);
                        state.reloading.store(false, Ordering::Release);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
        {
            bg_threads.push(t);
        }
    }
    if let Some(seed) = config.chaos_seed {
        let plan = chaos::ChaosPlan::from_seed(seed, config.workers.max(1));
        let chaos_stop = chaos::arm(plan, Arc::clone(&supervisor));
        let stop = Arc::clone(&bg_stop);
        // Piggyback the chaos stop flag on the shared one: a tiny
        // watcher beats threading two flags through the handle.
        if let Ok(t) = std::thread::Builder::new()
            .name("deptree-chaos-stop".to_owned())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(50));
                }
                chaos_stop.store(true, Ordering::Release);
            })
        {
            bg_threads.push(t);
        }
    }

    match spawn_service(config.listen, Arc::clone(&state)) {
        Ok(server) => Ok(GatewayHandle {
            server,
            supervisor,
            state,
            slice_dir,
            bg_stop,
            bg_threads,
        }),
        Err(e) => {
            bg_stop.store(true, Ordering::Release);
            for t in bg_threads {
                let _ = t.join();
            }
            supervisor.shutdown();
            let _ = std::fs::remove_dir_all(&slice_dir);
            Err(e)
        }
    }
}
