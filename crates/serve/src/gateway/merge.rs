//! Fan-out merging: union the shards' candidates, re-validate on the
//! full snapshot, degrade — never fail — on missing shards.
//!
//! ## Why intersection would be wrong
//!
//! An FD can hold on every row shard yet fail on their union (two shards
//! can each be internally consistent but disagree with each other), so
//! neither intersection nor union of per-shard results is sound on its
//! own. The merge is instead **union + re-validation**: every candidate
//! any shard reports is checked against the *full* relation the gateway
//! kept in memory (`holds` for exact discovery, `g3 ≤ error` for
//! approximate). Only verified dependencies are returned, so the merged
//! answer is sound regardless of which shards answered.
//!
//! ## Why the merge stays inside the from-scratch answer
//!
//! A dependency minimal on a shard and holding on the full data is also
//! minimal on the full data: any smaller LHS that held on the full data
//! would hold on every subset of its rows, including that shard — so the
//! shard's level-wise search would have returned the smaller LHS
//! instead. Verified candidates are therefore a subset of what a
//! from-scratch run over the full data returns; losing a shard can only
//! shrink the answer, never corrupt it. That is the degraded-partial
//! contract: a dead or timed-out worker yields `partial: true` plus a
//! `degraded` detail, with every returned dependency still true.

use crate::json::Json;
use deptree_core::{Dependency, Fd};
use deptree_relation::Relation;
use std::collections::BTreeSet;
use std::time::Duration;

/// What one shard contributed: a worker's parsed response body, or the
/// reason it could not answer (already a human-readable detail).
pub(crate) struct ShardReply {
    /// Which slice of the dataset this reply covers.
    pub shard: usize,
    /// Which worker slot actually answered (or should have): with
    /// replica reads and re-homing this is whichever copy was picked,
    /// so degradation details name the real culprit.
    pub worker: usize,
    /// `Ok(body)` from the worker, or the degradation detail.
    pub outcome: Result<Json, String>,
}

/// The merged fan-out result, always HTTP 200.
pub(crate) struct FanoutOutcome {
    /// Response body for the client.
    pub body: Json,
    /// Whether any shard was missing (drives the degraded counter).
    pub degraded: bool,
}

/// Tolerance when comparing a g3 score against the requested error
/// bound: shards compute g3 on different row counts, so exact float
/// equality at the boundary is not meaningful.
const G3_EPS: f64 = 1e-9;

/// Merge the shards' discovery replies into one sound response.
pub(crate) fn merge_discover(
    dataset: &str,
    full: &Relation,
    error: f64,
    shards: usize,
    replies: &[ShardReply],
    elapsed: Duration,
) -> FanoutOutcome {
    let mut candidates: BTreeSet<String> = BTreeSet::new();
    let mut degraded: Vec<String> = Vec::new();
    let mut partial = false;
    let mut exhausted: Option<String> = None;
    let mut answered = 0usize;
    let (mut nodes, mut rows) = (0u64, 0u64);
    for reply in replies {
        match &reply.outcome {
            Ok(body) => {
                answered += 1;
                if body.bool_field("partial") == Some(true) {
                    partial = true;
                    if exhausted.is_none() {
                        exhausted = body.str_field("exhausted").map(str::to_owned);
                    }
                }
                if let Some(fds) = body.get("fds").and_then(Json::as_arr) {
                    for fd in fds {
                        if let Some(rule) = fd.as_str() {
                            candidates.insert(rule.to_owned());
                        }
                    }
                }
                if let Some(stats) = body.get("stats") {
                    nodes += stats.u64_field("nodes").unwrap_or(0);
                    rows += stats.u64_field("rows").unwrap_or(0);
                }
            }
            Err(detail) => {
                partial = true;
                degraded.push(format!(
                    "shard {} (worker {}): {detail}",
                    reply.shard, reply.worker
                ));
            }
        }
    }

    // Union + re-validation on the full snapshot: only candidates that
    // genuinely hold on all rows survive.
    let verified: Vec<String> = candidates
        .iter()
        .filter(|rule| {
            Fd::parse(full.schema(), rule).is_some_and(|fd| {
                if error > 0.0 {
                    fd.g3(full) <= error + G3_EPS
                } else {
                    fd.holds(full)
                }
            })
        })
        .cloned()
        .collect();

    let mut text = format!(
        "{} rows × {} columns across {shards} shard(s); {answered} answered\n\n",
        full.n_rows(),
        full.n_attrs(),
    );
    let kind = if error > 0.0 {
        format!("approximate FDs (g3 ≤ {error})")
    } else {
        "exact FDs".to_owned()
    };
    text.push_str(&format!(
        "== merged {kind} — {} of {} candidate(s) verified on the full snapshot ==\n",
        verified.len(),
        candidates.len(),
    ));
    const SHOW: usize = 25;
    for rule in verified.iter().take(SHOW) {
        text.push_str(&format!("  {rule}\n"));
    }
    if verified.len() > SHOW {
        text.push_str(&format!("  … and {} more\n", verified.len() - SHOW));
    }
    if !degraded.is_empty() {
        text.push_str("\ndegraded:\n");
        for d in &degraded {
            text.push_str(&format!("  - {d}\n"));
        }
    }

    let mut body = Json::obj()
        .set("task", "discover")
        .set("dataset", dataset)
        .set("report", text)
        .set("partial", partial);
    if let Some(kind) = &exhausted {
        body = body.set("exhausted", kind.as_str());
    }
    let is_degraded = !degraded.is_empty();
    if is_degraded {
        let details: Vec<Json> = degraded.iter().map(|d| Json::from(d.as_str())).collect();
        body = body.set("degraded", details);
    }
    let fds: Vec<Json> = verified.iter().map(|s| Json::from(s.as_str())).collect();
    body = body
        .set("fds", fds)
        .set(
            "stats",
            Json::obj()
                .set("nodes", nodes)
                .set("rows", rows)
                .set("elapsed_ms", elapsed.as_millis() as u64),
        )
        .set(
            "shards",
            Json::obj()
                .set("total", shards as u64)
                .set("answered", answered as u64)
                .set("degraded", degraded.len() as u64),
        );
    FanoutOutcome {
        body,
        degraded: is_degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r1;

    fn reply(worker: usize, fds: &[&str], partial: bool) -> ShardReply {
        let list: Vec<Json> = fds.iter().map(|s| Json::from(*s)).collect();
        let body = Json::obj()
            .set("partial", partial)
            .set("fds", list)
            .set("stats", Json::obj().set("nodes", 3u64).set("rows", 10u64));
        ShardReply {
            shard: worker,
            worker,
            outcome: Ok(body),
        }
    }

    #[test]
    fn shard_local_fds_that_fail_on_the_union_are_filtered() {
        // `address -> region` famously has two violations in hotels_r1 —
        // a shard that never pairs the conflicting rows would report it,
        // and the merge must throw it out. `name -> name` always holds.
        let r = hotels_r1();
        let out = merge_discover(
            "hotels",
            &r,
            0.0,
            2,
            &[
                reply(0, &["address -> region", "name -> name"], false),
                reply(1, &["name -> name"], false),
            ],
            Duration::from_millis(5),
        );
        let fds = out.body.get("fds").and_then(Json::as_arr).unwrap();
        let rules: Vec<&str> = fds.iter().filter_map(Json::as_str).collect();
        assert!(rules.contains(&"name -> name"), "{rules:?}");
        assert!(!rules.contains(&"address -> region"), "{rules:?}");
        assert!(!out.degraded);
        assert_eq!(out.body.bool_field("partial"), Some(false));
    }

    #[test]
    fn a_dead_shard_degrades_but_keeps_the_answer_sound() {
        let r = hotels_r1();
        let out = merge_discover(
            "hotels",
            &r,
            0.0,
            2,
            &[
                reply(0, &["name -> name"], false),
                ShardReply {
                    shard: 1,
                    worker: 1,
                    outcome: Err("down (respawning)".into()),
                },
            ],
            Duration::from_millis(5),
        );
        assert!(out.degraded);
        assert_eq!(out.body.bool_field("partial"), Some(true));
        let details = out.body.get("degraded").and_then(Json::as_arr).unwrap();
        assert_eq!(details.len(), 1);
        assert!(
            details[0].as_str().unwrap().contains("worker 1"),
            "{:?}",
            details[0].as_str()
        );
        let shards = out.body.get("shards").unwrap();
        assert_eq!(shards.u64_field("answered"), Some(1));
        assert_eq!(shards.u64_field("degraded"), Some(1));
    }

    #[test]
    fn approximate_merge_uses_the_g3_bound() {
        // address -> region has g3 = 2/n on hotels_r1; a generous bound
        // admits it, a zero bound rejects it (exercised above).
        let r = hotels_r1();
        let out = merge_discover(
            "hotels",
            &r,
            0.5,
            1,
            &[reply(0, &["address -> region"], false)],
            Duration::from_millis(5),
        );
        let fds = out.body.get("fds").and_then(Json::as_arr).unwrap();
        assert_eq!(fds.len(), 1, "{:?}", out.body.render());
    }

    #[test]
    fn worker_partials_propagate_exhausted() {
        let r = hotels_r1();
        let mut shard = reply(0, &["name -> name"], true);
        if let Ok(body) = &mut shard.outcome {
            *body = body.clone().set("exhausted", "nodes");
        }
        let out = merge_discover("hotels", &r, 0.0, 1, &[shard], Duration::from_millis(5));
        assert_eq!(out.body.bool_field("partial"), Some(true));
        assert_eq!(out.body.str_field("exhausted"), Some("nodes"));
        assert!(!out.degraded, "a budget partial is not a degradation");
    }
}
