//! Dataset placement: digest homes for whole datasets, contiguous row
//! slices for sharded ones.
//!
//! The gateway distinguishes two placements:
//!
//! - **Non-sharded** datasets live whole on one *home* worker (plus
//!   `replicas` successors), picked by an FNV-1a digest of the dataset
//!   name so placement is stable across restarts and independent of the
//!   order `--data` flags appear in.
//! - **Sharded** datasets are split into contiguous row ranges, one
//!   slice file per worker, written under the gateway's private temp
//!   directory. Each slice is registered on its holders under the
//!   *slice name* `dataset#index`, so one worker can hold several
//!   copies of several slices without name collisions — the basis for
//!   replica reads (`--replicas` places slice `j` on the next `R`
//!   workers too) and failover re-homing (a dead primary's slice is
//!   POSTed to a survivor under the same slice name). The gateway also
//!   keeps the *full* relation in memory: the fan-out merger
//!   re-validates every candidate dependency on the full snapshot (see
//!   [`super::merge`]), and non-discovery tasks on a sharded dataset
//!   are answered locally from the same snapshot.
//!
//! Every worker must end up with at least one `--data` spec (the worker
//! binary refuses to start empty), so workers the digest left bare are
//! topped up: first with every non-sharded dataset (making them spare
//! replicas), else with a full copy of the first sharded dataset (a warm
//! spare that takes no fan-out traffic).

use deptree_core::DeptreeError;
use deptree_relation::{parse_csv, parse_csv_lossy, to_csv, Relation, ValueType};
use std::collections::BTreeMap;
use std::path::Path;

/// One `--data` entry as the gateway CLI parsed it.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name exposed to clients.
    pub name: String,
    /// CSV path on disk.
    pub path: String,
    /// Optional `c,t,n` column-type spec (default: all categorical).
    pub types: Option<String>,
    /// Shard rows across all workers instead of homing the whole file.
    pub shard: bool,
}

/// One row slice of a sharded dataset: where its copies live and what
/// it takes to re-create one on a survivor.
#[derive(Debug, Clone)]
pub(crate) struct SliceRoute {
    /// Slice index within the dataset (`0..slices`).
    pub index: usize,
    /// The name every holder registers the slice under
    /// (`dataset#index`) — uniform across primary, replicas, and
    /// re-homed copies, so the fan-out body is holder-independent.
    pub slice_name: String,
    /// The slice CSV file, retained under the gateway's slice dir for
    /// its whole lifetime: re-homing reads it back and POSTs it.
    pub path: String,
    /// Column-type spec the slice was parsed with (re-home must match).
    pub types: Option<String>,
    /// The worker whose boot argv loads this slice.
    pub primary: usize,
    /// Boot-time replica holders (successor workers), primary excluded.
    pub replicas: Vec<usize>,
}

/// Render the uniform slice name for slice `index` of `dataset`.
pub(crate) fn slice_name(dataset: &str, index: usize) -> String {
    format!("{dataset}#{index}")
}

/// The computed placement: who holds what, and the full snapshots the
/// gateway keeps for merging.
#[derive(Debug)]
pub(crate) struct Plan {
    /// Full in-memory snapshots of every sharded dataset.
    pub sharded: Vec<(String, Relation)>,
    /// Sharded dataset → its slice routes, in slice order.
    pub slices: BTreeMap<String, Vec<SliceRoute>>,
    /// Non-sharded dataset → ordered candidates (home first, then replicas).
    pub homes: BTreeMap<String, Vec<usize>>,
    /// Per-worker `name=path[:types]` specs for the worker command line.
    pub worker_specs: Vec<Vec<String>>,
    /// Lossy-parse warnings worth surfacing to the operator.
    pub warnings: Vec<String>,
}

/// 64-bit FNV-1a over the dataset name: a stable, dependency-free digest
/// for home assignment.
pub(crate) fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn render_spec(name: &str, path: &str, types: Option<&str>) -> String {
    match types {
        Some(t) => format!("{name}={path}:{t}"),
        None => format!("{name}={path}"),
    }
}

fn parse_types(spec: &str) -> Result<Vec<ValueType>, DeptreeError> {
    spec.split(',')
        .map(|t| match t.trim() {
            "c" => Ok(ValueType::Categorical),
            "t" => Ok(ValueType::Text),
            "n" => Ok(ValueType::Numeric),
            other => Err(DeptreeError::InvalidConfig(format!(
                "bad column type `{other}` (want c, t or n)"
            ))),
        })
        .collect()
}

fn load_relation(
    path: &str,
    types_spec: Option<&str>,
    lossy: bool,
    warnings: &mut Vec<String>,
) -> Result<Relation, DeptreeError> {
    let text = std::fs::read_to_string(path).map_err(|e| DeptreeError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let header_cols = text
        .lines()
        .next()
        .ok_or_else(|| DeptreeError::Parse(format!("{path}: empty file")))?
        .split(',')
        .count();
    let types = match types_spec {
        Some(spec) => parse_types(spec)?,
        None => vec![ValueType::Categorical; header_cols],
    };
    if lossy {
        let out = parse_csv_lossy(&text, &types).map_err(DeptreeError::from)?;
        for issue in &out.issues {
            warnings.push(format!("{path}: {issue}"));
        }
        Ok(out.relation)
    } else {
        parse_csv(&text, &types).map_err(DeptreeError::from)
    }
}

/// The contiguous row range worker `i` of `workers` owns out of `rows`.
fn slice_range(rows: usize, workers: usize, i: usize) -> (usize, usize) {
    let base = rows / workers;
    let rem = rows % workers;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (start, len)
}

/// Compute the placement and write slice files under `slice_dir`.
pub(crate) fn build_plan(
    datasets: &[DatasetSpec],
    workers: usize,
    replicas: usize,
    slice_dir: &Path,
    lossy: bool,
) -> Result<Plan, DeptreeError> {
    if datasets.is_empty() {
        return Err(DeptreeError::InvalidConfig(
            "gateway needs at least one --data name=path[:types]".into(),
        ));
    }
    let workers = workers.max(1);
    let mut plan = Plan {
        sharded: Vec::new(),
        slices: BTreeMap::new(),
        homes: BTreeMap::new(),
        worker_specs: vec![Vec::new(); workers],
        warnings: Vec::new(),
    };
    let mut seen = std::collections::BTreeSet::new();
    for spec in datasets {
        if !seen.insert(spec.name.as_str()) {
            return Err(DeptreeError::InvalidConfig(format!(
                "duplicate dataset name `{}`",
                spec.name
            )));
        }
        if spec.shard {
            let relation =
                load_relation(&spec.path, spec.types.as_deref(), lossy, &mut plan.warnings)?;
            let mut routes = Vec::new();
            for i in 0..workers {
                let (start, len) = slice_range(relation.n_rows(), workers, i);
                if len == 0 {
                    continue; // an empty slice would only yield vacuous FDs
                }
                let rows: Vec<usize> = (start..start + len).collect();
                let slice = relation.select_rows(&rows);
                let path = slice_dir.join(format!("{}.{i}.csv", spec.name));
                std::fs::write(&path, to_csv(&slice)).map_err(|e| DeptreeError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                let name = slice_name(&spec.name, i);
                let path_str = path.display().to_string();
                plan.worker_specs[i].push(render_spec(&name, &path_str, spec.types.as_deref()));
                // Replica reads: place the same slice file on the next
                // `replicas` workers too (distinct from the primary).
                let mut replica_holders = Vec::new();
                for k in 1..=replicas.min(workers - 1) {
                    let w = (i + k) % workers;
                    replica_holders.push(w);
                    plan.worker_specs[w].push(render_spec(&name, &path_str, spec.types.as_deref()));
                }
                routes.push(SliceRoute {
                    index: i,
                    slice_name: name,
                    path: path_str,
                    types: spec.types.clone(),
                    primary: i,
                    replicas: replica_holders,
                });
            }
            plan.slices.insert(spec.name.clone(), routes);
            plan.sharded.push((spec.name.clone(), relation));
        } else {
            let home = (fnv1a64(&spec.name) % workers as u64) as usize;
            let mut holders = Vec::new();
            for k in 0..=replicas.min(workers - 1) {
                let w = (home + k) % workers;
                holders.push(w);
                plan.worker_specs[w].push(render_spec(
                    &spec.name,
                    &spec.path,
                    spec.types.as_deref(),
                ));
            }
            plan.homes.insert(spec.name.clone(), holders);
        }
    }
    // Top up workers the digest left bare: the worker binary refuses to
    // start with zero --data specs.
    let whole: Vec<&DatasetSpec> = datasets.iter().filter(|s| !s.shard).collect();
    for w in 0..workers {
        if !plan.worker_specs[w].is_empty() {
            continue;
        }
        if whole.is_empty() {
            // All datasets are sharded and this worker got no rows: give
            // it a full copy of the first one as a warm spare. It takes
            // no fan-out traffic (it is not in `shard_workers`).
            let first = &datasets[0];
            plan.worker_specs[w].push(render_spec(
                &first.name,
                &first.path,
                first.types.as_deref(),
            ));
        } else {
            for spec in &whole {
                plan.worker_specs[w].push(render_spec(
                    &spec.name,
                    &spec.path,
                    spec.types.as_deref(),
                ));
                if let Some(holders) = plan.homes.get_mut(&spec.name) {
                    holders.push(w);
                }
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_spreads() {
        assert_eq!(fnv1a64("hotels"), fnv1a64("hotels"));
        assert_ne!(fnv1a64("hotels"), fnv1a64("flights"));
    }

    #[test]
    fn slice_ranges_cover_exactly_once() {
        for rows in [0usize, 1, 5, 7, 100] {
            for workers in [1usize, 2, 3, 4, 9] {
                let mut covered = Vec::new();
                for i in 0..workers {
                    let (start, len) = slice_range(rows, workers, i);
                    covered.extend(start..start + len);
                }
                let want: Vec<usize> = (0..rows).collect();
                assert_eq!(covered, want, "rows={rows} workers={workers}");
            }
        }
    }

    #[test]
    fn plan_shards_rows_and_homes_whole_datasets() {
        let dir = std::env::temp_dir().join(format!("deptree-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("toy.csv");
        std::fs::write(&csv, "a,b\n1,2\n3,4\n5,6\n").unwrap();
        let specs = [
            DatasetSpec {
                name: "big".into(),
                path: csv.display().to_string(),
                types: None,
                shard: true,
            },
            DatasetSpec {
                name: "small".into(),
                path: csv.display().to_string(),
                types: None,
                shard: false,
            },
        ];
        let plan = build_plan(&specs, 2, 0, &dir, false).unwrap();
        // Both workers hold a slice of `big` under its slice name;
        // exactly one is home to `small`.
        let routes = &plan.slices["big"];
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].slice_name, "big#0");
        assert_eq!(routes[0].primary, 0);
        assert_eq!(routes[1].slice_name, "big#1");
        assert_eq!(routes[1].primary, 1);
        assert!(routes.iter().all(|r| r.replicas.is_empty()));
        assert!(plan.worker_specs[0].iter().any(|s| s.starts_with("big#0=")));
        assert!(plan.worker_specs[1].iter().any(|s| s.starts_with("big#1=")));
        assert_eq!(plan.homes["small"].len(), 1);
        assert_eq!(plan.sharded.len(), 1);
        assert_eq!(plan.sharded[0].1.n_rows(), 3);
        // Slice files exist and split 2 + 1.
        let s0 = std::fs::read_to_string(dir.join("big.0.csv")).unwrap();
        let s1 = std::fs::read_to_string(dir.join("big.1.csv")).unwrap();
        assert_eq!(s0.lines().count(), 3, "{s0}"); // header + 2 rows
        assert_eq!(s1.lines().count(), 2, "{s1}");
        // No worker is left without data.
        assert!(plan.worker_specs.iter().all(|s| !s.is_empty()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicas_place_each_slice_on_successor_workers() {
        let dir =
            std::env::temp_dir().join(format!("deptree-shard-replica-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("toy.csv");
        std::fs::write(&csv, "a,b\n1,2\n3,4\n5,6\n").unwrap();
        let specs = [DatasetSpec {
            name: "big".into(),
            path: csv.display().to_string(),
            types: None,
            shard: true,
        }];
        let plan = build_plan(&specs, 3, 1, &dir, false).unwrap();
        let routes = &plan.slices["big"];
        assert_eq!(routes.len(), 3);
        for r in routes {
            assert_eq!(r.replicas, vec![(r.primary + 1) % 3]);
            // Holder argv: the replica loads the *same* slice file under
            // the same slice name as the primary.
            let spec = format!("{}={}", r.slice_name, r.path);
            assert!(plan.worker_specs[r.primary].contains(&spec));
            assert!(plan.worker_specs[r.replicas[0]].contains(&spec));
        }
        // Replica counts never exceed the worker pool.
        let plan = build_plan(&specs, 2, 5, &dir, false).unwrap();
        for r in &plan.slices["big"] {
            assert_eq!(r.replicas.len(), 1, "capped at workers - 1");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let spec = DatasetSpec {
            name: "x".into(),
            path: "nope.csv".into(),
            types: None,
            shard: false,
        };
        let err = build_plan(
            &[spec.clone(), spec],
            2,
            0,
            std::path::Path::new("/tmp"),
            false,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }
}
