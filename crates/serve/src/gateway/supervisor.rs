//! Worker supervision: spawn, probe, respawn with backoff, quarantine,
//! probation, and coordinated drains for rolling restarts.
//!
//! Each worker slot walks a small state machine:
//!
//! ```text
//!          spawn ok             "listening on" scraped
//! Down ────────────▶ Starting ─────────────────────▶ Up ◀──────┐
//!  ▲                    │  spawn timeout               │        │ healthy for
//!  │                    ▼                              │        │ `fast_crash`
//!  └──── backoff ───── crash ◀───────────────────── exit /    (probation
//!                        │ K consecutive fast        N failed   passes, crash
//!                        ▼ crashes                   probes     fuel := 0)
//!                   Quarantined ── cooldown ──▶ Starting (probation)
//!
//!            begin_drain (SIGTERM)              child exits (or grace
//! Up ──────────────────────────────▶ Draining ─────────────────────▶ Starting
//!                                       │ grace expires: SIGKILL + audit
//!                                       └──────────────────────────▶ Starting
//! ```
//!
//! Respawn delay is `base · 2^consecutive_fast_crashes`, capped at
//! `respawn_max`; a crash after a healthy stretch (uptime ≥ `fast_crash`)
//! resets the streak. After `quarantine_after` consecutive fast crashes
//! the slot is **quarantined**: no respawn attempts for
//! `quarantine_cooldown`, so a wedged binary cannot hot-loop the
//! supervisor. Leaving quarantine is **probation**: one more fast crash
//! re-quarantines immediately (with a fresh cooldown), while surviving
//! `fast_crash` of uptime resets the crash fuel to zero — a worker that
//! recovered is indistinguishable from one that never crashed.
//! **Draining** is the planned counterpart of a crash: the slot leaves
//! the routable set, its child gets exactly one SIGTERM, and the respawn
//! carries no crash accounting. The slot's lifecycle is published as the
//! one-hot `deptree_worker_slot_state{slot,state}` gauge family.
//!
//! The tick thread never blocks on child I/O: worker stdout/stderr are
//! drained by dedicated reader threads (a full pipe would otherwise wedge
//! the child), and the address is scraped from the worker's own
//! `listening on ADDR` line. Readers carry the slot's spawn *epoch* so a
//! stale reader from a replaced child cannot resurrect state.

use crate::client::{self, ClientConfig};
use crate::json::Json;
use crate::telemetry;
use deptree_core::engine::signal;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the supervisor needs to run one fleet of workers.
#[derive(Debug, Clone)]
pub(crate) struct SupervisorConfig {
    /// The worker binary (normally the `deptree` binary itself).
    pub worker_bin: PathBuf,
    /// Per-slot argv tail (`serve --data … --addr 127.0.0.1:0 …`).
    pub worker_args: Vec<Vec<String>>,
    /// Base respawn delay after a crash.
    pub respawn_base: Duration,
    /// Cap on the exponential respawn delay.
    pub respawn_max: Duration,
    /// Uptime below this counts as a *fast* crash (quarantine fuel).
    pub fast_crash: Duration,
    /// Consecutive fast crashes before the slot is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined slot sits out before probation.
    pub quarantine_cooldown: Duration,
    /// How often an Up worker's `/readyz` is probed.
    pub probe_interval: Duration,
    /// Consecutive failed probes before the worker is declared dead.
    pub probe_failures: u32,
    /// How long a Starting worker may take to report its address.
    pub spawn_timeout: Duration,
    /// SIGTERM→SIGKILL grace per child at shutdown.
    pub child_grace: Duration,
}

/// Where a worker slot is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Child spawned, waiting for its `listening on` line.
    Starting,
    /// Address known, `/readyz` probes green (or not yet failed enough).
    Up,
    /// No child; a respawn is scheduled.
    Down,
    /// Crash-looping; respawns suspended for the cooldown.
    Quarantined,
    /// Planned drain (rolling restart): SIGTERM sent, waiting for the
    /// child to finish its in-flight work and exit; respawned without
    /// crash accounting.
    Draining,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Up => "up",
            Phase::Down => "down",
            Phase::Quarantined => "quarantined",
            Phase::Draining => "draining",
        }
    }
}

#[derive(Debug)]
struct SlotState {
    phase: Phase,
    addr: Option<String>,
    child: Option<Child>,
    pid: Option<u32>,
    /// Bumped on every spawn and teardown; readers from older children
    /// compare against it and drop their updates.
    epoch: u64,
    restarts: u64,
    fast_crashes: u32,
    probe_failures: u32,
    /// Up, but fresh out of quarantine: one fast crash re-quarantines,
    /// surviving `fast_crash` of uptime resets the crash fuel.
    probation: bool,
    spawned_at: Instant,
    last_probe: Instant,
    retry_at: Instant,
}

/// The lifecycle state published on the wire
/// (`deptree_worker_slot_state{state=…}` and `/healthz`).
fn wire_state(st: &SlotState) -> &'static str {
    match st.phase {
        Phase::Draining => "draining",
        Phase::Quarantined => "quarantined",
        Phase::Up if st.probation => "probation",
        Phase::Up => "up",
        Phase::Starting | Phase::Down => "respawning",
    }
}

/// Publish one slot's lifecycle to the one-hot gauge family.
fn publish(id: usize, st: &SlotState) {
    telemetry::set_slot_state(id, wire_state(st));
}

/// One supervised worker slot.
#[derive(Debug)]
pub(crate) struct Slot {
    id: usize,
    state: Mutex<SlotState>,
}

fn lock(slot: &Slot) -> MutexGuard<'_, SlotState> {
    slot.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort gateway log line on stderr; a closed stderr is ignored.
pub(crate) fn log(msg: &str) {
    let _ = writeln!(std::io::stderr().lock(), "gateway: {msg}");
}

/// The fleet: slots plus the tick thread that walks their state machines.
pub(crate) struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<Arc<Slot>>,
    stop: AtomicBool,
    tick_thread: Mutex<Option<JoinHandle<()>>>,
}

/// Tick cadence: crash detection and respawn latency are bounded by this.
const TICK: Duration = Duration::from_millis(20);

impl Supervisor {
    /// Spawn every worker and the tick thread.
    pub fn start(cfg: SupervisorConfig) -> Arc<Supervisor> {
        let now = Instant::now();
        let slots = (0..cfg.worker_args.len().max(1))
            .map(|id| {
                Arc::new(Slot {
                    id,
                    state: Mutex::new(SlotState {
                        phase: Phase::Down,
                        addr: None,
                        child: None,
                        pid: None,
                        epoch: 0,
                        restarts: 0,
                        fast_crashes: 0,
                        probe_failures: 0,
                        probation: false,
                        spawned_at: now,
                        last_probe: now,
                        retry_at: now,
                    }),
                })
            })
            .collect();
        let sup = Arc::new(Supervisor {
            cfg,
            slots,
            stop: AtomicBool::new(false),
            tick_thread: Mutex::new(None),
        });
        for slot in &sup.slots {
            let mut st = lock(slot);
            sup.spawn_worker(slot, &mut st);
        }
        let ticker = Arc::clone(&sup);
        let handle = std::thread::Builder::new()
            .name("deptree-supervisor".to_owned())
            .spawn(move || {
                while !ticker.stop.load(Ordering::Acquire) {
                    ticker.tick();
                    std::thread::sleep(TICK);
                }
            })
            .ok();
        *sup.tick_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handle;
        sup
    }

    /// The worker's address, if it is currently Up.
    pub fn worker_addr(&self, id: usize) -> Option<String> {
        let slot = self.slots.get(id)?;
        let st = lock(slot);
        if st.phase == Phase::Up {
            st.addr.clone()
        } else {
            None
        }
    }

    /// Every Up worker with its address.
    pub fn live(&self) -> Vec<(usize, String)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let st = lock(s);
                if st.phase == Phase::Up {
                    st.addr.clone().map(|a| (s.id, a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// How many workers are Up.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| lock(s).phase == Phase::Up)
            .count()
    }

    /// Current child pids, one entry per slot (`None` while down).
    pub fn pids(&self) -> Vec<Option<u32>> {
        self.slots.iter().map(|s| lock(s).pid).collect()
    }

    /// Total respawns across the fleet (initial spawns not counted).
    pub fn restarts(&self) -> u64 {
        self.slots.iter().map(|s| lock(s).restarts).sum()
    }

    /// How many slots are quarantined right now.
    pub fn quarantined_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| lock(s).phase == Phase::Quarantined)
            .count()
    }

    /// How many worker slots the fleet has (fixed at start).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Up and past probation: the slot is a trustworthy home again.
    /// Re-absorb (undoing a re-home) waits for this, not just Up — a
    /// worker on probation may be about to re-quarantine.
    pub fn settled(&self, id: usize) -> bool {
        self.slots.get(id).is_some_and(|s| {
            let st = lock(s);
            st.phase == Phase::Up && !st.probation
        })
    }

    /// The slot's current spawn epoch. A re-homed copy remembers the
    /// epoch of the worker it was POSTed to; when that worker respawns
    /// (epoch moves) the copy died with the old process.
    pub fn epoch_of(&self, id: usize) -> Option<u64> {
        self.slots.get(id).map(|s| lock(s).epoch)
    }

    /// Respawn count of one slot.
    pub fn restarts_of(&self, id: usize) -> u64 {
        self.slots.get(id).map_or(0, |s| lock(s).restarts)
    }

    /// Begin a planned drain of one Up slot (rolling restart): leave the
    /// routable set, send the child its single SIGTERM, and let the tick
    /// thread respawn it when it exits (force-killing at `child_grace`
    /// with an audit line). Returns `false` when the slot is not Up —
    /// the caller should skip it, the crash machinery already owns it.
    pub fn begin_drain(&self, id: usize) -> bool {
        let Some(slot) = self.slots.get(id) else {
            return false;
        };
        let pid = {
            let mut st = lock(slot);
            if st.phase != Phase::Up {
                return false;
            }
            let Some(pid) = st.pid else {
                return false;
            };
            st.phase = Phase::Draining;
            st.retry_at = Instant::now() + self.cfg.child_grace;
            // Routing reads `addr` only while Up, but clear it anyway so
            // no path can hand out a draining worker.
            st.addr = None;
            telemetry::worker_up(id).set(0);
            publish(id, &st);
            pid
        };
        // Exactly one SIGTERM, outside the lock: `deptree serve` treats
        // a second one as "force exit 130".
        signal::send(pid, signal::SIGTERM);
        log(&format!("worker {id} (pid {pid}) draining for restart"));
        true
    }

    /// Per-worker status for `/healthz`.
    pub fn status_json(&self) -> Vec<Json> {
        self.slots
            .iter()
            .map(|s| {
                let st = lock(s);
                let mut j = Json::obj()
                    .set("worker", s.id as u64)
                    .set("phase", st.phase.name())
                    .set("state", wire_state(&st))
                    .set("restarts", st.restarts);
                if let Some(addr) = &st.addr {
                    j = j.set("addr", addr.as_str());
                }
                if let Some(pid) = st.pid {
                    j = j.set("pid", u64::from(pid));
                }
                j
            })
            .collect()
    }

    fn spawn_worker(&self, slot: &Arc<Slot>, st: &mut SlotState) {
        st.epoch += 1;
        let epoch = st.epoch;
        let args = self
            .cfg
            .worker_args
            .get(slot.id)
            .cloned()
            .unwrap_or_default();
        let spawned = Command::new(&self.cfg.worker_bin)
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn();
        match spawned {
            Ok(mut child) => {
                let pid = child.id();
                let stdout = child.stdout.take();
                let stderr = child.stderr.take();
                st.child = Some(child);
                st.pid = Some(pid);
                st.phase = Phase::Starting;
                st.addr = None;
                st.probe_failures = 0;
                st.spawned_at = Instant::now();
                publish(slot.id, st);
                if let Some(out) = stdout {
                    let s = Arc::clone(slot);
                    std::thread::Builder::new()
                        .name(format!("deptree-w{}-out", slot.id))
                        .spawn(move || scrape_stdout(&s, epoch, out))
                        .ok();
                }
                if let Some(err) = stderr {
                    let id = slot.id;
                    std::thread::Builder::new()
                        .name(format!("deptree-w{}-err", slot.id))
                        .spawn(move || forward_stderr(id, err))
                        .ok();
                }
            }
            Err(e) => {
                log(&format!(
                    "worker {}: spawn of {} failed: {e}",
                    slot.id,
                    self.cfg.worker_bin.display()
                ));
                st.child = None;
                st.pid = None;
                st.spawned_at = Instant::now(); // counts as an instant (fast) crash
                self.crash(slot.id, st, "spawn failed");
            }
        }
    }

    /// Tear down after a death: reap the child, account the crash streak,
    /// and schedule the respawn (or quarantine the slot).
    fn crash(&self, id: usize, st: &mut SlotState, why: &str) {
        if let Some(mut child) = st.child.take() {
            let _ = child.kill(); // no-op if already dead
            let _ = child.wait(); // reap — a zombie would outlive us
        }
        st.addr = None;
        st.pid = None;
        st.epoch += 1;
        st.probe_failures = 0;
        let was_probation = st.probation;
        st.probation = false;
        telemetry::worker_up(id).set(0);
        let fast = st.spawned_at.elapsed() < self.cfg.fast_crash;
        if fast {
            st.fast_crashes += 1;
        } else {
            st.fast_crashes = 0;
        }
        if st.fast_crashes >= self.cfg.quarantine_after {
            st.phase = Phase::Quarantined;
            // A fresh, full cooldown every time — a probation failure is
            // not cheaper than the original quarantine.
            st.retry_at = Instant::now() + self.cfg.quarantine_cooldown;
            let cause = if was_probation {
                " (probation failed)"
            } else {
                ""
            };
            log(&format!(
                "worker {id} quarantined after {} fast crashes{cause} ({why}); cooldown {:?}",
                st.fast_crashes, self.cfg.quarantine_cooldown
            ));
        } else {
            st.phase = Phase::Down;
            let shift = st.fast_crashes.min(16);
            let backoff = self
                .cfg
                .respawn_base
                .saturating_mul(1u32 << shift)
                .min(self.cfg.respawn_max);
            st.retry_at = Instant::now() + backoff;
            log(&format!("worker {id} down ({why}); respawn in {backoff:?}"));
        }
        publish(id, st);
    }

    fn tick(&self) {
        for slot in &self.slots {
            // What to do outside the lock: probes do network I/O and must
            // not serialize the whole fleet behind one slot's mutex.
            enum Action {
                None,
                Probe(String, u64),
            }
            let action = {
                let mut st = lock(slot);
                match st.phase {
                    Phase::Starting => {
                        if child_exited(&mut st) {
                            self.crash(slot.id, &mut st, "exited during startup");
                        } else if st.spawned_at.elapsed() > self.cfg.spawn_timeout {
                            self.crash(slot.id, &mut st, "no address before spawn timeout");
                        }
                        Action::None
                    }
                    Phase::Up => {
                        if child_exited(&mut st) {
                            self.crash(slot.id, &mut st, "exited");
                            Action::None
                        } else {
                            // A healthy stretch pays the crash fuel back
                            // to zero; for a probation slot that is the
                            // one-shot probation *passing*.
                            if st.fast_crashes > 0 && st.spawned_at.elapsed() >= self.cfg.fast_crash
                            {
                                st.fast_crashes = 0;
                                if st.probation {
                                    st.probation = false;
                                    log(&format!(
                                        "worker {} probation passed; crash fuel reset",
                                        slot.id
                                    ));
                                }
                                publish(slot.id, &st);
                            }
                            if st.last_probe.elapsed() >= self.cfg.probe_interval {
                                st.last_probe = Instant::now();
                                match &st.addr {
                                    Some(addr) => Action::Probe(addr.clone(), st.epoch),
                                    None => Action::None,
                                }
                            } else {
                                Action::None
                            }
                        }
                    }
                    Phase::Down | Phase::Quarantined => {
                        if Instant::now() >= st.retry_at {
                            if st.phase == Phase::Quarantined {
                                // Probation: one more fast crash re-quarantines.
                                st.fast_crashes = self.cfg.quarantine_after.saturating_sub(1);
                                st.probation = true;
                                log(&format!("worker {} leaves quarantine (probation)", slot.id));
                            }
                            st.restarts += 1;
                            telemetry::worker_restarts(slot.id).inc();
                            self.spawn_worker(slot, &mut st);
                        }
                        Action::None
                    }
                    Phase::Draining => {
                        if child_exited(&mut st) {
                            // Planned restart: no crash accounting, no
                            // backoff — respawn right away.
                            st.child = None;
                            st.pid = None;
                            st.epoch += 1;
                            st.fast_crashes = 0;
                            st.probation = false;
                            st.restarts += 1;
                            telemetry::worker_restarts(slot.id).inc();
                            log(&format!("worker {} drained; respawning", slot.id));
                            self.spawn_worker(slot, &mut st);
                        } else if Instant::now() >= st.retry_at {
                            // The drain grace expired: force the child
                            // down, leave an audit trail, respawn.
                            let pid = st.pid.unwrap_or(0);
                            if let Some(mut child) = st.child.take() {
                                let _ = child.kill();
                                let _ = child.wait();
                            }
                            telemetry::gateway_metrics().force_kill.inc();
                            log(&format!(
                                "worker {} (pid {pid}) force-killed: drain grace {:?} expired",
                                slot.id, self.cfg.child_grace
                            ));
                            st.pid = None;
                            st.epoch += 1;
                            st.fast_crashes = 0;
                            st.probation = false;
                            st.restarts += 1;
                            telemetry::worker_restarts(slot.id).inc();
                            self.spawn_worker(slot, &mut st);
                        }
                        Action::None
                    }
                }
            };
            if let Action::Probe(addr, epoch) = action {
                let ok = probe_ready(&addr);
                let mut st = lock(slot);
                if st.epoch != epoch || st.phase != Phase::Up {
                    continue; // the slot moved on while we probed
                }
                if ok {
                    st.probe_failures = 0;
                } else {
                    st.probe_failures += 1;
                    if st.probe_failures >= self.cfg.probe_failures {
                        self.crash(slot.id, &mut st, "failed readyz probes");
                    }
                }
            }
        }
        telemetry::gateway_metrics()
            .quarantined
            .set(self.quarantined_count() as i64);
    }

    /// Stop ticking and reap every child: SIGTERM exactly once each —
    /// `deptree serve` treats a *second* SIGTERM as "force exit 130", so
    /// double-signalling would turn every clean drain into a forced one —
    /// then wait it out under one shared `child_grace` deadline, SIGKILL
    /// past it.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self
            .tick_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.cfg.child_grace;
        for slot in &self.slots {
            let mut st = lock(slot);
            st.epoch += 1;
            if let Some(mut child) = st.child.take() {
                // The deadline is shared: one wedged worker cannot make
                // shutdown take N × grace, it just costs later (healthy,
                // near-instant) workers their slack.
                let grace = deadline.saturating_duration_since(Instant::now());
                let reap = signal::reap_with_grace_report(&mut child, grace);
                if reap.forced {
                    // The audit trail for the satellite: which child ate
                    // its whole grace and had to be SIGKILLed.
                    telemetry::gateway_metrics().force_kill.inc();
                    log(&format!(
                        "worker {} (pid {}) force-killed: shutdown grace expired ({:?} shared)",
                        slot.id,
                        st.pid.unwrap_or(0),
                        self.cfg.child_grace
                    ));
                }
                let outcome = match reap.status {
                    Some(s) if s.success() => "exited cleanly".to_owned(),
                    Some(s) => format!("exited with {s}"),
                    None => "did not exit".to_owned(),
                };
                log(&format!(
                    "worker {} (pid {}) {outcome}",
                    slot.id,
                    st.pid.unwrap_or(0)
                ));
            }
            st.pid = None;
            st.addr = None;
            st.phase = Phase::Down;
            st.probation = false;
            telemetry::worker_up(slot.id).set(0);
            publish(slot.id, &st);
        }
    }
}

/// Did the slot's child exit? (`try_wait` also reaps it on success.)
fn child_exited(st: &mut SlotState) -> bool {
    match st.child.as_mut() {
        Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
        None => true,
    }
}

/// One `/readyz` round trip with no retries and tight timeouts: the
/// supervisor's own failure counter is the retry policy.
fn probe_ready(addr: &str) -> bool {
    let cfg = ClientConfig {
        addr: addr.to_owned(),
        retries: 0,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(10),
        connect_timeout: Duration::from_millis(250),
        io_timeout: Duration::from_secs(1),
        frame_timeout: Duration::from_secs(2),
        seed: 0,
        max_response_bytes: 64 * 1024,
    };
    matches!(client::query(&cfg, "GET", "/readyz", None), Ok(r) if r.status == 200)
}

/// Drain the worker's stdout forever (a full pipe would wedge the child)
/// and scrape its `listening on ADDR` announcement.
fn scrape_stdout(slot: &Arc<Slot>, epoch: u64, out: ChildStdout) {
    for line in BufReader::new(out).lines().map_while(Result::ok) {
        if let Some(addr) = line.strip_prefix("listening on ") {
            let mut st = lock(slot);
            if st.epoch == epoch && st.phase == Phase::Starting {
                st.addr = Some(addr.trim().to_owned());
                st.phase = Phase::Up;
                st.probe_failures = 0;
                st.last_probe = Instant::now();
                telemetry::worker_up(slot.id).set(1);
                publish(slot.id, &st);
                log(&format!(
                    "worker {} (pid {}) up at {}",
                    slot.id,
                    st.pid.unwrap_or(0),
                    addr.trim()
                ));
            }
        }
    }
}

/// Relay the worker's stderr onto the gateway's, prefixed per worker.
fn forward_stderr(id: usize, err: ChildStderr) {
    for line in BufReader::new(err).lines().map_while(Result::ok) {
        log(&format!("worker {id} stderr: {line}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(bin: &str, args: Vec<Vec<String>>) -> SupervisorConfig {
        SupervisorConfig {
            worker_bin: PathBuf::from(bin),
            worker_args: args,
            respawn_base: Duration::from_millis(20),
            respawn_max: Duration::from_millis(100),
            fast_crash: Duration::from_secs(1),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(60),
            probe_interval: Duration::from_millis(100),
            probe_failures: 3,
            spawn_timeout: Duration::from_secs(5),
            child_grace: Duration::from_millis(500),
        }
    }

    #[test]
    #[cfg(unix)]
    fn a_crash_looping_command_ends_up_quarantined() {
        // `false` exits 1 immediately: three fast crashes then quarantine.
        let sup = Supervisor::start(tiny_cfg("false", vec![vec![]]));
        let deadline = Instant::now() + Duration::from_secs(10);
        while sup.quarantined_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            sup.quarantined_count(),
            1,
            "status: {:?}",
            sup.status_json()
        );
        // Quarantine means *no* further respawns during the cooldown.
        let restarts = sup.restarts();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(sup.restarts(), restarts, "respawned while quarantined");
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn a_missing_binary_counts_as_fast_crashes_not_a_hot_loop() {
        let sup = Supervisor::start(tiny_cfg("/nonexistent/deptree-worker", vec![vec![]]));
        let deadline = Instant::now() + Duration::from_secs(10);
        while sup.quarantined_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sup.quarantined_count(), 1);
        // The spawn-fail path must count attempts, not spin: with base 20ms
        // and doubling, a hot loop would show hundreds of restarts.
        assert!(sup.restarts() < 10, "restarts = {}", sup.restarts());
        sup.shutdown();
    }

    /// Poll until `cond` or the deadline; returns whether it held.
    fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        cond()
    }

    #[test]
    #[cfg(unix)]
    fn probation_failure_requarantines_with_a_fresh_cooldown() {
        // `false` crashes instantly, on probation too: every cooldown
        // buys exactly one doomed respawn, then a fresh quarantine.
        let mut cfg = tiny_cfg("false", vec![vec![]]);
        cfg.quarantine_after = 2;
        cfg.quarantine_cooldown = Duration::from_millis(300);
        let sup = Supervisor::start(cfg);
        assert!(
            wait_for(|| sup.quarantined_count() == 1, Duration::from_secs(10)),
            "never quarantined: {:?}",
            sup.status_json()
        );
        let restarts_at_quarantine = sup.restarts();
        // Cooldown expires → one probation respawn → instant crash →
        // quarantined again (not respawn-looping).
        assert!(
            wait_for(
                || sup.restarts() > restarts_at_quarantine,
                Duration::from_secs(10)
            ),
            "probation respawn never happened"
        );
        assert!(
            wait_for(|| sup.quarantined_count() == 1, Duration::from_secs(10)),
            "probation failure did not re-quarantine: {:?}",
            sup.status_json()
        );
        // The re-quarantine carries a *fresh* cooldown: well inside it,
        // no further respawn may happen.
        let restarts = sup.restarts();
        assert_eq!(
            restarts,
            restarts_at_quarantine + 1,
            "one respawn per probation"
        );
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            sup.restarts(),
            restarts,
            "respawned inside the fresh cooldown"
        );
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn probation_success_resets_crash_fuel_to_zero() {
        // The worker crashes instantly until the marker file exists,
        // then announces an address and stays up — quarantine, then a
        // probation that passes.
        let marker = std::env::temp_dir().join(format!("deptree-probation-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "if [ -f '{m}' ]; then echo 'listening on 127.0.0.1:9'; exec sleep 30; else exit 1; fi",
            m = marker.display()
        );
        let mut cfg = tiny_cfg("sh", vec![vec!["-c".to_owned(), script]]);
        cfg.quarantine_after = 2;
        cfg.quarantine_cooldown = Duration::from_millis(200);
        cfg.fast_crash = Duration::from_millis(300);
        cfg.probe_failures = u32::MAX; // the fake addr never probes green
        let sup = Supervisor::start(cfg);
        assert!(
            wait_for(|| sup.quarantined_count() == 1, Duration::from_secs(10)),
            "never quarantined: {:?}",
            sup.status_json()
        );
        // Flip the worker healthy; the next probation spawn survives.
        std::fs::write(&marker, b"ok").unwrap();
        assert!(
            wait_for(
                || {
                    let st = lock(&sup.slots[0]);
                    st.phase == Phase::Up && st.probation
                },
                Duration::from_secs(10)
            ),
            "probation worker never came up: {:?}",
            sup.status_json()
        );
        {
            let st = lock(&sup.slots[0]);
            assert_eq!(wire_state(&st), "probation");
            assert!(st.fast_crashes > 0, "probation must still carry crash fuel");
        }
        // Surviving `fast_crash` of uptime passes probation and zeroes
        // the fuel: the recovered worker is indistinguishable from one
        // that never crashed.
        assert!(
            wait_for(|| sup.settled(0), Duration::from_secs(10)),
            "probation never passed: {:?}",
            sup.status_json()
        );
        {
            let st = lock(&sup.slots[0]);
            assert_eq!(
                st.fast_crashes, 0,
                "probation success must reset crash fuel"
            );
            assert!(!st.probation);
            assert_eq!(wire_state(&st), "up");
        }
        let _ = std::fs::remove_file(&marker);
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn begin_drain_restarts_without_crash_accounting() {
        let script = "echo 'listening on 127.0.0.1:9'; exec sleep 30";
        let mut cfg = tiny_cfg("sh", vec![vec!["-c".to_owned(), script.to_owned()]]);
        cfg.probe_failures = u32::MAX;
        let sup = Supervisor::start(cfg);
        assert!(
            wait_for(|| sup.live_count() == 1, Duration::from_secs(10)),
            "worker never came up: {:?}",
            sup.status_json()
        );
        let pid_before = sup.pids()[0];
        assert!(sup.begin_drain(0), "drain of an Up slot must start");
        // A second drain of the same (now Draining) slot is refused.
        assert!(!sup.begin_drain(0));
        assert!(
            wait_for(
                || sup.live_count() == 1 && sup.pids()[0] != pid_before,
                Duration::from_secs(10)
            ),
            "drained worker never respawned: {:?}",
            sup.status_json()
        );
        let st = lock(&sup.slots[0]);
        assert_eq!(st.restarts, 1, "a planned restart counts as one restart");
        assert_eq!(st.fast_crashes, 0, "a planned restart is not a crash");
        drop(st);
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn shutdown_reaps_a_long_running_child() {
        // `sleep 30` ignores nothing — SIGTERM kills it within the grace.
        let sup = Supervisor::start(tiny_cfg("sleep", vec![vec!["30".to_owned()]]));
        std::thread::sleep(Duration::from_millis(100));
        let pid = sup.pids()[0];
        assert!(pid.is_some(), "child did not spawn");
        let started = Instant::now();
        sup.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(sup.pids()[0], None);
    }
}
