//! Worker supervision: spawn, probe, respawn with backoff, quarantine.
//!
//! Each worker slot walks a small state machine:
//!
//! ```text
//!          spawn ok             "listening on" scraped
//! Down ────────────▶ Starting ─────────────────────▶ Up
//!  ▲                    │  spawn timeout               │ exit / N failed
//!  │                    ▼                              ▼ /readyz probes
//!  └──── backoff ───── crash ◀─────────────────────── crash
//!                        │ K consecutive fast crashes
//!                        ▼
//!                   Quarantined ── cooldown ──▶ Down (probation)
//! ```
//!
//! Respawn delay is `base · 2^consecutive_fast_crashes`, capped at
//! `respawn_max`; a crash after a healthy stretch (uptime ≥ `fast_crash`)
//! resets the streak. After `quarantine_after` consecutive fast crashes
//! the slot is **quarantined**: no respawn attempts for
//! `quarantine_cooldown`, so a wedged binary cannot hot-loop the
//! supervisor. Leaving quarantine is probation — one more fast crash
//! re-quarantines immediately.
//!
//! The tick thread never blocks on child I/O: worker stdout/stderr are
//! drained by dedicated reader threads (a full pipe would otherwise wedge
//! the child), and the address is scraped from the worker's own
//! `listening on ADDR` line. Readers carry the slot's spawn *epoch* so a
//! stale reader from a replaced child cannot resurrect state.

use crate::client::{self, ClientConfig};
use crate::json::Json;
use crate::telemetry;
use deptree_core::engine::signal;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the supervisor needs to run one fleet of workers.
#[derive(Debug, Clone)]
pub(crate) struct SupervisorConfig {
    /// The worker binary (normally the `deptree` binary itself).
    pub worker_bin: PathBuf,
    /// Per-slot argv tail (`serve --data … --addr 127.0.0.1:0 …`).
    pub worker_args: Vec<Vec<String>>,
    /// Base respawn delay after a crash.
    pub respawn_base: Duration,
    /// Cap on the exponential respawn delay.
    pub respawn_max: Duration,
    /// Uptime below this counts as a *fast* crash (quarantine fuel).
    pub fast_crash: Duration,
    /// Consecutive fast crashes before the slot is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined slot sits out before probation.
    pub quarantine_cooldown: Duration,
    /// How often an Up worker's `/readyz` is probed.
    pub probe_interval: Duration,
    /// Consecutive failed probes before the worker is declared dead.
    pub probe_failures: u32,
    /// How long a Starting worker may take to report its address.
    pub spawn_timeout: Duration,
    /// SIGTERM→SIGKILL grace per child at shutdown.
    pub child_grace: Duration,
}

/// Where a worker slot is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Child spawned, waiting for its `listening on` line.
    Starting,
    /// Address known, `/readyz` probes green (or not yet failed enough).
    Up,
    /// No child; a respawn is scheduled.
    Down,
    /// Crash-looping; respawns suspended for the cooldown.
    Quarantined,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Up => "up",
            Phase::Down => "down",
            Phase::Quarantined => "quarantined",
        }
    }
}

#[derive(Debug)]
struct SlotState {
    phase: Phase,
    addr: Option<String>,
    child: Option<Child>,
    pid: Option<u32>,
    /// Bumped on every spawn and teardown; readers from older children
    /// compare against it and drop their updates.
    epoch: u64,
    restarts: u64,
    fast_crashes: u32,
    probe_failures: u32,
    spawned_at: Instant,
    last_probe: Instant,
    retry_at: Instant,
}

/// One supervised worker slot.
#[derive(Debug)]
pub(crate) struct Slot {
    id: usize,
    state: Mutex<SlotState>,
}

fn lock(slot: &Slot) -> MutexGuard<'_, SlotState> {
    slot.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort gateway log line on stderr; a closed stderr is ignored.
pub(crate) fn log(msg: &str) {
    let _ = writeln!(std::io::stderr().lock(), "gateway: {msg}");
}

/// The fleet: slots plus the tick thread that walks their state machines.
pub(crate) struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<Arc<Slot>>,
    stop: AtomicBool,
    tick_thread: Mutex<Option<JoinHandle<()>>>,
}

/// Tick cadence: crash detection and respawn latency are bounded by this.
const TICK: Duration = Duration::from_millis(20);

impl Supervisor {
    /// Spawn every worker and the tick thread.
    pub fn start(cfg: SupervisorConfig) -> Arc<Supervisor> {
        let now = Instant::now();
        let slots = (0..cfg.worker_args.len().max(1))
            .map(|id| {
                Arc::new(Slot {
                    id,
                    state: Mutex::new(SlotState {
                        phase: Phase::Down,
                        addr: None,
                        child: None,
                        pid: None,
                        epoch: 0,
                        restarts: 0,
                        fast_crashes: 0,
                        probe_failures: 0,
                        spawned_at: now,
                        last_probe: now,
                        retry_at: now,
                    }),
                })
            })
            .collect();
        let sup = Arc::new(Supervisor {
            cfg,
            slots,
            stop: AtomicBool::new(false),
            tick_thread: Mutex::new(None),
        });
        for slot in &sup.slots {
            let mut st = lock(slot);
            sup.spawn_worker(slot, &mut st);
        }
        let ticker = Arc::clone(&sup);
        let handle = std::thread::Builder::new()
            .name("deptree-supervisor".to_owned())
            .spawn(move || {
                while !ticker.stop.load(Ordering::Acquire) {
                    ticker.tick();
                    std::thread::sleep(TICK);
                }
            })
            .ok();
        *sup.tick_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handle;
        sup
    }

    /// The worker's address, if it is currently Up.
    pub fn worker_addr(&self, id: usize) -> Option<String> {
        let slot = self.slots.get(id)?;
        let st = lock(slot);
        if st.phase == Phase::Up {
            st.addr.clone()
        } else {
            None
        }
    }

    /// Every Up worker with its address.
    pub fn live(&self) -> Vec<(usize, String)> {
        self.slots
            .iter()
            .filter_map(|s| {
                let st = lock(s);
                if st.phase == Phase::Up {
                    st.addr.clone().map(|a| (s.id, a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// How many workers are Up.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| lock(s).phase == Phase::Up)
            .count()
    }

    /// Current child pids, one entry per slot (`None` while down).
    pub fn pids(&self) -> Vec<Option<u32>> {
        self.slots.iter().map(|s| lock(s).pid).collect()
    }

    /// Total respawns across the fleet (initial spawns not counted).
    pub fn restarts(&self) -> u64 {
        self.slots.iter().map(|s| lock(s).restarts).sum()
    }

    /// How many slots are quarantined right now.
    pub fn quarantined_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| lock(s).phase == Phase::Quarantined)
            .count()
    }

    /// Per-worker status for `/healthz`.
    pub fn status_json(&self) -> Vec<Json> {
        self.slots
            .iter()
            .map(|s| {
                let st = lock(s);
                let mut j = Json::obj()
                    .set("worker", s.id as u64)
                    .set("phase", st.phase.name())
                    .set("restarts", st.restarts);
                if let Some(addr) = &st.addr {
                    j = j.set("addr", addr.as_str());
                }
                if let Some(pid) = st.pid {
                    j = j.set("pid", u64::from(pid));
                }
                j
            })
            .collect()
    }

    fn spawn_worker(&self, slot: &Arc<Slot>, st: &mut SlotState) {
        st.epoch += 1;
        let epoch = st.epoch;
        let args = self
            .cfg
            .worker_args
            .get(slot.id)
            .cloned()
            .unwrap_or_default();
        let spawned = Command::new(&self.cfg.worker_bin)
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn();
        match spawned {
            Ok(mut child) => {
                let pid = child.id();
                let stdout = child.stdout.take();
                let stderr = child.stderr.take();
                st.child = Some(child);
                st.pid = Some(pid);
                st.phase = Phase::Starting;
                st.addr = None;
                st.probe_failures = 0;
                st.spawned_at = Instant::now();
                if let Some(out) = stdout {
                    let s = Arc::clone(slot);
                    std::thread::Builder::new()
                        .name(format!("deptree-w{}-out", slot.id))
                        .spawn(move || scrape_stdout(&s, epoch, out))
                        .ok();
                }
                if let Some(err) = stderr {
                    let id = slot.id;
                    std::thread::Builder::new()
                        .name(format!("deptree-w{}-err", slot.id))
                        .spawn(move || forward_stderr(id, err))
                        .ok();
                }
            }
            Err(e) => {
                log(&format!(
                    "worker {}: spawn of {} failed: {e}",
                    slot.id,
                    self.cfg.worker_bin.display()
                ));
                st.child = None;
                st.pid = None;
                st.spawned_at = Instant::now(); // counts as an instant (fast) crash
                self.crash(slot.id, st, "spawn failed");
            }
        }
    }

    /// Tear down after a death: reap the child, account the crash streak,
    /// and schedule the respawn (or quarantine the slot).
    fn crash(&self, id: usize, st: &mut SlotState, why: &str) {
        if let Some(mut child) = st.child.take() {
            let _ = child.kill(); // no-op if already dead
            let _ = child.wait(); // reap — a zombie would outlive us
        }
        st.addr = None;
        st.pid = None;
        st.epoch += 1;
        st.probe_failures = 0;
        telemetry::worker_up(id).set(0);
        let fast = st.spawned_at.elapsed() < self.cfg.fast_crash;
        if fast {
            st.fast_crashes += 1;
        } else {
            st.fast_crashes = 0;
        }
        if st.fast_crashes >= self.cfg.quarantine_after {
            st.phase = Phase::Quarantined;
            st.retry_at = Instant::now() + self.cfg.quarantine_cooldown;
            log(&format!(
                "worker {id} quarantined after {} fast crashes ({why}); cooldown {:?}",
                st.fast_crashes, self.cfg.quarantine_cooldown
            ));
        } else {
            st.phase = Phase::Down;
            let shift = st.fast_crashes.min(16);
            let backoff = self
                .cfg
                .respawn_base
                .saturating_mul(1u32 << shift)
                .min(self.cfg.respawn_max);
            st.retry_at = Instant::now() + backoff;
            log(&format!("worker {id} down ({why}); respawn in {backoff:?}"));
        }
    }

    fn tick(&self) {
        for slot in &self.slots {
            // What to do outside the lock: probes do network I/O and must
            // not serialize the whole fleet behind one slot's mutex.
            enum Action {
                None,
                Probe(String, u64),
            }
            let action = {
                let mut st = lock(slot);
                match st.phase {
                    Phase::Starting => {
                        if child_exited(&mut st) {
                            self.crash(slot.id, &mut st, "exited during startup");
                        } else if st.spawned_at.elapsed() > self.cfg.spawn_timeout {
                            self.crash(slot.id, &mut st, "no address before spawn timeout");
                        }
                        Action::None
                    }
                    Phase::Up => {
                        if child_exited(&mut st) {
                            self.crash(slot.id, &mut st, "exited");
                            Action::None
                        } else if st.last_probe.elapsed() >= self.cfg.probe_interval {
                            st.last_probe = Instant::now();
                            match &st.addr {
                                Some(addr) => Action::Probe(addr.clone(), st.epoch),
                                None => Action::None,
                            }
                        } else {
                            Action::None
                        }
                    }
                    Phase::Down | Phase::Quarantined => {
                        if Instant::now() >= st.retry_at {
                            if st.phase == Phase::Quarantined {
                                // Probation: one more fast crash re-quarantines.
                                st.fast_crashes = self.cfg.quarantine_after.saturating_sub(1);
                                log(&format!("worker {} leaves quarantine (probation)", slot.id));
                            }
                            st.restarts += 1;
                            telemetry::worker_restarts(slot.id).inc();
                            self.spawn_worker(slot, &mut st);
                        }
                        Action::None
                    }
                }
            };
            if let Action::Probe(addr, epoch) = action {
                let ok = probe_ready(&addr);
                let mut st = lock(slot);
                if st.epoch != epoch || st.phase != Phase::Up {
                    continue; // the slot moved on while we probed
                }
                if ok {
                    st.probe_failures = 0;
                } else {
                    st.probe_failures += 1;
                    if st.probe_failures >= self.cfg.probe_failures {
                        self.crash(slot.id, &mut st, "failed readyz probes");
                    }
                }
            }
        }
        telemetry::gateway_metrics()
            .quarantined
            .set(self.quarantined_count() as i64);
    }

    /// Stop ticking and reap every child: SIGTERM exactly once each —
    /// `deptree serve` treats a *second* SIGTERM as "force exit 130", so
    /// double-signalling would turn every clean drain into a forced one —
    /// then wait it out under one shared `child_grace` deadline, SIGKILL
    /// past it.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self
            .tick_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.cfg.child_grace;
        for slot in &self.slots {
            let mut st = lock(slot);
            st.epoch += 1;
            if let Some(mut child) = st.child.take() {
                // The deadline is shared: one wedged worker cannot make
                // shutdown take N × grace, it just costs later (healthy,
                // near-instant) workers their slack.
                let grace = deadline.saturating_duration_since(Instant::now());
                let status = signal::reap_with_grace(&mut child, grace);
                let outcome = match status {
                    Some(s) if s.success() => "exited cleanly".to_owned(),
                    Some(s) => format!("exited with {s}"),
                    None => "did not exit".to_owned(),
                };
                log(&format!(
                    "worker {} (pid {}) {outcome}",
                    slot.id,
                    st.pid.unwrap_or(0)
                ));
            }
            st.pid = None;
            st.addr = None;
            st.phase = Phase::Down;
            telemetry::worker_up(slot.id).set(0);
        }
    }
}

/// Did the slot's child exit? (`try_wait` also reaps it on success.)
fn child_exited(st: &mut SlotState) -> bool {
    match st.child.as_mut() {
        Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
        None => true,
    }
}

/// One `/readyz` round trip with no retries and tight timeouts: the
/// supervisor's own failure counter is the retry policy.
fn probe_ready(addr: &str) -> bool {
    let cfg = ClientConfig {
        addr: addr.to_owned(),
        retries: 0,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(10),
        connect_timeout: Duration::from_millis(250),
        io_timeout: Duration::from_secs(1),
        frame_timeout: Duration::from_secs(2),
        seed: 0,
        max_response_bytes: 64 * 1024,
    };
    matches!(client::query(&cfg, "GET", "/readyz", None), Ok(r) if r.status == 200)
}

/// Drain the worker's stdout forever (a full pipe would wedge the child)
/// and scrape its `listening on ADDR` announcement.
fn scrape_stdout(slot: &Arc<Slot>, epoch: u64, out: ChildStdout) {
    for line in BufReader::new(out).lines().map_while(Result::ok) {
        if let Some(addr) = line.strip_prefix("listening on ") {
            let mut st = lock(slot);
            if st.epoch == epoch && st.phase == Phase::Starting {
                st.addr = Some(addr.trim().to_owned());
                st.phase = Phase::Up;
                st.probe_failures = 0;
                st.last_probe = Instant::now();
                telemetry::worker_up(slot.id).set(1);
                log(&format!(
                    "worker {} (pid {}) up at {}",
                    slot.id,
                    st.pid.unwrap_or(0),
                    addr.trim()
                ));
            }
        }
    }
}

/// Relay the worker's stderr onto the gateway's, prefixed per worker.
fn forward_stderr(id: usize, err: ChildStderr) {
    for line in BufReader::new(err).lines().map_while(Result::ok) {
        log(&format!("worker {id} stderr: {line}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(bin: &str, args: Vec<Vec<String>>) -> SupervisorConfig {
        SupervisorConfig {
            worker_bin: PathBuf::from(bin),
            worker_args: args,
            respawn_base: Duration::from_millis(20),
            respawn_max: Duration::from_millis(100),
            fast_crash: Duration::from_secs(1),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(60),
            probe_interval: Duration::from_millis(100),
            probe_failures: 3,
            spawn_timeout: Duration::from_secs(5),
            child_grace: Duration::from_millis(500),
        }
    }

    #[test]
    #[cfg(unix)]
    fn a_crash_looping_command_ends_up_quarantined() {
        // `false` exits 1 immediately: three fast crashes then quarantine.
        let sup = Supervisor::start(tiny_cfg("false", vec![vec![]]));
        let deadline = Instant::now() + Duration::from_secs(10);
        while sup.quarantined_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            sup.quarantined_count(),
            1,
            "status: {:?}",
            sup.status_json()
        );
        // Quarantine means *no* further respawns during the cooldown.
        let restarts = sup.restarts();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(sup.restarts(), restarts, "respawned while quarantined");
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn a_missing_binary_counts_as_fast_crashes_not_a_hot_loop() {
        let sup = Supervisor::start(tiny_cfg("/nonexistent/deptree-worker", vec![vec![]]));
        let deadline = Instant::now() + Duration::from_secs(10);
        while sup.quarantined_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sup.quarantined_count(), 1);
        // The spawn-fail path must count attempts, not spin: with base 20ms
        // and doubling, a hot loop would show hundreds of restarts.
        assert!(sup.restarts() < 10, "restarts = {}", sup.restarts());
        sup.shutdown();
    }

    #[test]
    #[cfg(unix)]
    fn shutdown_reaps_a_long_running_child() {
        // `sleep 30` ignores nothing — SIGTERM kills it within the grace.
        let sup = Supervisor::start(tiny_cfg("sleep", vec![vec!["30".to_owned()]]));
        std::thread::sleep(Duration::from_millis(100));
        let pid = sup.pids()[0];
        assert!(pid.is_some(), "child did not spawn");
        let started = Instant::now();
        sup.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(sup.pids()[0], None);
    }
}
