//! Seeded chaos harness: deterministic kill/wedge/slow schedules for the
//! gateway's worker fleet.
//!
//! In the spirit of `deptree_synth::fault::FaultPlan`, a [`ChaosPlan`]
//! is pure data derived from a seed: the same seed always yields the
//! same event schedule, so a failing chaos run reproduces exactly. The
//! gateway arms it behind the test-only `--chaos-plan <seed>` flag; the
//! driver thread then delivers real signals to real worker pids at the
//! scheduled offsets:
//!
//! * **Kill** — `SIGKILL`: the crash path (respawn backoff, quarantine
//!   fuel, failover re-sharding).
//! * **Wedge** — `SIGSTOP` with no resume: the process is alive but
//!   unresponsive; `/readyz` probes must flag it dead, and the
//!   supervisor's kill-and-respawn must clear the stopped process.
//! * **Slow** — `SIGSTOP` then `SIGCONT` after a pause: a transient
//!   stall (GC, CPU steal) that must ride through on retries and
//!   hedged replica reads without the worker being declared dead.
//!
//! The plan only *schedules against slots*; pid resolution happens at
//! delivery time through the supervisor, so a respawned worker receives
//! the fault its slot was scheduled for — chaos keeps up with healing.

use super::supervisor::{log, Supervisor};
use deptree_core::engine::signal;
use deptree_synth::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChaosKind {
    /// `SIGKILL` the slot's current child.
    Kill,
    /// `SIGSTOP` with no `SIGCONT`: alive but wedged until the
    /// supervisor's probes give up on it.
    Wedge,
    /// `SIGSTOP`, then `SIGCONT` after the pause.
    Slow(Duration),
}

/// One event in a [`ChaosPlan`]: at offset `at` from arming, hit `slot`
/// with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChaosEvent {
    /// Offset from the moment the plan is armed.
    pub at: Duration,
    /// Worker slot targeted (whatever pid occupies it at that moment).
    pub slot: usize,
    /// The fault to deliver.
    pub kind: ChaosKind,
}

/// A deterministic fault schedule over a fleet of `workers` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChaosPlan {
    /// Seed the schedule was derived from (for log lines).
    pub seed: u64,
    /// Events in ascending `at` order.
    pub events: Vec<ChaosEvent>,
}

/// How long a generated plan keeps injecting faults.
const HORIZON: Duration = Duration::from_secs(8);
/// Gap between consecutive events (drawn uniformly).
const GAP_MS: std::ops::RangeInclusive<u64> = 400..=1200;
/// Pause length for `Slow` events.
const SLOW_MS: std::ops::RangeInclusive<u64> = 100..=400;

impl ChaosPlan {
    /// Derive the full schedule from a seed. Pure: equal seeds and
    /// worker counts yield equal plans.
    pub fn from_seed(seed: u64, workers: usize) -> ChaosPlan {
        let workers = workers.max(1);
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut at = Duration::ZERO;
        loop {
            at += Duration::from_millis(rng.random_range(GAP_MS));
            if at >= HORIZON {
                break;
            }
            let slot = rng.random_range(0..workers);
            // Weighted kinds: crashes dominate (they exercise the most
            // machinery), wedges and slows keep the probe paths honest.
            let kind = match rng.random_range(0..10u32) {
                0..=4 => ChaosKind::Kill,
                5..=7 => ChaosKind::Slow(Duration::from_millis(rng.random_range(SLOW_MS))),
                _ => ChaosKind::Wedge,
            };
            events.push(ChaosEvent { at, slot, kind });
        }
        ChaosPlan { seed, events }
    }
}

/// Arm a plan against a live fleet: a driver thread delivers each event
/// at its offset, resolving the slot to whatever pid occupies it then.
/// Returns a stop flag; setting it ends the thread at the next event
/// boundary. The thread exits on its own once the schedule is spent.
pub(crate) fn arm(plan: ChaosPlan, supervisor: Arc<Supervisor>) -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let spawned = std::thread::Builder::new()
        .name("deptree-chaos".to_owned())
        .spawn(move || {
            log(&format!(
                "chaos: armed seed {} with {} event(s) over {:?}",
                plan.seed,
                plan.events.len(),
                HORIZON
            ));
            let armed = Instant::now();
            for event in &plan.events {
                loop {
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                    let elapsed = armed.elapsed();
                    if elapsed >= event.at {
                        break;
                    }
                    std::thread::sleep((event.at - elapsed).min(Duration::from_millis(25)));
                }
                deliver(event, &supervisor);
            }
            log("chaos: schedule spent");
        });
    drop(spawned);
    stop
}

/// Deliver one event to the slot's current occupant (if any).
fn deliver(event: &ChaosEvent, supervisor: &Supervisor) {
    let Some(pid) = supervisor.pids().get(event.slot).copied().flatten() else {
        log(&format!(
            "chaos: slot {} empty at {:?}; event skipped",
            event.slot, event.at
        ));
        return;
    };
    match event.kind {
        ChaosKind::Kill => {
            log(&format!(
                "chaos: SIGKILL worker {} (pid {pid}) at {:?}",
                event.slot, event.at
            ));
            signal::send(pid, signal::SIGKILL);
        }
        ChaosKind::Wedge => {
            log(&format!(
                "chaos: SIGSTOP (wedge) worker {} (pid {pid}) at {:?}",
                event.slot, event.at
            ));
            signal::send(pid, signal::SIGSTOP);
        }
        ChaosKind::Slow(pause) => {
            log(&format!(
                "chaos: SIGSTOP+CONT (slow {pause:?}) worker {} (pid {pid}) at {:?}",
                event.slot, event.at
            ));
            signal::send(pid, signal::SIGSTOP);
            std::thread::sleep(pause);
            // The slot may have been reaped meanwhile; re-resolve so the
            // CONT cannot hit a recycled pid.
            if supervisor.pids().get(event.slot).copied().flatten() == Some(pid) {
                signal::send(pid, signal::SIGCONT);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosPlan::from_seed(42, 4);
        let b = ChaosPlan::from_seed(42, 4);
        assert_eq!(a, b, "a chaos plan must be a pure function of its seed");
        assert!(
            !a.events.is_empty(),
            "the horizon admits at least one event"
        );
    }

    #[test]
    fn different_seeds_differ_and_stay_in_bounds() {
        let a = ChaosPlan::from_seed(1, 3);
        let b = ChaosPlan::from_seed(2, 3);
        assert_ne!(a, b);
        for plan in [&a, &b] {
            let mut last = Duration::ZERO;
            for e in &plan.events {
                assert!(e.at < HORIZON);
                assert!(e.at >= last, "events must be time-ordered");
                assert!(e.slot < 3);
                last = e.at;
            }
        }
    }

    #[test]
    fn worker_count_bounds_the_slots() {
        for workers in [1usize, 2, 7] {
            let plan = ChaosPlan::from_seed(9, workers);
            assert!(plan.events.iter().all(|e| e.slot < workers));
        }
    }
}
