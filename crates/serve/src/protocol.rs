//! Wire protocol: bounded HTTP/1.1 framing and the service error-code
//! table.
//!
//! The server speaks a deliberately small slice of HTTP/1.1 —
//! `Content-Length` bodies only, no transfer codings — because every
//! feature dropped is a failure mode removed. Connections are reused
//! (HTTP/1.1 keep-alive, see `listener::serve_conn`), which is exactly
//! why the framing is strict: under reuse, any disagreement about where
//! one request ends and the next begins is a request-smuggling desync,
//! so `Content-Length` must be a single pure-ASCII-digit header
//! ([`parse_content_length`]) and any bytes read past a frame are
//! carried to the next parse, never dropped. Every read is bounded
//! three ways: by the per-read socket
//! timeout (a fully stalled peer), by an absolute per-frame deadline
//! ([`FrameClock`] — a peer dripping one byte per interval would reset a
//! per-read timeout forever, so the whole frame also gets a fixed budget),
//! and by byte caps on the header block and body ([`Limits`]). Anything
//! outside the slice is answered with a structured JSON error, never a
//! panic and never an unbounded buffer.
//!
//! The [`ErrorCode`] table is the protocol face of
//! [`deptree_core::DeptreeError`]: each code carries the HTTP status it
//! travels with, the CLI exit code `deptree query` maps it back onto
//! (kept in sync with `DeptreeError::exit_code`, see DESIGN.md §10), and
//! whether a client may retry it.

use crate::json::Json;
use deptree_core::engine::BudgetKind;
use deptree_core::DeptreeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Byte caps applied while reading a request or response.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_header_bytes: usize,
    /// Maximum body bytes (the declared `Content-Length` is checked
    /// before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token.
    pub method: String,
    /// Request target (path + optional query, as sent).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client is willing to reuse this connection: HTTP/1.1
    /// defaults to `true`, HTTP/1.0 to `false`, and an explicit
    /// `Connection:` header overrides either way. The server may still
    /// close (drain, per-connection request cap, frame errors).
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection before sending anything useful.
    Closed,
    /// A socket read/write timed out (slow client).
    Timeout,
    /// A byte cap was exceeded; the payload names which.
    TooLarge(String),
    /// The bytes received do not form a valid frame.
    Malformed(String),
    /// Any other I/O failure.
    Io(String),
}

impl ProtoError {
    /// The error code this frame failure is reported as.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtoError::Closed => ErrorCode::BadRequest,
            ProtoError::Timeout => ErrorCode::Timeout,
            ProtoError::TooLarge(_) => ErrorCode::TooLarge,
            ProtoError::Malformed(_) => ErrorCode::BadRequest,
            ProtoError::Io(_) => ErrorCode::Io,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            ProtoError::Closed => "connection closed".into(),
            ProtoError::Timeout => "timed out reading the request".into(),
            ProtoError::TooLarge(what) => format!("{what} exceeds the configured limit"),
            ProtoError::Malformed(what) => format!("malformed request: {what}"),
            ProtoError::Io(m) => format!("i/o error: {m}"),
        }
    }
}

fn classify_io(e: &std::io::Error) -> ProtoError {
    use std::io::ErrorKind::*;
    match e.kind() {
        WouldBlock | TimedOut => ProtoError::Timeout,
        ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof => ProtoError::Closed,
        _ => ProtoError::Io(e.to_string()),
    }
}

/// Absolute budget for reading one whole frame.
///
/// The per-read socket timeout alone is not slow-loris protection: a
/// peer dripping one byte per interval resets it on every read and can
/// hold a worker indefinitely. The clock fixes a deadline at frame start
/// and re-arms the socket timeout before each read to
/// `min(per_read, remaining)`, so the total frame read is bounded no
/// matter how the bytes arrive; an exhausted budget reads as
/// [`ProtoError::Timeout`] (408).
#[derive(Debug, Clone, Copy)]
pub struct FrameClock {
    deadline: Instant,
    per_read: Duration,
}

impl FrameClock {
    /// Start the clock for one frame: `per_read` bounds each individual
    /// read, `total` the whole frame.
    pub fn start(per_read: Duration, total: Duration) -> FrameClock {
        FrameClock {
            deadline: Instant::now() + total,
            per_read,
        }
    }

    /// Set the socket read timeout to the smaller of the per-read
    /// timeout and the remaining frame budget; errors with `Timeout`
    /// once the budget is spent.
    fn arm(&self, stream: &TcpStream) -> Result<(), ProtoError> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ProtoError::Timeout);
        }
        // `set_read_timeout(Some(0))` is an error in std; clamp up.
        let timeout = self.per_read.min(remaining).max(Duration::from_millis(1));
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| classify_io(&e))
    }
}

/// Read bytes until the blank line ending an HTTP head, returning the
/// head. `carry` seeds the parse with bytes already pulled off the
/// socket (the tail of a pipelined previous frame) and, on return, holds
/// any bytes read past the blank line — under connection reuse those are
/// the next frame's prefix and dropping them would desynchronize the
/// stream. Bounded by `max_head` bytes and the frame clock.
pub fn read_head(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    max_head: usize,
    clock: &FrameClock,
) -> Result<Vec<u8>, ProtoError> {
    let started_empty = carry.is_empty();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find(carry, b"\r\n\r\n") {
            let mut head: Vec<u8> = carry.drain(..pos + 4).collect();
            head.truncate(pos);
            return Ok(head);
        }
        if carry.len() > max_head {
            return Err(ProtoError::TooLarge("header block".into()));
        }
        clock.arm(stream)?;
        let n = stream.read(&mut chunk).map_err(|e| classify_io(&e))?;
        if n == 0 {
            return Err(if carry.is_empty() && started_empty {
                ProtoError::Closed
            } else {
                ProtoError::Malformed("connection closed mid-header".into())
            });
        }
        carry.extend_from_slice(&chunk[..n]);
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, ProtoError> {
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtoError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(headers)
}

/// Read a fixed-length body of exactly `want` bytes. `carry` holds bytes
/// already pulled past the head; bytes beyond `want` stay in `carry` for
/// the next frame (they are a pipelined successor, not garbage). Bounded
/// by `want` and the frame clock.
pub fn read_body(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    want: usize,
    clock: &FrameClock,
) -> Result<Vec<u8>, ProtoError> {
    let mut chunk = [0u8; 4096];
    while carry.len() < want {
        clock.arm(stream)?;
        let n = stream.read(&mut chunk).map_err(|e| classify_io(&e))?;
        if n == 0 {
            return Err(ProtoError::Malformed("connection closed mid-body".into()));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    let rest = carry.split_off(want);
    Ok(std::mem::replace(carry, rest))
}

/// Strict `Content-Length` value parse: a non-empty run of ASCII digits
/// and nothing else. `str::parse::<usize>` also accepts a leading `+`,
/// and lenient forms are exactly how two parsers come to disagree about
/// where a frame ends — a request-smuggling vector once connections are
/// reused — so anything non-canonical is rejected outright.
pub fn parse_content_length(value: &str) -> Result<usize, ProtoError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ProtoError::Malformed(format!(
            "bad content-length `{value}`"
        )));
    }
    value
        .parse::<usize>()
        .map_err(|_| ProtoError::Malformed(format!("content-length `{value}` out of range")))
}

/// Resolve the `Content-Length` of a parsed header block. More than one
/// `Content-Length` header — even two agreeing copies — is rejected: a
/// duplicate only ever appears when something upstream mangled the frame
/// or someone is probing for a first-header/last-header parser split.
pub fn content_length_of(headers: &[(String, String)]) -> Result<usize, ProtoError> {
    let mut values = headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .map(|(_, value)| value.as_str());
    let Some(first) = values.next() else {
        return Ok(0);
    };
    if values.next().is_some() {
        return Err(ProtoError::Malformed(
            "multiple content-length headers".into(),
        ));
    }
    parse_content_length(first)
}

/// Decide connection reuse from the HTTP version and `Connection:`
/// header: explicit `close`/`keep-alive` tokens win, otherwise HTTP/1.1
/// defaults to reuse and HTTP/1.0 to close.
pub fn wants_keep_alive(version_is_1_0: bool, connection: Option<&str>) -> bool {
    match connection.map(str::to_ascii_lowercase) {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => !version_is_1_0,
    }
}

/// Read one request frame off the socket under the given limits and
/// frame budget. `carry` threads leftover bytes between pipelined
/// frames on a reused connection; pass a fresh empty buffer for
/// one-shot connections.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &Limits,
    clock: &FrameClock,
    carry: &mut Vec<u8>,
) -> Result<Request, ProtoError> {
    let head = read_head(stream, carry, limits.max_header_bytes, clock)?;
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ProtoError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ProtoError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    let headers = parse_headers(lines)?;
    let request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        keep_alive: wants_keep_alive(
            version == "HTTP/1.0",
            headers
                .iter()
                .find(|(name, _)| name == "connection")
                .map(|(_, value)| value.as_str()),
        ),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ProtoError::Malformed(
            "transfer-encoding is not supported; send content-length".into(),
        ));
    }
    let content_length = content_length_of(&request.headers)?;
    if content_length > limits.max_body_bytes {
        return Err(ProtoError::TooLarge("request body".into()));
    }
    let body = read_body(stream, carry, content_length, clock)?;
    Ok(Request { body, ..request })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a JSON response frame (best effort; callers ignore the result
/// when the peer is already gone). `keep_alive` is the server's verdict
/// for this connection and is announced in the `Connection:` header so
/// the client never parks a socket the server is about to close.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_raw_response(
        stream,
        status,
        "application/json",
        body.render().as_bytes(),
        keep_alive,
    )
}

/// Like [`write_response`] but for a body that is already rendered JSON
/// bytes — the gateway's proxy path and the response cache replay bytes
/// without re-parsing or re-serializing them, so the bytes the client
/// sees are the bytes originally produced.
pub fn write_json_bytes_response(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_raw_response(stream, status, "application/json", body, keep_alive)
}

/// Like [`write_response`] but for non-JSON payloads — the `/metrics`
/// endpoint answers Prometheus text exposition (version 0.0.4).
pub fn write_text_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_raw_response(
        stream,
        status,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
        keep_alive,
    )
}

fn write_raw_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    payload: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        payload.len(),
    );
    // One write per frame: a head-then-body pair of small writes
    // interacts with Nagle + delayed ACK into ~40 ms stalls on reused
    // connections (close-per-request hid it behind the shutdown flush).
    let mut frame = Vec::with_capacity(head.len() + payload.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Every failure class the protocol can report. The table is the service
/// mirror of the CLI exit codes (0–8): `exit_code` says what
/// `deptree query` exits with when the error is terminal, `retryable`
/// whether the client's backoff loop may try again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or body was malformed.
    BadRequest,
    /// Unknown route or dataset.
    NotFound,
    /// Known route, wrong method.
    MethodNotAllowed,
    /// The client was too slow producing its request.
    Timeout,
    /// A header/body byte cap was exceeded.
    TooLarge,
    /// Admission control shed the request (queue or connection cap).
    Overloaded,
    /// The server is draining and no longer takes work.
    Draining,
    /// Server-side I/O failure.
    Io,
    /// Rule or input text failed to parse.
    Parse,
    /// A relation-level invariant was violated.
    Relation,
    /// Configuration out of range.
    InvalidConfig,
    /// Unknown notation name.
    UnknownNotation,
    /// A budget was exhausted where a complete answer was required.
    BudgetExhausted,
    /// The request was cancelled (drain hard-stop).
    Cancelled,
    /// The feature combination is not supported.
    Unsupported,
    /// A bug: the handler panicked and was caught.
    Internal,
}

impl ErrorCode {
    /// Stable wire name carried in `error.code`.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::Timeout => "timeout",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::Io => "io",
            ErrorCode::Parse => "parse",
            ErrorCode::Relation => "relation",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::UnknownNotation => "unknown_notation",
            ErrorCode::BudgetExhausted => "budget_exhausted",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorCode::wire`].
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "not_found" => ErrorCode::NotFound,
            "method_not_allowed" => ErrorCode::MethodNotAllowed,
            "timeout" => ErrorCode::Timeout,
            "too_large" => ErrorCode::TooLarge,
            "overloaded" => ErrorCode::Overloaded,
            "draining" => ErrorCode::Draining,
            "io" => ErrorCode::Io,
            "parse" => ErrorCode::Parse,
            "relation" => ErrorCode::Relation,
            "invalid_config" => ErrorCode::InvalidConfig,
            "unknown_notation" => ErrorCode::UnknownNotation,
            "budget_exhausted" => ErrorCode::BudgetExhausted,
            "cancelled" => ErrorCode::Cancelled,
            "unsupported" => ErrorCode::Unsupported,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status this code travels with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest
            | ErrorCode::Parse
            | ErrorCode::Relation
            | ErrorCode::InvalidConfig
            | ErrorCode::Unsupported => 400,
            ErrorCode::NotFound | ErrorCode::UnknownNotation => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Timeout => 408,
            ErrorCode::TooLarge => 413,
            ErrorCode::Overloaded => 429,
            ErrorCode::Draining | ErrorCode::Cancelled | ErrorCode::BudgetExhausted => 503,
            ErrorCode::Io | ErrorCode::Internal => 500,
        }
    }

    /// The CLI exit status `deptree query` uses when this error is final —
    /// the same classes the local CLI uses (DESIGN.md §8/§10).
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::BadRequest | ErrorCode::MethodNotAllowed | ErrorCode::Internal => 1,
            ErrorCode::Io | ErrorCode::Timeout | ErrorCode::Overloaded | ErrorCode::Draining => 2,
            ErrorCode::Parse | ErrorCode::TooLarge => 3,
            ErrorCode::Relation => 4,
            ErrorCode::NotFound | ErrorCode::InvalidConfig | ErrorCode::UnknownNotation => 5,
            ErrorCode::BudgetExhausted => 6,
            ErrorCode::Cancelled => 7,
            ErrorCode::Unsupported => 8,
        }
    }

    /// May a client retry after backoff? Only pure load/timing conditions
    /// qualify; everything else would fail identically again.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Timeout | ErrorCode::Overloaded | ErrorCode::Draining
        )
    }
}

/// Map a library error onto its protocol code.
pub fn code_for(e: &DeptreeError) -> ErrorCode {
    match e {
        DeptreeError::Io { .. } => ErrorCode::Io,
        DeptreeError::Parse(_) => ErrorCode::Parse,
        DeptreeError::Relation(_) => ErrorCode::Relation,
        DeptreeError::InvalidConfig(_) => ErrorCode::InvalidConfig,
        DeptreeError::UnknownNotation(_) => ErrorCode::UnknownNotation,
        DeptreeError::BudgetExhausted(_) => ErrorCode::BudgetExhausted,
        DeptreeError::Cancelled => ErrorCode::Cancelled,
        DeptreeError::Unsupported(_) => ErrorCode::Unsupported,
    }
}

/// The standard error body: `{"error":{"code":…,"message":…}}`.
pub fn error_body(code: ErrorCode, message: &str) -> Json {
    Json::obj().set(
        "error",
        Json::obj().set("code", code.wire()).set("message", message),
    )
}

/// Stable wire token for a budget kind (`exhausted` response field).
pub fn budget_wire(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::Deadline => "deadline",
        BudgetKind::Nodes => "nodes",
        BudgetKind::Rows => "rows",
        BudgetKind::Memory => "memory",
        BudgetKind::Cancelled => "cancelled",
    }
}

/// Inverse of [`budget_wire`].
pub fn budget_from_wire(s: &str) -> Option<BudgetKind> {
    Some(match s {
        "deadline" => BudgetKind::Deadline,
        "nodes" => BudgetKind::Nodes,
        "rows" => BudgetKind::Rows,
        "memory" => BudgetKind::Memory,
        "cancelled" => BudgetKind::Cancelled,
        _ => None?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_the_cli_table() {
        // The protocol table must agree with DeptreeError::exit_code for
        // every library error class.
        let cases: Vec<DeptreeError> = vec![
            DeptreeError::Io {
                path: "x".into(),
                message: "gone".into(),
            },
            DeptreeError::Parse("p".into()),
            DeptreeError::InvalidConfig("c".into()),
            DeptreeError::UnknownNotation("n".into()),
            DeptreeError::BudgetExhausted(BudgetKind::Deadline),
            DeptreeError::Cancelled,
            DeptreeError::Unsupported("u".into()),
        ];
        for e in &cases {
            assert_eq!(code_for(e).exit_code(), e.exit_code(), "{e}");
        }
    }

    #[test]
    fn wire_names_round_trip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::NotFound,
            ErrorCode::MethodNotAllowed,
            ErrorCode::Timeout,
            ErrorCode::TooLarge,
            ErrorCode::Overloaded,
            ErrorCode::Draining,
            ErrorCode::Io,
            ErrorCode::Parse,
            ErrorCode::Relation,
            ErrorCode::InvalidConfig,
            ErrorCode::UnknownNotation,
            ErrorCode::BudgetExhausted,
            ErrorCode::Cancelled,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(code.wire()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("nope"), None);
    }

    #[test]
    fn budget_wire_round_trips() {
        for kind in [
            BudgetKind::Deadline,
            BudgetKind::Nodes,
            BudgetKind::Rows,
            BudgetKind::Memory,
            BudgetKind::Cancelled,
        ] {
            assert_eq!(budget_from_wire(budget_wire(kind)), Some(kind));
        }
    }

    #[test]
    fn content_length_must_be_pure_digits() {
        assert_eq!(parse_content_length("0"), Ok(0));
        assert_eq!(parse_content_length("128"), Ok(128));
        for bad in ["+5", "-5", " 5", "5 ", "0x5", "5,5", "", "1e3"] {
            assert!(
                matches!(parse_content_length(bad), Err(ProtoError::Malformed(_))),
                "`{bad}` must be rejected"
            );
        }
        // Larger than usize::MAX: canonical digits but unrepresentable.
        let huge = "9".repeat(40);
        assert!(matches!(
            parse_content_length(&huge),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        let agreeing = vec![
            ("content-length".to_string(), "5".to_string()),
            ("content-length".to_string(), "5".to_string()),
        ];
        assert!(matches!(
            content_length_of(&agreeing),
            Err(ProtoError::Malformed(_))
        ));
        let conflicting = vec![
            ("content-length".to_string(), "5".to_string()),
            ("content-length".to_string(), "50".to_string()),
        ];
        assert!(matches!(
            content_length_of(&conflicting),
            Err(ProtoError::Malformed(_))
        ));
        let single = vec![("content-length".to_string(), "7".to_string())];
        assert_eq!(content_length_of(&single), Ok(7));
        assert_eq!(content_length_of(&[]), Ok(0));
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        assert!(wants_keep_alive(false, None));
        assert!(!wants_keep_alive(true, None));
        assert!(!wants_keep_alive(false, Some("close")));
        assert!(wants_keep_alive(true, Some("keep-alive")));
        assert!(!wants_keep_alive(false, Some("Keep-Alive, Close")));
        assert!(wants_keep_alive(false, Some("upgrade")));
    }

    #[test]
    fn retryable_is_load_only() {
        assert!(ErrorCode::Overloaded.retryable());
        assert!(ErrorCode::Draining.retryable());
        assert!(ErrorCode::Timeout.retryable());
        assert!(!ErrorCode::Parse.retryable());
        assert!(!ErrorCode::Cancelled.retryable());
        assert!(!ErrorCode::Internal.retryable());
    }
}
