//! The `deptree query` client: one JSON request with retry, jittered
//! exponential backoff, and the retryable/terminal distinction.
//!
//! Retry policy: only pure load/timing failures are retried — connect
//! refused (server restarting behind the same address), socket timeouts,
//! and responses carrying a retryable [`ErrorCode`] (`overloaded`,
//! `draining`, `timeout`). Anything else (parse errors, unknown
//! datasets, budget exhaustion, internal errors) would fail identically
//! on the next attempt, so it is terminal on the first.
//!
//! A refused connection is deliberately in the *retryable* class, on
//! par with a `draining` response: a supervised worker that crashed is
//! respawned behind the same address within its backoff budget, and a
//! gateway (or a plain `deptree query`) that hard-failed on the first
//! `ECONNREFUSED` would turn every respawn window into user-visible
//! errors. `refused_connection_is_ridden_out_across_a_respawn_window`
//! pins this contract.
//!
//! Backoff between attempts is `min(max, base · 2^attempt)` scaled by a
//! uniform jitter in `[0.5, 1.0]`, drawn from the vendored deterministic
//! PRNG so tests can pin the schedule with a seed.
//!
//! Connection reuse: the `*_pooled` variants draw idle keep-alive
//! sockets from a [`ConnPool`] instead of dialing per request, parking
//! the socket back after a response whose `Connection:` header permits
//! it. A parked socket may have been closed by the server at any moment
//! (idle window, drain, restart); a failure before the first response
//! byte on a reused socket is therefore treated as *stale* — the attempt
//! falls through to a fresh dial rather than burning a retry.

use crate::json::Json;
use crate::protocol::{
    content_length_of, read_body, read_head, wants_keep_alive, ErrorCode, FrameClock, ProtoError,
};
use deptree_synth::Rng;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Attempts beyond the first (3 retries = up to 4 attempts).
    pub retries: u32,
    /// First backoff step.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per attempt (covers server compute, so
    /// it should exceed the request's `timeout_ms`).
    pub io_timeout: Duration,
    /// Absolute cap on reading one whole response frame, however slowly
    /// its bytes arrive (`io_timeout` bounds each individual read).
    pub frame_timeout: Duration,
    /// Jitter seed; equal seeds give equal backoff schedules.
    pub seed: u64,
    /// Cap on the response body the client will buffer.
    pub max_response_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7411".to_owned(),
            retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(75),
            frame_timeout: Duration::from_secs(90),
            seed: 0x5eed,
            max_response_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A decoded server response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Json,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A request that failed for good.
#[derive(Debug)]
pub struct ClientError {
    /// The terminal error class (drives the exit code).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, after {} attempt(s))",
            self.message,
            self.code.wire(),
            self.attempts
        )
    }
}

/// One attempt's outcome, before retry policy is applied.
enum Attempt<T> {
    /// Got a well-formed response frame.
    Done(u16, T),
    /// Failed in a way worth retrying.
    Retryable(String),
    /// Failed for good.
    Terminal(ErrorCode, String),
}

/// What the caller-specific policy decided about one well-formed
/// response, inside [`with_retries`].
enum Verdict<R> {
    /// Return this to the caller.
    Accept(R),
    /// Fail terminally with this error class.
    Fail(ErrorCode, String),
    /// Burn a retry and try again.
    Retry(String),
}

/// The one retry loop behind [`query`], [`forward`] and [`fetch_text`]:
/// run `one` up to `retries + 1` times with jittered backoff in between,
/// and let `on_done` judge each well-formed response. `on_done` receives
/// `(status, payload, attempts_so_far, may_retry)`; returning
/// [`Verdict::Retry`] when `may_retry` is false would silently exhaust
/// the loop, so policies check it before retrying on a response.
fn with_retries<T, R>(
    config: &ClientConfig,
    mut one: impl FnMut() -> Attempt<T>,
    mut on_done: impl FnMut(u16, T, u32, bool) -> Verdict<R>,
) -> Result<R, ClientError> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut last_retryable = String::new();
    let attempts_max = config.retries.saturating_add(1);
    for attempt in 0..attempts_max {
        if attempt > 0 {
            std::thread::sleep(backoff(config, attempt - 1, &mut rng));
        }
        match one() {
            Attempt::Done(status, payload) => {
                match on_done(status, payload, attempt + 1, attempt + 1 < attempts_max) {
                    Verdict::Accept(out) => return Ok(out),
                    Verdict::Fail(code, message) => {
                        return Err(ClientError {
                            code,
                            message,
                            attempts: attempt + 1,
                        })
                    }
                    Verdict::Retry(msg) => last_retryable = msg,
                }
            }
            Attempt::Retryable(msg) => last_retryable = msg,
            Attempt::Terminal(code, message) => {
                return Err(ClientError {
                    code,
                    message,
                    attempts: attempt + 1,
                })
            }
        }
    }
    Err(ClientError {
        code: ErrorCode::Io,
        message: format!(
            "retries exhausted after {attempts_max} attempt(s); last failure: {last_retryable}"
        ),
        attempts: attempts_max,
    })
}

/// Send `body` to `POST {path}` (or GET when `body` is `None`), retrying
/// retryable failures with jittered exponential backoff. Dials a fresh
/// connection per attempt; see [`query_pooled`] for reuse.
pub fn query(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<Response, ClientError> {
    query_with(None, config, method, path, body)
}

/// [`query`] over a [`ConnPool`]: reuses an idle keep-alive connection
/// when one is parked for `config.addr`, and parks the connection back
/// after a reusable response.
pub fn query_pooled(
    pool: &ConnPool,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<Response, ClientError> {
    query_with(Some(pool), config, method, path, body)
}

fn query_with(
    pool: Option<&ConnPool>,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<Response, ClientError> {
    let payload = body.map(Json::render).unwrap_or_default();
    with_retries(
        config,
        || match one_wire_attempt(config, pool, method, path, Some(payload.as_bytes())) {
            Attempt::Done(status, bytes) => match parse_json_body(&bytes) {
                Ok(json) => Attempt::Done(status, json),
                Err(msg) => Attempt::Retryable(msg),
            },
            Attempt::Retryable(msg) => Attempt::Retryable(msg),
            Attempt::Terminal(code, message) => Attempt::Terminal(code, message),
        },
        |status, json, attempts, may_retry| {
            // A retryable error body still counts against the retry
            // budget: the server answered, but only to say "not now".
            if let Some(code) = response_error_code(status, &json) {
                if code.retryable() && may_retry {
                    return Verdict::Retry(format!("server answered {} ({})", status, code.wire()));
                }
                let message = json
                    .get("error")
                    .and_then(|e| e.str_field("message"))
                    .unwrap_or("request failed")
                    .to_owned();
                return Verdict::Fail(code, message);
            }
            Verdict::Accept(Response {
                status,
                body: json,
                attempts,
            })
        },
    )
}

fn parse_json_body(bytes: &[u8]) -> Result<Json, String> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| "bad response: body is not UTF-8".to_owned())?;
    Json::parse(text).map_err(|e| format!("bad response: {e}"))
}

/// The jittered exponential backoff before retry number `retry` (0-based):
/// `min(max, base · 2^retry) · uniform[0.5, 1.0]`.
pub fn backoff(config: &ClientConfig, retry: u32, rng: &mut Rng) -> Duration {
    let exp = config
        .base_backoff
        .saturating_mul(2u32.saturating_pow(retry.min(16)))
        .min(config.max_backoff);
    exp.mul_f64(rng.random_range(0.5..=1.0))
}

/// The error class of a response, if it is an error at all.
fn response_error_code(status: u16, body: &Json) -> Option<ErrorCode> {
    if let Some(code) = body
        .get("error")
        .and_then(|e| e.str_field("code"))
        .and_then(ErrorCode::from_wire)
    {
        return Some(code);
    }
    match status {
        200 => None,
        408 => Some(ErrorCode::Timeout),
        429 => Some(ErrorCode::Overloaded),
        503 => Some(ErrorCode::Draining),
        _ => Some(ErrorCode::Internal),
    }
}

/// Resolve and connect, trying every resolved address within the
/// attempt: a hostname often resolves to both an IPv6 and an IPv4
/// address while the server listens on only one family, and retrying a
/// single dead address would burn the whole retry budget. Connect
/// refused / timed out on all of them: the server may be mid-restart or
/// draining behind a balancer — worth retrying.
fn connect<T>(config: &ClientConfig) -> Result<TcpStream, Attempt<T>> {
    let addrs: Vec<SocketAddr> = match config.addr.to_socket_addrs() {
        Ok(a) => a.collect(),
        Err(e) => {
            return Err(Attempt::Terminal(
                ErrorCode::InvalidConfig,
                format!("cannot resolve `{}`: {e}", config.addr),
            ))
        }
    };
    if addrs.is_empty() {
        return Err(Attempt::Terminal(
            ErrorCode::InvalidConfig,
            format!("`{}` resolves to nothing", config.addr),
        ));
    }
    let mut stream = None;
    let mut connect_failures = Vec::new();
    for addr in &addrs {
        match TcpStream::connect_timeout(addr, config.connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => connect_failures.push(format!("connect to {addr}: {e}")),
        }
    }
    let Some(stream) = stream else {
        return Err(Attempt::Retryable(connect_failures.join("; ")));
    };
    if let Err(e) = stream
        .set_read_timeout(Some(config.io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.io_timeout)))
        // No Nagle: request frames go out in one write; batching them
        // against the delayed ACK adds 40 ms to every reused-connection
        // round trip for nothing.
        .and_then(|()| stream.set_nodelay(true))
    {
        return Err(Attempt::Retryable(format!("socket setup: {e}")));
    }
    Ok(stream)
}

/// A small pool of idle keep-alive connections, keyed by server address.
/// Cloning shares the pool. Parked sockets keep their io timeouts from
/// [`connect`]; each round trip re-arms its own [`FrameClock`].
#[derive(Debug, Clone, Default)]
pub struct ConnPool {
    idle: Arc<Mutex<HashMap<String, Vec<TcpStream>>>>,
}

/// Idle sockets kept per address. More than a few buys nothing for a
/// closed-loop caller and pins server worker threads.
const MAX_IDLE_PER_ADDR: usize = 4;

impl ConnPool {
    /// An empty pool.
    pub fn new() -> ConnPool {
        ConnPool::default()
    }

    fn take(&self, addr: &str) -> Option<TcpStream> {
        self.lock().get_mut(addr)?.pop()
    }

    fn park(&self, addr: &str, stream: TcpStream) {
        let mut idle = self.lock();
        let conns = idle.entry(addr.to_owned()).or_default();
        if conns.len() < MAX_IDLE_PER_ADDR {
            conns.push(stream);
        }
    }

    /// Idle connections currently parked for `addr`.
    pub fn idle_count(&self, addr: &str) -> usize {
        self.lock().get(addr).map_or(0, Vec::len)
    }

    /// Drop every parked connection (the sockets close on drop).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Vec<TcpStream>>> {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Write one request frame. `body: None` omits the `Content-Type` /
/// `Content-Length` headers entirely (bare GET); `Some` always sends
/// both, even for an empty payload.
fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    host: &str,
    body: Option<&[u8]>,
    connection: &str,
) -> std::io::Result<()> {
    let head = match body {
        Some(payload) => format!(
            "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            payload.len(),
        ),
        None => format!(
            "{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: {connection}\r\n\r\n"
        ),
    };
    // One write per frame (see the server's `write_raw_response`): split
    // head/body writes + Nagle + delayed ACK stall reused connections.
    let mut frame = head.into_bytes();
    if let Some(payload) = body {
        frame.extend_from_slice(payload);
    }
    stream.write_all(&frame)?;
    stream.flush()
}

/// One request/response exchange on an already-connected socket.
enum RoundTrip {
    /// A whole response frame arrived. `reusable` means its
    /// `Connection:` verdict allows keep-alive *and* no bytes beyond the
    /// frame were read (a server never sends extra bytes unprompted, so
    /// leftovers mean a desynced socket not worth keeping).
    Ok {
        status: u16,
        body: Vec<u8>,
        reusable: bool,
    },
    /// The socket died before a full response: on a reused connection
    /// this is expected staleness (server closed the parked socket), on
    /// a fresh one a retryable transport failure.
    Stale(String),
    /// A protocol-level failure with the server demonstrably alive.
    Err(ProtoError),
}

fn wire_round_trip(
    config: &ClientConfig,
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    connection: &str,
) -> RoundTrip {
    if let Err(e) = write_request(stream, method, path, &config.addr, body, connection) {
        return RoundTrip::Stale(format!("send: {e}"));
    }
    // The whole response frame gets one absolute budget on top of the
    // per-read io timeout, so a drip-feeding server cannot hold the
    // client forever. A malformed or truncated response is
    // indistinguishable from a server killed mid-write; retrying is safe
    // (requests are read-only or idempotent) and usually lands on a
    // healthy serve.
    let clock = FrameClock::start(config.io_timeout, config.frame_timeout);
    let mut carry = Vec::new();
    match read_response_frame(stream, config.max_response_bytes, &clock, &mut carry) {
        Ok(frame) => RoundTrip::Ok {
            status: frame.status,
            body: frame.body,
            reusable: frame.keep_alive && carry.is_empty(),
        },
        Err(ProtoError::Closed) => RoundTrip::Stale("connection closed mid-response".into()),
        Err(e) => RoundTrip::Err(e),
    }
}

/// One attempt at the wire level: take a pooled connection if one
/// exists, fall back to a fresh dial when the pooled socket turns out
/// stale (the server may close a parked connection at any time — that
/// must not burn a retry), park the socket back when the response allows
/// reuse.
fn one_wire_attempt(
    config: &ClientConfig,
    pool: Option<&ConnPool>,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Attempt<Vec<u8>> {
    if let Some(pool) = pool {
        if let Some(mut stream) = pool.take(&config.addr) {
            match wire_round_trip(config, &mut stream, method, path, body, "keep-alive") {
                RoundTrip::Ok {
                    status,
                    body,
                    reusable,
                } => {
                    if reusable {
                        pool.park(&config.addr, stream);
                    }
                    return Attempt::Done(status, body);
                }
                // Stale parked socket: fall through to a fresh dial
                // within the same attempt.
                RoundTrip::Stale(_) => {}
                RoundTrip::Err(e) => return attempt_of_proto(e),
            }
        }
    }
    let mut stream = match connect(config) {
        Ok(s) => s,
        Err(a) => return a,
    };
    let connection = if pool.is_some() {
        "keep-alive"
    } else {
        "close"
    };
    match wire_round_trip(config, &mut stream, method, path, body, connection) {
        RoundTrip::Ok {
            status,
            body,
            reusable,
        } => {
            if reusable {
                if let Some(pool) = pool {
                    pool.park(&config.addr, stream);
                }
            }
            Attempt::Done(status, body)
        }
        RoundTrip::Stale(msg) => Attempt::Retryable(msg),
        RoundTrip::Err(e) => attempt_of_proto(e),
    }
}

/// A response frame kept verbatim, for a proxy that must not rewrite
/// what the worker produced.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status.
    pub status: u16,
    /// Body bytes, exactly as received.
    pub body: Vec<u8>,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// Send one request and return the response frame *verbatim* — status
/// and body bytes untouched — with the same connect/retry/backoff
/// machinery as [`query`].
///
/// This is the gateway's proxy path: forwarding the worker's bytes
/// unmodified is what makes gateway↔worker byte-identity checkable.
/// Responses whose status or embedded error code is retryable
/// (`timeout`, `overloaded`, `draining`) are retried like transport
/// failures; any other response — including errors — is returned as-is,
/// because classifying it is the end client's business, not the proxy's.
pub fn forward(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<RawResponse, ClientError> {
    forward_with(None, config, method, path, body)
}

/// [`forward`] over a [`ConnPool`] — the gateway's steady-state path,
/// where dialing a worker per proxied request would dominate small-query
/// latency.
pub fn forward_pooled(
    pool: &ConnPool,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<RawResponse, ClientError> {
    forward_with(Some(pool), config, method, path, body)
}

fn forward_with(
    pool: Option<&ConnPool>,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<RawResponse, ClientError> {
    let payload = body.unwrap_or_default();
    with_retries(
        config,
        || one_wire_attempt(config, pool, method, path, Some(payload)),
        |status, bytes, attempts, may_retry| {
            if may_retry {
                if let Some(code) = raw_error_code(status, &bytes) {
                    if code.retryable() {
                        return Verdict::Retry(format!(
                            "server answered {status} ({})",
                            code.wire()
                        ));
                    }
                }
            }
            Verdict::Accept(RawResponse {
                status,
                body: bytes,
                attempts,
            })
        },
    )
}

/// Classify a raw response for the proxy's retry decision without
/// disturbing the bytes: prefer the JSON `error.code`, fall back on the
/// status line.
fn raw_error_code(status: u16, body: &[u8]) -> Option<ErrorCode> {
    if status == 200 {
        return None;
    }
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .unwrap_or_else(Json::obj);
    response_error_code(status, &parsed)
}

/// Fetch a non-JSON endpoint — the Prometheus `/metrics` exposition — as
/// raw text, with the same connect/retry/backoff machinery as [`query`].
pub fn fetch_text(config: &ClientConfig, path: &str) -> Result<(u16, String), ClientError> {
    fetch_text_with(None, config, path)
}

/// [`fetch_text`] over a [`ConnPool`].
pub fn fetch_text_pooled(
    pool: &ConnPool,
    config: &ClientConfig,
    path: &str,
) -> Result<(u16, String), ClientError> {
    fetch_text_with(Some(pool), config, path)
}

fn fetch_text_with(
    pool: Option<&ConnPool>,
    config: &ClientConfig,
    path: &str,
) -> Result<(u16, String), ClientError> {
    with_retries(
        config,
        || one_wire_attempt(config, pool, "GET", path, None),
        |status, bytes, _attempts, _may_retry| match String::from_utf8(bytes) {
            Ok(text) => Verdict::Accept((status, text)),
            Err(_) => Verdict::Retry("response body is not UTF-8".into()),
        },
    )
}

fn attempt_of_proto<T>(e: ProtoError) -> Attempt<T> {
    match e {
        ProtoError::Timeout => Attempt::Retryable("response timed out".into()),
        ProtoError::Closed => Attempt::Retryable("connection closed mid-response".into()),
        ProtoError::Malformed(m) => Attempt::Retryable(format!("bad response: {m}")),
        ProtoError::TooLarge(what) => {
            Attempt::Terminal(ErrorCode::TooLarge, format!("response {what} too large"))
        }
        ProtoError::Io(m) => Attempt::Retryable(format!("i/o: {m}")),
    }
}

/// One decoded response frame, plus whether the server allows the
/// connection to carry another request.
struct ResponseFrame {
    status: u16,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Read one response frame: status line, headers, `Content-Length` body.
/// Uses the same strict `Content-Length` rules as the server (digits
/// only, no duplicates) — a proxy that is lenient where its server is
/// strict reintroduces the smuggling ambiguity the server closed.
fn read_response_frame(
    stream: &mut TcpStream,
    max_body: usize,
    clock: &FrameClock,
    carry: &mut Vec<u8>,
) -> Result<ResponseFrame, ProtoError> {
    let head = read_head(stream, carry, 8 * 1024, clock)?;
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ProtoError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtoError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let content_length = content_length_of(&headers)?;
    let connection = headers
        .iter()
        .find(|(name, _)| name == "connection")
        .map(|(_, value)| value.as_str());
    let keep_alive = wants_keep_alive(version == "HTTP/1.0", connection);
    if content_length > max_body {
        return Err(ProtoError::TooLarge("body".into()));
    }
    let body = read_body(stream, carry, content_length, clock)?;
    Ok(ResponseFrame {
        status,
        body,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(addr: &str) -> ClientConfig {
        ClientConfig {
            addr: addr.to_owned(),
            retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_is_jittered_exponential_and_capped() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(350),
            ..ClientConfig::default()
        };
        let mut rng = Rng::seed_from_u64(1);
        for retry in 0..8 {
            let cap = Duration::from_millis(100)
                .saturating_mul(2u32.pow(retry))
                .min(Duration::from_millis(350));
            let b = backoff(&config, retry, &mut rng);
            assert!(b <= cap, "retry {retry}: {b:?} > {cap:?}");
            assert!(b >= cap.mul_f64(0.5), "retry {retry}: {b:?} too small");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let config = ClientConfig::default();
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for retry in 0..5 {
            assert_eq!(
                backoff(&config, retry, &mut a),
                backoff(&config, retry, &mut b)
            );
        }
    }

    #[test]
    fn connect_refused_exhausts_retries_as_io() {
        // Bind-then-drop guarantees a port with nothing listening.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = query(&cfg(&format!("127.0.0.1:{port}")), "GET", "/healthz", None).unwrap_err();
        assert_eq!(err.code, ErrorCode::Io);
        assert_eq!(err.attempts, 3); // 1 + 2 retries
        assert!(
            err.message.contains("retries exhausted after 3 attempt(s)"),
            "the final error must surface how many attempts were made: {err}"
        );
    }

    #[test]
    fn refused_connection_is_ridden_out_across_a_respawn_window() {
        // Satellite of the gateway PR: while a supervised worker is
        // being respawned, its address answers ECONNREFUSED. The client
        // must treat that window like `draining` — retryable with
        // backoff — so the request lands once the worker is back,
        // instead of hard-failing mid-restart.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server_addr = addr.clone();
        let server = std::thread::spawn(move || {
            // The "respawn": the server only comes up after the client
            // has already eaten at least one refused connect.
            std::thread::sleep(Duration::from_millis(300));
            crate::listener::spawn(crate::listener::ServeConfig {
                addr: server_addr,
                ..Default::default()
            })
            .unwrap()
        });
        let config = ClientConfig {
            addr,
            retries: 30,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        };
        let resp = query(&config, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            resp.attempts > 1,
            "the respawn window must have cost at least one retry"
        );
        let handle = server.join().unwrap();
        handle.drain();
        handle.join();
    }

    #[test]
    fn forward_keeps_error_bodies_verbatim_and_classifies_for_retry() {
        let body = br#"{"error":{"code":"not_found","message":"x"}}"#;
        assert_eq!(raw_error_code(404, body), Some(ErrorCode::NotFound));
        assert_eq!(raw_error_code(200, b"anything"), None);
        // Unparseable error bodies still classify from the status line.
        assert_eq!(raw_error_code(503, b"<html>"), Some(ErrorCode::Draining));
    }

    #[test]
    fn error_code_classification_prefers_the_body() {
        let body = Json::parse(r#"{"error":{"code":"parse","message":"x"}}"#).unwrap();
        assert_eq!(response_error_code(400, &body), Some(ErrorCode::Parse));
        // No body code: fall back on the status.
        let empty = Json::obj();
        assert_eq!(
            response_error_code(429, &empty),
            Some(ErrorCode::Overloaded)
        );
        assert_eq!(response_error_code(503, &empty), Some(ErrorCode::Draining));
        assert_eq!(response_error_code(200, &empty), None);
    }

    #[test]
    fn pooled_queries_reuse_one_connection() {
        let handle = crate::listener::spawn(crate::listener::ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let config = ClientConfig {
            addr: addr.clone(),
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        };
        let pool = ConnPool::new();
        for _ in 0..3 {
            let resp = query_pooled(&pool, &config, "GET", "/healthz", None).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(
            pool.idle_count(&addr),
            1,
            "three sequential queries should ride one parked connection"
        );
        handle.drain();
        handle.join();
    }

    #[test]
    fn pooled_query_falls_back_to_a_fresh_dial_on_a_stale_socket() {
        // max_requests_per_conn=1 makes the server announce
        // `Connection: close` on every reply, so nothing is ever parked
        // — and a socket parked across a server restart must be treated
        // as stale, not as a burned retry.
        let handle = crate::listener::spawn(crate::listener::ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_requests_per_conn: 1,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let config = ClientConfig {
            addr: addr.clone(),
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        };
        let pool = ConnPool::new();
        for _ in 0..2 {
            let resp = query_pooled(&pool, &config, "GET", "/healthz", None).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.attempts, 1,
                "a close-per-request server must not cost retries"
            );
        }
        assert_eq!(
            pool.idle_count(&addr),
            0,
            "`Connection: close` replies are not parked"
        );
        handle.drain();
        handle.join();
    }
}
