//! The `deptree query` client: one JSON request with retry, jittered
//! exponential backoff, and the retryable/terminal distinction.
//!
//! Retry policy: only pure load/timing failures are retried — connect
//! refused (server restarting behind the same address), socket timeouts,
//! and responses carrying a retryable [`ErrorCode`] (`overloaded`,
//! `draining`, `timeout`). Anything else (parse errors, unknown
//! datasets, budget exhaustion, internal errors) would fail identically
//! on the next attempt, so it is terminal on the first.
//!
//! A refused connection is deliberately in the *retryable* class, on
//! par with a `draining` response: a supervised worker that crashed is
//! respawned behind the same address within its backoff budget, and a
//! gateway (or a plain `deptree query`) that hard-failed on the first
//! `ECONNREFUSED` would turn every respawn window into user-visible
//! errors. `refused_connection_is_ridden_out_across_a_respawn_window`
//! pins this contract.
//!
//! Backoff between attempts is `min(max, base · 2^attempt)` scaled by a
//! uniform jitter in `[0.5, 1.0]`, drawn from the vendored deterministic
//! PRNG so tests can pin the schedule with a seed.

use crate::json::Json;
use crate::protocol::{read_body, read_head, ErrorCode, FrameClock, ProtoError};
use deptree_synth::Rng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Attempts beyond the first (3 retries = up to 4 attempts).
    pub retries: u32,
    /// First backoff step.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per attempt (covers server compute, so
    /// it should exceed the request's `timeout_ms`).
    pub io_timeout: Duration,
    /// Absolute cap on reading one whole response frame, however slowly
    /// its bytes arrive (`io_timeout` bounds each individual read).
    pub frame_timeout: Duration,
    /// Jitter seed; equal seeds give equal backoff schedules.
    pub seed: u64,
    /// Cap on the response body the client will buffer.
    pub max_response_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7411".to_owned(),
            retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(75),
            frame_timeout: Duration::from_secs(90),
            seed: 0x5eed,
            max_response_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A decoded server response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Json,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A request that failed for good.
#[derive(Debug)]
pub struct ClientError {
    /// The terminal error class (drives the exit code).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, after {} attempt(s))",
            self.message,
            self.code.wire(),
            self.attempts
        )
    }
}

/// One attempt's outcome, before retry policy is applied.
enum Attempt<T> {
    /// Got a well-formed response frame.
    Done(u16, T),
    /// Failed in a way worth retrying.
    Retryable(String),
    /// Failed for good.
    Terminal(ErrorCode, String),
}

/// Send `body` to `POST {path}` (or GET when `body` is `None`), retrying
/// retryable failures with jittered exponential backoff.
pub fn query(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Result<Response, ClientError> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut last_retryable = String::new();
    let attempts_max = config.retries.saturating_add(1);
    for attempt in 0..attempts_max {
        if attempt > 0 {
            std::thread::sleep(backoff(config, attempt - 1, &mut rng));
        }
        match one_attempt(config, method, path, body) {
            Attempt::Done(status, json) => {
                // A retryable error body still counts against the retry
                // budget: the server answered, but only to say "not now".
                if let Some(code) = response_error_code(status, &json) {
                    if code.retryable() && attempt + 1 < attempts_max {
                        last_retryable = format!("server answered {} ({})", status, code.wire());
                        continue;
                    }
                    let message = json
                        .get("error")
                        .and_then(|e| e.str_field("message"))
                        .unwrap_or("request failed")
                        .to_owned();
                    return Err(ClientError {
                        code,
                        message,
                        attempts: attempt + 1,
                    });
                }
                return Ok(Response {
                    status,
                    body: json,
                    attempts: attempt + 1,
                });
            }
            Attempt::Retryable(msg) => {
                last_retryable = msg;
            }
            Attempt::Terminal(code, message) => {
                return Err(ClientError {
                    code,
                    message,
                    attempts: attempt + 1,
                });
            }
        }
    }
    Err(ClientError {
        code: ErrorCode::Io,
        message: format!(
            "retries exhausted after {attempts_max} attempt(s); last failure: {last_retryable}"
        ),
        attempts: attempts_max,
    })
}

/// The jittered exponential backoff before retry number `retry` (0-based):
/// `min(max, base · 2^retry) · uniform[0.5, 1.0]`.
pub fn backoff(config: &ClientConfig, retry: u32, rng: &mut Rng) -> Duration {
    let exp = config
        .base_backoff
        .saturating_mul(2u32.saturating_pow(retry.min(16)))
        .min(config.max_backoff);
    exp.mul_f64(rng.random_range(0.5..=1.0))
}

/// The error class of a response, if it is an error at all.
fn response_error_code(status: u16, body: &Json) -> Option<ErrorCode> {
    if let Some(code) = body
        .get("error")
        .and_then(|e| e.str_field("code"))
        .and_then(ErrorCode::from_wire)
    {
        return Some(code);
    }
    match status {
        200 => None,
        408 => Some(ErrorCode::Timeout),
        429 => Some(ErrorCode::Overloaded),
        503 => Some(ErrorCode::Draining),
        _ => Some(ErrorCode::Internal),
    }
}

/// Resolve and connect, trying every resolved address within the
/// attempt: a hostname often resolves to both an IPv6 and an IPv4
/// address while the server listens on only one family, and retrying a
/// single dead address would burn the whole retry budget. Connect
/// refused / timed out on all of them: the server may be mid-restart or
/// draining behind a balancer — worth retrying.
fn connect<T>(config: &ClientConfig) -> Result<TcpStream, Attempt<T>> {
    let addrs: Vec<SocketAddr> = match config.addr.to_socket_addrs() {
        Ok(a) => a.collect(),
        Err(e) => {
            return Err(Attempt::Terminal(
                ErrorCode::InvalidConfig,
                format!("cannot resolve `{}`: {e}", config.addr),
            ))
        }
    };
    if addrs.is_empty() {
        return Err(Attempt::Terminal(
            ErrorCode::InvalidConfig,
            format!("`{}` resolves to nothing", config.addr),
        ));
    }
    let mut stream = None;
    let mut connect_failures = Vec::new();
    for addr in &addrs {
        match TcpStream::connect_timeout(addr, config.connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => connect_failures.push(format!("connect to {addr}: {e}")),
        }
    }
    let Some(stream) = stream else {
        return Err(Attempt::Retryable(connect_failures.join("; ")));
    };
    if let Err(e) = stream
        .set_read_timeout(Some(config.io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.io_timeout)))
    {
        return Err(Attempt::Retryable(format!("socket setup: {e}")));
    }
    Ok(stream)
}

fn one_attempt(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Attempt<Json> {
    let mut stream = match connect(config) {
        Ok(s) => s,
        Err(a) => return a,
    };
    let payload = body.map(Json::render).unwrap_or_default();
    let frame = format!(
        "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        config.addr,
        payload.len(),
    );
    if let Err(e) = stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
    {
        return Attempt::Retryable(format!("send: {e}"));
    }

    // The whole response frame gets one absolute budget on top of the
    // per-read io timeout, so a drip-feeding server cannot hold the
    // client forever. A malformed or truncated response is
    // indistinguishable from a server killed mid-write; retrying is safe
    // (requests are read-only or idempotent) and usually lands on a
    // healthy serve.
    let clock = FrameClock::start(config.io_timeout, config.frame_timeout);
    match read_response(&mut stream, config.max_response_bytes, &clock) {
        Ok((status, json)) => Attempt::Done(status, json),
        Err(e) => attempt_of_proto(e),
    }
}

/// A response frame kept verbatim, for a proxy that must not rewrite
/// what the worker produced.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status.
    pub status: u16,
    /// Body bytes, exactly as received.
    pub body: Vec<u8>,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// Send one request and return the response frame *verbatim* — status
/// and body bytes untouched — with the same connect/retry/backoff
/// machinery as [`query`].
///
/// This is the gateway's proxy path: forwarding the worker's bytes
/// unmodified is what makes gateway↔worker byte-identity checkable.
/// Responses whose status or embedded error code is retryable
/// (`timeout`, `overloaded`, `draining`) are retried like transport
/// failures; any other response — including errors — is returned as-is,
/// because classifying it is the end client's business, not the proxy's.
pub fn forward(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<RawResponse, ClientError> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut last_retryable = String::new();
    let attempts_max = config.retries.saturating_add(1);
    for attempt in 0..attempts_max {
        if attempt > 0 {
            std::thread::sleep(backoff(config, attempt - 1, &mut rng));
        }
        match one_raw_attempt(config, method, path, body) {
            Attempt::Done(status, bytes) => {
                if attempt + 1 < attempts_max {
                    if let Some(code) = raw_error_code(status, &bytes) {
                        if code.retryable() {
                            last_retryable = format!("server answered {status} ({})", code.wire());
                            continue;
                        }
                    }
                }
                return Ok(RawResponse {
                    status,
                    body: bytes,
                    attempts: attempt + 1,
                });
            }
            Attempt::Retryable(msg) => last_retryable = msg,
            Attempt::Terminal(code, message) => {
                return Err(ClientError {
                    code,
                    message,
                    attempts: attempt + 1,
                })
            }
        }
    }
    Err(ClientError {
        code: ErrorCode::Io,
        message: format!(
            "retries exhausted after {attempts_max} attempt(s); last failure: {last_retryable}"
        ),
        attempts: attempts_max,
    })
}

/// Classify a raw response for the proxy's retry decision without
/// disturbing the bytes: prefer the JSON `error.code`, fall back on the
/// status line.
fn raw_error_code(status: u16, body: &[u8]) -> Option<ErrorCode> {
    if status == 200 {
        return None;
    }
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .unwrap_or_else(Json::obj);
    response_error_code(status, &parsed)
}

fn one_raw_attempt(
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Attempt<Vec<u8>> {
    let mut stream = match connect(config) {
        Ok(s) => s,
        Err(a) => return a,
    };
    let payload = body.unwrap_or_default();
    let frame = format!(
        "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        config.addr,
        payload.len(),
    );
    if let Err(e) = stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(payload))
    {
        return Attempt::Retryable(format!("send: {e}"));
    }
    let clock = FrameClock::start(config.io_timeout, config.frame_timeout);
    match read_raw_response(&mut stream, config.max_response_bytes, &clock) {
        Ok((status, bytes)) => Attempt::Done(status, bytes),
        Err(e) => attempt_of_proto(e),
    }
}

/// Fetch a non-JSON endpoint — the Prometheus `/metrics` exposition — as
/// raw text, with the same connect/retry/backoff machinery as [`query`].
pub fn fetch_text(config: &ClientConfig, path: &str) -> Result<(u16, String), ClientError> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut last_retryable = String::new();
    let attempts_max = config.retries.saturating_add(1);
    for attempt in 0..attempts_max {
        if attempt > 0 {
            std::thread::sleep(backoff(config, attempt - 1, &mut rng));
        }
        match one_text_attempt(config, path) {
            Attempt::Done(status, text) => return Ok((status, text)),
            Attempt::Retryable(msg) => last_retryable = msg,
            Attempt::Terminal(code, message) => {
                return Err(ClientError {
                    code,
                    message,
                    attempts: attempt + 1,
                })
            }
        }
    }
    Err(ClientError {
        code: ErrorCode::Io,
        message: format!(
            "retries exhausted after {attempts_max} attempt(s); last failure: {last_retryable}"
        ),
        attempts: attempts_max,
    })
}

fn one_text_attempt(config: &ClientConfig, path: &str) -> Attempt<String> {
    let mut stream = match connect(config) {
        Ok(s) => s,
        Err(a) => return a,
    };
    let frame = format!(
        "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
        config.addr,
    );
    if let Err(e) = stream.write_all(frame.as_bytes()) {
        return Attempt::Retryable(format!("send: {e}"));
    }
    let clock = FrameClock::start(config.io_timeout, config.frame_timeout);
    match read_raw_response(&mut stream, config.max_response_bytes, &clock) {
        Ok((status, body)) => match String::from_utf8(body) {
            Ok(text) => Attempt::Done(status, text),
            Err(_) => Attempt::Retryable("response body is not UTF-8".into()),
        },
        Err(e) => attempt_of_proto(e),
    }
}

fn attempt_of_proto<T>(e: ProtoError) -> Attempt<T> {
    match e {
        ProtoError::Timeout => Attempt::Retryable("response timed out".into()),
        ProtoError::Closed => Attempt::Retryable("connection closed mid-response".into()),
        ProtoError::Malformed(m) => Attempt::Retryable(format!("bad response: {m}")),
        ProtoError::TooLarge(what) => {
            Attempt::Terminal(ErrorCode::TooLarge, format!("response {what} too large"))
        }
        ProtoError::Io(m) => Attempt::Retryable(format!("i/o: {m}")),
    }
}

/// Read one response frame: status line, headers, `Content-Length` body.
fn read_response(
    stream: &mut TcpStream,
    max_body: usize,
    clock: &FrameClock,
) -> Result<(u16, Json), ProtoError> {
    let (status, body) = read_raw_response(stream, max_body, clock)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| ProtoError::Malformed("response body is not UTF-8".into()))?;
    let json = Json::parse(text).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    Ok((status, json))
}

/// Read one response frame without interpreting the body.
fn read_raw_response(
    stream: &mut TcpStream,
    max_body: usize,
    clock: &FrameClock,
) -> Result<(u16, Vec<u8>), ProtoError> {
    let (head, leftover) = read_head(stream, 8 * 1024, clock)?;
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ProtoError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtoError::Malformed(format!("bad header `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ProtoError::Malformed(format!("bad content-length `{value}`")))?;
        }
    }
    if content_length > max_body {
        return Err(ProtoError::TooLarge("body".into()));
    }
    let body = read_body(stream, leftover, content_length, clock)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(addr: &str) -> ClientConfig {
        ClientConfig {
            addr: addr.to_owned(),
            retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_is_jittered_exponential_and_capped() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(350),
            ..ClientConfig::default()
        };
        let mut rng = Rng::seed_from_u64(1);
        for retry in 0..8 {
            let cap = Duration::from_millis(100)
                .saturating_mul(2u32.pow(retry))
                .min(Duration::from_millis(350));
            let b = backoff(&config, retry, &mut rng);
            assert!(b <= cap, "retry {retry}: {b:?} > {cap:?}");
            assert!(b >= cap.mul_f64(0.5), "retry {retry}: {b:?} too small");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let config = ClientConfig::default();
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for retry in 0..5 {
            assert_eq!(
                backoff(&config, retry, &mut a),
                backoff(&config, retry, &mut b)
            );
        }
    }

    #[test]
    fn connect_refused_exhausts_retries_as_io() {
        // Bind-then-drop guarantees a port with nothing listening.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = query(&cfg(&format!("127.0.0.1:{port}")), "GET", "/healthz", None).unwrap_err();
        assert_eq!(err.code, ErrorCode::Io);
        assert_eq!(err.attempts, 3); // 1 + 2 retries
        assert!(
            err.message.contains("retries exhausted after 3 attempt(s)"),
            "the final error must surface how many attempts were made: {err}"
        );
    }

    #[test]
    fn refused_connection_is_ridden_out_across_a_respawn_window() {
        // Satellite of the gateway PR: while a supervised worker is
        // being respawned, its address answers ECONNREFUSED. The client
        // must treat that window like `draining` — retryable with
        // backoff — so the request lands once the worker is back,
        // instead of hard-failing mid-restart.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server_addr = addr.clone();
        let server = std::thread::spawn(move || {
            // The "respawn": the server only comes up after the client
            // has already eaten at least one refused connect.
            std::thread::sleep(Duration::from_millis(300));
            crate::listener::spawn(crate::listener::ServeConfig {
                addr: server_addr,
                ..Default::default()
            })
            .unwrap()
        });
        let config = ClientConfig {
            addr,
            retries: 30,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        };
        let resp = query(&config, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            resp.attempts > 1,
            "the respawn window must have cost at least one retry"
        );
        let handle = server.join().unwrap();
        handle.drain();
        handle.join();
    }

    #[test]
    fn forward_keeps_error_bodies_verbatim_and_classifies_for_retry() {
        let body = br#"{"error":{"code":"not_found","message":"x"}}"#;
        assert_eq!(raw_error_code(404, body), Some(ErrorCode::NotFound));
        assert_eq!(raw_error_code(200, b"anything"), None);
        // Unparseable error bodies still classify from the status line.
        assert_eq!(raw_error_code(503, b"<html>"), Some(ErrorCode::Draining));
    }

    #[test]
    fn error_code_classification_prefers_the_body() {
        let body = Json::parse(r#"{"error":{"code":"parse","message":"x"}}"#).unwrap();
        assert_eq!(response_error_code(400, &body), Some(ErrorCode::Parse));
        // No body code: fall back on the status.
        let empty = Json::obj();
        assert_eq!(
            response_error_code(429, &empty),
            Some(ErrorCode::Overloaded)
        );
        assert_eq!(response_error_code(503, &empty), Some(ErrorCode::Draining));
        assert_eq!(response_error_code(200, &empty), None);
    }
}
