//! A minimal JSON value, parser and writer for the service protocol.
//!
//! The tier-1 build is fully offline, so the protocol cannot lean on
//! `serde`; this module hand-rolls the small subset the service needs.
//! Robustness properties the fault-injection suite relies on:
//!
//! * the parser is total — any byte sequence yields `Ok` or a
//!   [`JsonError`], never a panic;
//! * recursion depth is capped ([`MAX_DEPTH`]) so deeply nested bodies
//!   cannot blow the stack;
//! * object key order is preserved on both parse and render, which keeps
//!   responses byte-deterministic.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Anything deeper is
/// rejected as malformed rather than risking stack exhaustion.
pub const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why a body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// An empty object, for builder-style construction with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object, returning the object for
    /// chaining. No-op on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(ref mut fields) = self {
            let value = value.into();
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => fields.push((key.to_owned(), value)),
            }
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    ///
    /// The bound is *strictly* below 2^53: every u64 in `[0, 2^53)` has a
    /// unique f64 representation, while at 2^53 and above distinct
    /// integers collapse onto the same float (`9007199254740993` parses
    /// to the same f64 as `9007199254740992`), so accepting them would
    /// silently honor a different number than the client sent.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `self[key]` as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// `self[key]` as a non-negative integer.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// `self[key]` as a float.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// `self[key]` as a boolean.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }

    /// Parse a document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing bytes at offset {}", p.pos)));
        }
        Ok(v)
    }

    /// Serialize. Deterministic: field order is preserved, integers print
    /// without a fraction, non-finite numbers degrade to `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use fmt::Write as _;
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(JsonError(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(JsonError(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            ))),
            None => Err(JsonError("unexpected end of input".into())),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError(format!("bad number at offset {start}")))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError(format!("bad number `{text}` at offset {start}")))?;
        if !n.is_finite() {
            return Err(JsonError(format!("non-finite number at offset {start}")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape.
                    // Both delimiters are ASCII, so in valid UTF-8 the
                    // run ends on a character boundary; validating only
                    // the run keeps the whole string scan linear.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run])
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    /// Four hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| JsonError("bad surrogate pair".into()));
                }
            }
            return Err(JsonError("lone high surrogate".into()));
        }
        char::from_u32(hi).ok_or_else(|| JsonError("bad unicode escape".into()))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(JsonError("bad hex escape".into())),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects_in_order() {
        let v = Json::obj()
            .set("b", 2u64)
            .set("a", "x")
            .set("list", vec![Json::Null, Json::Bool(true), Json::Num(1.5)]);
        let text = v.render();
        assert_eq!(text, r#"{"b":2,"a":"x","list":[null,true,1.5]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::Str("a\"b\\c\nd\u{1}é\u{1F600}".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Surrogate-pair escapes parse too.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn long_strings_parse_with_bulk_runs_intact() {
        // Exercises the bulk-copy fast path: long unescaped runs (with
        // multi-byte chars) interleaved with escapes, ending on both a
        // run and an escape.
        let body = format!(
            "{}\n{}\"{}é",
            "x".repeat(10_000),
            "y".repeat(3),
            "z".repeat(5_000)
        );
        let v = Json::Str(body);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"",
            "{\"a\":}",
            "[1,,2]",
            "nul",
            "tru",
            "01x",
            "{\"a\":1}x",
            "\"\\u12\"",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integer_fields_accessible() {
        let v = Json::parse(r#"{"n": 42, "f": 1.5, "neg": -3}"#).unwrap();
        assert_eq!(v.u64_field("n"), Some(42));
        assert_eq!(v.u64_field("f"), None);
        assert_eq!(v.u64_field("neg"), None);
        assert_eq!(v.f64_field("f"), Some(1.5));
    }

    #[test]
    fn as_u64_rejects_non_round_tripping_integers() {
        // 2^53 - 1 is the largest u64 every f64 can represent uniquely.
        let max_exact = (1u64 << 53) - 1;
        let v = Json::parse(&format!("{max_exact}")).unwrap();
        assert_eq!(v.as_u64(), Some(max_exact));
        // 2^53 itself is ambiguous: 2^53 + 1 parses to the same f64, so a
        // client sending either would be silently granted the other.
        let v = Json::parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), None);
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), None, "2^53+1 rounds to 2^53 — must not pass");
    }

    #[test]
    fn render_floats_numbers_at_and_above_2_53() {
        // Below the bound: integer formatting.
        assert_eq!(
            Json::Num(((1u64 << 53) - 1) as f64).render(),
            "9007199254740991"
        );
        // At the bound the integer is no longer uniquely representable;
        // the float path still round-trips the f64 exactly.
        let at = Json::Num((1u64 << 53) as f64).render();
        assert_eq!(
            Json::parse(&at).unwrap().as_f64(),
            Some((1u64 << 53) as f64)
        );
        assert_eq!(
            Json::Num(-((1u64 << 53) as f64) - 2.0)
                .render()
                .parse::<f64>()
                .ok(),
            Some(-((1u64 << 53) as f64) - 2.0)
        );
    }
}
