//! `deptree-serve`: the hardened dependency-service daemon behind
//! `deptree serve`, plus the `deptree query` client.
//!
//! The crate turns the workspace's anytime discovery/quality engine into
//! a long-running network service without weakening any of its
//! robustness guarantees. The load-bearing properties, and where they
//! live:
//!
//! - **Bounded everything** — [`protocol::Limits`] caps header and body
//!   bytes; socket read/write timeouts bound slow peers; the
//!   [`admission`] gate bounds queued and in-service connections and
//!   sheds the rest with `429 overloaded`. No input can make the server
//!   buffer without limit.
//! - **One deadline per request** — [`router`] maps `timeout_ms` /
//!   `max_nodes` / `max_rows` onto a single `Exec` budget spanning the
//!   whole task; a request killed by its deadline still answers `200`
//!   with a *sound partial* and `partial: true`.
//! - **Graceful drain** — [`drain`] implements the two-phase protocol:
//!   readiness flips and new work is refused, in-flight work gets a
//!   grace period, stragglers are cancelled through the shared
//!   `CancelToken`, and the process exits 0.
//! - **One rendering path** — [`tasks`] is shared by the CLI and the
//!   server, so a server `report` is byte-identical to the CLI's stdout
//!   for the same request, at any thread count.
//! - **Structured failure** — every error travels as
//!   `{"error":{"code","message"}}` with a [`protocol::ErrorCode`] whose
//!   exit-code mapping matches the CLI's (DESIGN.md §10); the
//!   [`client`] retries only the codes that are genuinely retryable.
//!
//! Std-only by design: the HTTP/1.1 subset, JSON codec, thread pool, and
//! signal handling are all in-tree, so the tier-1 build needs no network.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod drain;
pub mod gateway;
pub mod json;
pub mod listener;
pub mod protocol;
pub mod router;
pub mod tasks;
pub mod telemetry;

pub use client::{
    fetch_text, fetch_text_pooled, forward, forward_pooled, query, query_pooled, ClientConfig,
    ClientError, ConnPool, RawResponse, Response,
};
pub use drain::DrainState;
pub use gateway::{spawn_gateway, DatasetSpec, GatewayConfig, GatewayHandle};
pub use json::Json;
pub use listener::{spawn, spawn_service, ListenOpts, ServeConfig, ServerHandle, Service};
pub use protocol::{ErrorCode, Limits};
pub use router::AppState;
pub use tasks::{ProfileOpts, TaskReport};
