//! Regenerate the survey's tables and figures as text.
//!
//! ```sh
//! cargo run -p deptree-bench --bin print_tables            # everything
//! cargo run -p deptree-bench --bin print_tables -- fig1a   # one artifact
//! ```
//!
//! Artifacts: `table2`, `table3`, `fig1a`, `fig1b`, `fig2`, `fig3`, `dot`.

use deptree_core::familytree::{registry, verify_all_edges, ExtensionGraph};
use deptree_core::DepKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("fig1a") {
        fig1a();
    }
    if want("fig1b") {
        fig1b();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if args.iter().any(|a| a == "dot") {
        println!("{}", ExtensionGraph::survey().to_dot());
    }
}

/// Table 2: the index of data dependencies.
fn table2() {
    println!("== Table 2: An Index of Data Dependencies ==");
    println!(
        "{:<14} {:<6} {:<45} {:>5} {:>7}",
        "Data type", "Dep.", "Name", "Year", "#pubs"
    );
    for info in &registry::REGISTRY {
        println!(
            "{:<14} {:<6} {:<45} {:>5} {:>7}",
            info.branch.to_string(),
            info.kind.acronym(),
            info.name,
            info.year,
            info.publications
        );
    }
    println!();
}

/// Table 3: applications of data dependencies.
fn table3() {
    println!("== Table 3: Applications of Data Dependencies ==");
    for app in registry::Application::ALL {
        let users: Vec<&str> = registry::supporting(app)
            .iter()
            .map(|n| n.kind.acronym())
            .collect();
        println!("{:<28} {}", app.to_string(), users.join(", "));
    }
    println!();
}

/// Fig. 1A: the family tree, plus empirical verification of every arrow.
fn fig1a() {
    let graph = ExtensionGraph::survey();
    println!("== Fig. 1A: Family tree of extensions ==");
    print!("{}", graph.to_ascii());
    println!("\n-- edge verification (example instances + perturbations) --");
    let mut all_ok = true;
    for rep in verify_all_edges() {
        let (s, g) = rep.edge;
        let status = if rep.ok() { "ok" } else { "FAILED" };
        println!(
            "{:>6} → {:<6} {:?}: {}/{} instances {status}",
            s.acronym(),
            g.acronym(),
            rep.mode,
            rep.agreed,
            rep.instances
        );
        all_ok &= rep.ok();
    }
    println!("verified: {all_ok}\n");
}

/// Fig. 1B: publications per notation, as an ASCII bar chart.
fn fig1b() {
    println!("== Fig. 1B: Publications using each dependency ==");
    let mut infos: Vec<_> = registry::REGISTRY
        .iter()
        .filter(|n| n.kind != DepKind::Fd)
        .collect();
    infos.sort_by_key(|n| std::cmp::Reverse(n.publications));
    for info in infos {
        println!(
            "{:>6} {:>5} |{}",
            info.kind.acronym(),
            info.publications,
            "█".repeat((info.publications as usize / 10).max(1))
        );
    }
    println!();
}

/// Fig. 2: the proposal timeline.
fn fig2() {
    println!("== Fig. 2: Timeline of data dependencies ==");
    let mut by_year: Vec<(u16, Vec<DepKind>)> = Vec::new();
    for (year, kind) in registry::timeline() {
        match by_year.last_mut() {
            Some((y, ks)) if *y == year => ks.push(kind),
            _ => by_year.push((year, vec![kind])),
        }
    }
    for (year, kinds) in by_year {
        let names: Vec<&str> = kinds.iter().map(|k| k.acronym()).collect();
        println!("{year}  {}", names.join(", "));
    }
    println!();
}

/// Fig. 3: the discovery-difficulty landscape.
fn fig3() {
    println!("== Fig. 3: Difficulty of discovery problems ==");
    use deptree_core::familytree::registry::Complexity;
    for class in [
        Complexity::PolynomialTime,
        Complexity::ExponentialOutput,
        Complexity::NpHard,
        Complexity::NpComplete,
        Complexity::CoNpComplete,
    ] {
        let members: Vec<&registry::NotationInfo> = registry::REGISTRY
            .iter()
            .filter(|n| n.discovery == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        println!("[{class}]");
        for info in members {
            println!("  {:<6} — {}", info.kind.acronym(), info.complexity_note);
        }
    }
    println!();
}
