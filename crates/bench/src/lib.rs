//! Shared workload builders for the benchmark harness and the
//! table-printing binaries. Each helper corresponds to a figure or table
//! of the survey (see DESIGN.md's experiment index).

#![warn(missing_docs)]

use deptree_relation::Relation;
use deptree_synth::{categorical, numerical, CategoricalConfig, SequenceConfig};

/// Standard categorical workload for FD-family discovery benches: `rows ×
/// attrs` with planted FDs and the given error rate.
pub fn fd_workload(rows: usize, attrs: usize, error: f64) -> Relation {
    assert!(attrs >= 2, "need at least one key and one dependent attr");
    let cfg = CategoricalConfig {
        n_rows: rows,
        n_key_attrs: attrs / 2,
        n_dep_attrs: attrs - attrs / 2,
        domain: 30,
        error_rate: error,
        seed: 0xBEEF,
    };
    categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed)).relation
}

/// Standard sequence workload for SD/CSD benches: `rows` positions with
/// `regimes` gap bands and the given spike rate.
pub fn sequence_workload(rows: usize, regimes: usize, spikes: f64) -> Relation {
    let bands = (0..regimes)
        .map(|i| {
            let base = 2.0 + 10.0 * i as f64;
            (base, base + 2.0)
        })
        .collect();
    let cfg = SequenceConfig {
        n_rows: rows,
        regimes: bands,
        spike_rate: spikes,
        seed: 0xFACE,
    };
    numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed)).relation
}

/// Entity workload for MD/dedup benches.
pub fn entity_workload(entities: usize) -> deptree_synth::EntityData {
    let cfg = deptree_synth::EntitiesConfig {
        n_entities: entities,
        max_duplicates: 3,
        variety: 0.5,
        error_rate: 0.02,
        seed: 0xDEED,
    };
    deptree_synth::entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_requested_shapes() {
        let r = fd_workload(100, 5, 0.0);
        assert_eq!(r.n_rows(), 100);
        assert_eq!(r.n_attrs(), 5);
        let s = sequence_workload(50, 2, 0.0);
        assert_eq!(s.n_rows(), 50);
        let e = entity_workload(10);
        assert!(e.relation.n_rows() >= 10);
    }
}
