//! The table-printer binary regenerates every survey artifact without
//! crashing and with the expected headline content.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_print_tables"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{args:?} failed");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table2_lists_all_24_notations() {
    let out = run(&["table2"]);
    for acro in [
        "FDs", "SFDs", "PFDs", "AFDs", "NUDs", "CFDs", "eCFDs", "MVDs", "FHDs", "AMVDs",
        "MFDs", "NEDs", "DDs", "CDDs", "CDs", "PACs", "FFDs", "MDs", "CMDs", "OFDs", "ODs",
        "DCs", "SDs", "CSDs",
    ] {
        assert!(out.contains(acro), "missing {acro}");
    }
    assert!(out.contains("2007")); // CFDs' year
}

#[test]
fn table3_has_all_application_rows() {
    let out = run(&["table3"]);
    for row in [
        "Violation detection",
        "Data repairing",
        "Query optimization",
        "Consistent query answering",
        "Data deduplication",
        "Data partition",
        "Schema normalization",
        "Model fairness",
    ] {
        assert!(out.contains(row), "missing {row}");
    }
    assert!(out.contains("Model fairness               MVDs"));
}

#[test]
fn fig1a_verifies_every_edge() {
    let out = run(&["fig1a"]);
    assert!(out.contains("verified: true"), "{out}");
    assert!(!out.contains("FAILED"));
    // Both roots render.
    assert!(out.contains("FDs (1971"));
    assert!(out.contains("OFDs (1999"));
}

#[test]
fn fig3_highlights_the_polynomial_exception() {
    let out = run(&["fig3"]);
    assert!(out.contains("[PTIME]"));
    assert!(out.contains("CSDs"));
    assert!(out.contains("NP-complete"));
}

#[test]
fn dot_output_is_graphviz() {
    let out = run(&["dot"]);
    assert!(out.contains("digraph familytree"));
    assert!(out.contains("FDs -> SFDs;"));
}

#[test]
fn default_prints_everything() {
    let out = run(&[]);
    assert!(out.contains("Table 2"));
    assert!(out.contains("Table 3"));
    assert!(out.contains("Fig. 1A"));
    assert!(out.contains("Fig. 1B"));
    assert!(out.contains("Fig. 2"));
    assert!(out.contains("Fig. 3"));
}
