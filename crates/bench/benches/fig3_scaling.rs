//! Fig. 3 reproduced empirically: the *shape* of discovery cost.
//!
//! * FD-family discovery (TANE) grows exponentially with the number of
//!   attributes — the lattice;
//! * DC discovery (FASTDC) grows with both the predicate space and
//!   tuple-pairs;
//! * the CSD tableau DP is polynomial (quadratic in positions) — the
//!   survey's highlighted exception.
//!
//! Absolute numbers are machine-specific; the growth curves are the
//! reproduction target (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deptree_bench::{fd_workload, sequence_workload};
use deptree_core::Interval;
use deptree_discovery::{dc, sd, tane};
use std::hint::black_box;

fn tane_vs_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/tane_attrs");
    group.sample_size(10);
    for attrs in [4usize, 6, 8, 10, 12] {
        let r = fd_workload(500, attrs, 0.0);
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &r, |b, r| {
            b.iter(|| {
                tane::discover(
                    black_box(r),
                    &tane::TaneConfig {
                        max_lhs: attrs,
                        max_error: 0.0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn fastdc_vs_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/fastdc_attrs");
    group.sample_size(10);
    for attrs in [2usize, 3, 4] {
        let r = fd_workload(60, attrs, 0.05);
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &r, |b, r| {
            b.iter(|| {
                dc::discover(
                    black_box(r),
                    &dc::DcConfig {
                        max_predicates: 3,
                        approx_epsilon: 0.0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn csd_tableau_vs_positions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/csd_positions");
    group.sample_size(10);
    for rows in [200usize, 400, 800, 1600] {
        let r = sequence_workload(rows, 2, 0.02);
        let s = r.schema();
        let (seq, y) = (s.id("seq"), s.id("y"));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &r, |b, r| {
            b.iter(|| {
                sd::csd_tableau(
                    black_box(r),
                    seq,
                    y,
                    Interval::new(2.0, 4.0),
                    0.95,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    tane_vs_attributes,
    fastdc_vs_attributes,
    csd_tableau_vs_positions
);
criterion_main!(benches);
