//! Repair-algorithm throughput (Table 3, row 2): value-modification FD
//! repair, greedy deletion repair, and gap-constrained sequence repair.

use criterion::{criterion_group, criterion_main, Criterion};
use deptree_bench::{fd_workload, sequence_workload};
use deptree_core::{Dependency, Fd, Interval, Sd};
use deptree_quality::repair;
use deptree_relation::{AttrId, AttrSet};
use std::hint::black_box;

fn repair_suite(c: &mut Criterion) {
    let cat = fd_workload(1000, 4, 0.03);
    let seq = sequence_workload(5000, 1, 0.03);

    let mut group = c.benchmark_group("repair");
    group.sample_size(10);

    let fds = vec![
        Fd::new(cat.schema(), AttrSet::single(AttrId(0)), AttrSet::single(AttrId(2))),
        Fd::new(cat.schema(), AttrSet::single(AttrId(1)), AttrSet::single(AttrId(3))),
    ];
    group.bench_function("fd_modal_repair_1000rows", |b| {
        b.iter(|| repair::repair_fds(black_box(&cat), &fds, 10))
    });

    let rules: Vec<Box<dyn Dependency>> = fds
        .iter()
        .cloned()
        .map(|fd| Box::new(fd) as Box<dyn Dependency>)
        .collect();
    // Deletion repair recomputes violations per round; use a smaller slice.
    let small_rows: Vec<usize> = (0..300).collect();
    let small = cat.select_rows(&small_rows);
    group.bench_function("deletion_repair_300rows", |b| {
        b.iter(|| repair::deletion_repair(black_box(&small), &rules))
    });

    let ss = seq.schema();
    let sd = Sd::new(ss, ss.id("seq"), ss.id("y"), Interval::new(2.0, 4.0));
    group.bench_function("sequence_repair_5000rows", |b| {
        b.iter(|| repair::repair_sequence(black_box(&seq), &sd))
    });

    group.finish();
}

criterion_group!(benches, repair_suite);
criterion_main!(benches);
