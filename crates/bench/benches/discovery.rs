//! Discovery-algorithm throughput on standard workloads — one entry per
//! Table 2 discovery column, at a fixed comparable scale.

use criterion::{criterion_group, criterion_main, Criterion};
use deptree_bench::{entity_workload, fd_workload, sequence_workload};
use deptree_discovery::{cfd, cords, dd, fastfd, ffd, md, mfd, mvd, ned, od, pfd, sd, tane};
use deptree_metrics::Metric;
use deptree_relation::AttrSet;
use std::hint::black_box;

fn discovery_suite(c: &mut Criterion) {
    let cat = fd_workload(400, 6, 0.01);
    let ent = entity_workload(120);
    let seq = sequence_workload(500, 1, 0.02);

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("tane_exact", |b| {
        b.iter(|| tane::discover(black_box(&cat), &tane::TaneConfig::default()))
    });
    group.bench_function("tane_approx", |b| {
        b.iter(|| {
            tane::discover(
                black_box(&cat),
                &tane::TaneConfig {
                    max_lhs: 3,
                    max_error: 0.05,
                },
            )
        })
    });
    group.bench_function("fastfd", |b| {
        b.iter(|| fastfd::discover(black_box(&cat)))
    });
    group.bench_function("cords", |b| {
        b.iter(|| cords::discover(black_box(&cat), &cords::CordsConfig::default()))
    });
    group.bench_function("pfd", |b| {
        b.iter(|| pfd::discover(black_box(&cat), &pfd::PfdConfig::default()))
    });
    group.bench_function("cfdminer", |b| {
        b.iter(|| cfd::cfdminer(black_box(&cat), &cfd::CfdConfig { min_support: 4, max_lhs: 1 }))
    });
    group.bench_function("mvd", |b| {
        b.iter(|| mvd::discover(black_box(&cat), &mvd::MvdConfig { max_x: 1, max_y: 1 }))
    });

    let ent_rel = &ent.relation;
    let s = ent_rel.schema();
    group.bench_function("mfd_min_delta", |b| {
        b.iter(|| {
            mfd::minimal_delta(
                black_box(ent_rel),
                AttrSet::single(s.id("zip")),
                s.id("price"),
                &Metric::AbsDiff,
            )
        })
    });
    group.bench_function("dd", |b| {
        b.iter(|| {
            dd::discover(
                black_box(ent_rel),
                &dd::DdConfig {
                    thresholds_per_attr: 2,
                    min_support: 2,
                    max_lhs: 1,
                },
            )
        })
    });
    group.bench_function("md", |b| {
        b.iter(|| {
            md::discover(
                black_box(ent_rel),
                AttrSet::single(s.id("zip")),
                &md::MdConfig {
                    min_support: 0.0001,
                    min_confidence: 0.9,
                    thresholds_per_attr: 2,
                    max_lhs: 1,
                },
            )
        })
    });
    group.bench_function("ned_beam", |b| {
        b.iter(|| {
            ned::discover_lhs(
                black_box(ent_rel),
                vec![deptree_core::NedAtom::new(s.id("zip"), Metric::Equality, 0.0)],
                &ned::NedConfig {
                    thresholds_per_attr: 2,
                    max_lhs: 1,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("ffd", |b| {
        b.iter(|| ffd::discover(black_box(ent_rel), &ffd::FfdConfig { max_lhs: 1, numeric_beta: 1.0 }))
    });

    let sq = seq.schema();
    group.bench_function("od", |b| {
        b.iter(|| od::discover(black_box(&seq), &od::OdConfig::default()))
    });
    group.bench_function("sd_suggest", |b| {
        b.iter(|| sd::suggest_gap(black_box(&seq), sq.id("seq"), sq.id("y"), 0.05, 0.95))
    });

    group.finish();
}

criterion_group!(benches, discovery_suite);
criterion_main!(benches);
