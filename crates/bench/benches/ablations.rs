//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * TANE vs FastFD on wide-vs-long relations (the crossover the survey's
//!   discovery discussion implies);
//! * stripped-partition products vs direct grouping (TANE's key trick);
//! * CORDS cost vs table size (the "sample size independent of |r|"
//!   claim of §2.1.3);
//! * MFD exact O(k²) diameter vs O(k) pivot approximation (§3.1.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deptree_bench::{entity_workload, fd_workload};
use deptree_discovery::{cords, fastfd, mfd, tane};
use deptree_metrics::Metric;
use deptree_relation::{AttrSet, StrippedPartition};
use std::hint::black_box;

fn tane_vs_fastfd_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/tane_vs_fastfd");
    group.sample_size(10);
    // Long and narrow: many tuples, few attributes → FastFD pays n² pairs,
    // TANE's lattice is tiny.
    let long = fd_workload(3000, 4, 0.01);
    // Short and wide: few tuples, many attributes → TANE's lattice
    // explodes, FastFD's pair set is tiny.
    let wide = fd_workload(80, 14, 0.01);
    for (name, r) in [("long_narrow", &long), ("short_wide", &wide)] {
        group.bench_with_input(BenchmarkId::new("tane", name), r, |b, r| {
            b.iter(|| {
                tane::discover(
                    black_box(r),
                    &tane::TaneConfig {
                        max_lhs: r.n_attrs(),
                        max_error: 0.0,
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fastfd", name), r, |b, r| {
            b.iter(|| fastfd::discover(black_box(r)))
        });
    }
    group.finish();
}

fn partition_product_vs_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/partition");
    group.sample_size(20);
    let r = fd_workload(5000, 6, 0.0);
    let a = deptree_relation::AttrId(0);
    let b_attr = deptree_relation::AttrId(1);
    let pa = StrippedPartition::from_column(&r, a);
    let pb = StrippedPartition::from_column(&r, b_attr);
    group.bench_function("product", |b| {
        b.iter(|| black_box(&pa).product(black_box(&pb)))
    });
    group.bench_function("direct_grouping", |b| {
        b.iter(|| StrippedPartition::from_attrs(black_box(&r), AttrSet::from_ids([a, b_attr])))
    });
    group.finish();
}

fn cords_sample_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/cords_table_size");
    group.sample_size(10);
    for rows in [2_000usize, 8_000, 32_000] {
        let r = fd_workload(rows, 4, 0.0);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &r, |b, r| {
            b.iter(|| cords::discover(black_box(r), &cords::CordsConfig::default()))
        });
    }
    group.finish();
}

fn mfd_exact_vs_pivot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/mfd_verification");
    group.sample_size(10);
    let data = entity_workload(400);
    let r = &data.relation;
    let s = r.schema();
    let rows: Vec<usize> = (0..r.n_rows()).collect();
    group.bench_function("exact_diameter", |b| {
        b.iter(|| mfd::exact_diameter(black_box(r), &rows, s.id("price"), &Metric::AbsDiff))
    });
    group.bench_function("pivot_radius", |b| {
        b.iter(|| mfd::pivot_radius(black_box(r), &rows, s.id("price"), &Metric::AbsDiff))
    });
    group.finish();
}

fn dc_evidence_builders(c: &mut Criterion) {
    use deptree_discovery::dc;
    let mut group = c.benchmark_group("ablation/dc_evidence");
    group.sample_size(10);
    let r = fd_workload(150, 5, 0.05);
    let preds = dc::predicate_space(&r);
    group.bench_function("naive_per_predicate", |b| {
        b.iter(|| {
            let mut stats = dc::FastDcStats::default();
            dc::evidence_sets(black_box(&r), &preds, &mut stats)
        })
    });
    group.bench_function("grouped_bfastdc_style", |b| {
        b.iter(|| {
            let mut stats = dc::FastDcStats::default();
            dc::evidence_sets_grouped(black_box(&r), &preds, &mut stats)
        })
    });
    group.finish();
}

fn dc_full_vs_hydra(c: &mut Criterion) {
    use deptree_discovery::dc;
    let mut group = c.benchmark_group("ablation/dc_search");
    group.sample_size(10);
    // Regular data: few distinct evidence sets, Hydra's sweet spot.
    let r = fd_workload(120, 4, 0.0);
    let cfg = dc::DcConfig {
        max_predicates: 3,
        approx_epsilon: 0.0,
    };
    group.bench_function("fastdc_full_evidence", |b| {
        b.iter(|| dc::discover(black_box(&r), &cfg))
    });
    group.bench_function("hydra_sampled", |b| {
        b.iter(|| dc::discover_hydra(black_box(&r), &cfg, 20))
    });
    group.finish();
}

criterion_group!(
    benches,
    tane_vs_fastfd_shape,
    partition_product_vs_grouping,
    cords_sample_independence,
    mfd_exact_vs_pivot,
    dc_evidence_builders,
    dc_full_vs_hydra
);
criterion_main!(benches);
