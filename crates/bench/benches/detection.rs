//! Violation-detection throughput per notation (Table 3, row 1): how fast
//! each class of rule checks an instance — equality rules are
//! partition-cheap, similarity and order rules pay for tuple pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use deptree_bench::{entity_workload, fd_workload, sequence_workload};
use deptree_core::{
    CmpOp, Dc, Dependency, Direction, Fd, Interval, Md, Mfd, Od, Predicate, Sd,
};
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet};
use std::hint::black_box;

fn detection_suite(c: &mut Criterion) {
    let cat = fd_workload(2000, 4, 0.01);
    let ent = entity_workload(250); // ~500 rows, pairwise rules at n²
    let seq = sequence_workload(5000, 1, 0.02);

    let mut group = c.benchmark_group("detection");
    group.sample_size(10);

    let fd = Fd::new(cat.schema(), AttrSet::single(AttrId(0)), AttrSet::single(AttrId(2)));
    group.bench_function("fd_2000rows", |b| {
        b.iter(|| black_box(&fd).violations(black_box(&cat)))
    });

    let es = ent.relation.schema();
    let mfd = Mfd::new(
        es,
        AttrSet::single(es.id("zip")),
        vec![(es.id("price"), Metric::AbsDiff, 50.0)],
    );
    group.bench_function("mfd_groupwise", |b| {
        b.iter(|| black_box(&mfd).violations(black_box(&ent.relation)))
    });

    let md = Md::new(
        es,
        vec![(es.id("name"), Metric::Levenshtein, 4.0)],
        AttrSet::single(es.id("zip")),
    );
    group.bench_function("md_pairwise_editdist", |b| {
        b.iter(|| black_box(&md).violations(black_box(&ent.relation)))
    });

    let od = Od::new(
        es,
        vec![(es.id("price"), Direction::Asc)],
        vec![(es.id("price"), Direction::Asc)],
    );
    group.bench_function("od_pairwise", |b| {
        b.iter(|| black_box(&od).holds(black_box(&ent.relation)))
    });

    let dc = Dc::new(
        es,
        vec![
            Predicate::across(es.id("price"), CmpOp::Lt, es.id("price")),
            Predicate::across(es.id("price"), CmpOp::Gt, es.id("price")),
        ],
    );
    group.bench_function("dc_ordered_pairs", |b| {
        b.iter(|| black_box(&dc).holds(black_box(&ent.relation)))
    });

    let ss = seq.schema();
    let sd = Sd::new(ss, ss.id("seq"), ss.id("y"), Interval::new(2.0, 4.0));
    group.bench_function("sd_5000rows_sorted", |b| {
        b.iter(|| black_box(&sd).violations(black_box(&seq)))
    });

    group.finish();
}

criterion_group!(benches, detection_suite);
criterion_main!(benches);
