//! The heterogeneity noise of §1.2: the same real-world value rendered in
//! different formats by different sources.

use crate::rng::Rng;

/// Append a state-style suffix: `"Chicago"` → `"Chicago, IL"` (the paper's
/// running example of variety).
pub fn add_suffix(s: &str, rng: &mut Rng) -> String {
    const SUFFIXES: [&str; 6] = [", IL", ", MA", ", CA", ", TX", ", NY", ", WA"];
    format!("{s}{}", SUFFIXES[rng.random_range(0..SUFFIXES.len())])
}

/// Abbreviate: drop a trailing token like "Hotel"/"Street", or trim to a
/// prefix — `"New Center Hotel"` → `"New Center"` (Table 1, t1/t2).
pub fn abbreviate(s: &str) -> String {
    const DROPPABLE: [&str; 6] = ["Hotel", "Street", "Avenue", "Road", "Inn", "Suites"];
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if let [head @ .., last] = tokens.as_slice() {
        if !head.is_empty() && DROPPABLE.contains(last) {
            return head.join(" ");
        }
    }
    // Otherwise abbreviate the last token to its initial.
    if tokens.len() > 1 {
        let mut out = tokens[..tokens.len() - 1].join(" ");
        out.push(' ');
        out.push_str(&tokens[tokens.len() - 1].chars().take(1).collect::<String>());
        out.push('.');
        return out;
    }
    s.to_owned()
}

/// Introduce a single random typo (substitution, deletion or transposition
/// of one character).
pub fn typo(s: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let pos = rng.random_range(0..chars.len());
    let mut out = chars.clone();
    match rng.random_range(0..3u8) {
        0 => {
            // substitution with a nearby letter
            out[pos] = char::from(b'a' + rng.random_range(0..26u8));
        }
        1 => {
            out.remove(pos);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out[pos] = char::from(b'a' + rng.random_range(0..26u8));
            }
        }
    }
    out.into_iter().collect()
}

/// Apply a random representation-variety transformation: one of the three
/// above, chosen uniformly.
pub fn vary(s: &str, rng: &mut Rng) -> String {
    match rng.random_range(0..3u8) {
        0 => add_suffix(s, rng),
        1 => abbreviate(s),
        _ => typo(s, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_metrics::string::levenshtein;

    #[test]
    fn suffix_preserves_prefix() {
        let mut rng = crate::rng(1);
        let v = add_suffix("Chicago", &mut rng);
        assert!(v.starts_with("Chicago, "));
        assert_eq!(v.len(), "Chicago".len() + 4);
    }

    #[test]
    fn abbreviate_drops_known_tokens() {
        assert_eq!(abbreviate("New Center Hotel"), "New Center");
        assert_eq!(abbreviate("West Lake Road"), "West Lake");
        assert_eq!(abbreviate("Fifth Avenue"), "Fifth");
        // Unknown last token becomes an initial.
        assert_eq!(abbreviate("Saint Regis"), "Saint R.");
        // Single tokens are untouched.
        assert_eq!(abbreviate("Hyatt"), "Hyatt");
    }

    #[test]
    fn typo_is_small_edit() {
        let mut rng = crate::rng(2);
        for _ in 0..50 {
            let v = typo("West Wood Hotel", &mut rng);
            assert!(levenshtein("West Wood Hotel", &v) <= 2);
        }
    }

    #[test]
    fn vary_keeps_values_similar() {
        // The point of the noise model: variants stay within a small edit
        // distance (suffixes add ≤ 4), so similarity-based dependencies
        // can bridge them while equality-based ones cannot.
        let mut rng = crate::rng(3);
        for _ in 0..100 {
            let v = vary("Central Park", &mut rng);
            assert!(levenshtein("Central Park", &v) <= 7, "{v}");
        }
    }
}
