//! A small, self-contained, deterministic pseudo-random number generator.
//!
//! The tier-1 build must work with no network access, so the workspace
//! vendors this xoshiro256**-based generator instead of depending on the
//! `rand` crate. The API mirrors the subset of `rand` the generators use
//! (`random`, `random_range`, `random_bool`, `shuffle`), and every stream
//! is fully determined by its seed, which is what the fault-injection
//! harness and the budget-determinism tests rely on.

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG (xoshiro256** seeded through splitmix64).
///
/// Not cryptographically secure; statistical quality is more than enough
/// for synthetic workloads and fault plans.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A sample of the "standard" distribution for `T`: `f64` in `[0, 1)`,
    /// uniform integers over the full domain, fair `bool`.
    pub fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.5..=2.0)`. Empty integer ranges and inverted
    /// float ranges clamp to the start bound rather than panicking.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniform in `[0, bound)`; returns 0 for bound 0.
    fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of the fallback is irrelevant at the bounds used here.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }
}

/// Types with a canonical "standard" distribution for [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample(rng: &mut Rng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut Rng) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                if self.end <= self.start {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end <= start {
                    return start;
                }
                let span = (end as i128 - start as i128) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.bounded(span + 1)
                };
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        if self.end.partial_cmp(&self.start) != Some(std::cmp::Ordering::Greater) {
            return self.start;
        }
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        if end.partial_cmp(&start) != Some(std::cmp::Ordering::Greater) {
            return start;
        }
        start + rng.random::<f64>() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(va, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the reversal is the point
    fn degenerate_ranges_do_not_panic() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(rng.random_range(5..5usize), 5);
        assert_eq!(rng.random_range(5..3usize), 5);
        assert_eq!(rng.random_range(2.0..2.0f64), 2.0);
        assert_eq!(rng.random_range(9..=9u8), 9);
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
