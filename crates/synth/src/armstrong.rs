//! Armstrong relations: for a given FD set Σ, build an instance that
//! satisfies *exactly* the FDs Σ implies — the classical tool for testing
//! FD reasoning, here used to validate discovery completeness (TANE /
//! FastFD on an Armstrong relation must return a cover equivalent to Σ).
//!
//! Construction: the agree sets of the instance must be exactly the
//! *closed* attribute sets of Σ (sets `X` with `X⁺ = X`). We emit one base
//! tuple plus, for every closed set `C ⊊ R`, one tuple agreeing with the
//! base exactly on `C` — then `X → A` holds iff every closed superset of
//! `X` contains `A`, iff `A ∈ X⁺`.

use deptree_relation::{AttrSet, Relation, RelationBuilder, Value};

/// Closure of `x` under `fds`, with FDs given as `(lhs, rhs)` attribute
/// sets (kept dependency-free of `deptree-core`; `deptree-core`'s `Fd`
/// exposes exactly these).
pub fn closure(x: AttrSet, fds: &[(AttrSet, AttrSet)]) -> AttrSet {
    let mut out = x;
    loop {
        let mut grew = false;
        for &(lhs, rhs) in fds {
            if lhs.is_subset(out) && !rhs.is_subset(out) {
                out = out.union(rhs);
                grew = true;
            }
        }
        if !grew {
            return out;
        }
    }
}

/// Build an Armstrong relation for `fds` over `n_attrs` attributes (named
/// `A0 … A{n−1}`, categorical).
///
/// # Panics
/// Panics if `n_attrs` exceeds 16 (the construction enumerates all 2ⁿ
/// subsets).
pub fn armstrong_relation(n_attrs: usize, fds: &[(AttrSet, AttrSet)]) -> Relation {
    assert!(
        n_attrs <= 16,
        "Armstrong construction is exponential in attributes"
    );
    let all = AttrSet::full(n_attrs);
    let mut builder = RelationBuilder::new();
    for a in 0..n_attrs {
        builder = builder.attr(format!("A{a}"), deptree_relation::ValueType::Categorical);
    }
    // Base tuple: value 0 everywhere.
    builder = builder.row(vec![Value::str("c0"); n_attrs]);
    // One tuple per proper closed set; fresh values (unique per tuple) on
    // the complement.
    let mut fresh = 1u32;
    for mask in 0u64..(1 << n_attrs) {
        let set = AttrSet::from_bits(mask);
        if set == all || closure(set, fds) != set {
            continue;
        }
        let row: Vec<Value> = (0..n_attrs)
            .map(|a| {
                if set.contains(deptree_relation::AttrId(a)) {
                    Value::str("c0")
                } else {
                    fresh += 1;
                    Value::str(format!("u{fresh}"))
                }
            })
            .collect();
        builder = builder.row(row);
    }
    match builder.build() {
        Ok(r) => r,
        Err(e) => unreachable!("generator rows share one arity: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{Dependency, Fd};
    use deptree_relation::AttrId;

    fn fd_sets(n: usize) -> impl Iterator<Item = (AttrSet, AttrSet)> {
        // All single→single candidate FDs over n attributes.
        (0..n).flat_map(move |l| {
            (0..n)
                .filter(move |&r| l != r)
                .map(move |r| (AttrSet::single(AttrId(l)), AttrSet::single(AttrId(r))))
        })
    }

    #[test]
    fn armstrong_satisfies_exactly_the_implied_fds() {
        // Σ = {A0 → A1, A1 → A2} over 4 attributes.
        let sigma = vec![
            (AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1))),
            (AttrSet::single(AttrId(1)), AttrSet::single(AttrId(2))),
        ];
        let r = armstrong_relation(4, &sigma);
        for (lhs, rhs) in fd_sets(4) {
            let fd = Fd::new(r.schema(), lhs, rhs);
            let implied = rhs.is_subset(closure(lhs, &sigma));
            assert_eq!(fd.holds(&r), implied, "{fd}");
        }
        // Multi-attribute spot checks: A0A3 → A2 implied; A2A3 → A0 not.
        let a03 = AttrSet::from_ids([AttrId(0), AttrId(3)]);
        assert!(Fd::new(r.schema(), a03, AttrSet::single(AttrId(2))).holds(&r));
        let a23 = AttrSet::from_ids([AttrId(2), AttrId(3)]);
        assert!(!Fd::new(r.schema(), a23, AttrSet::single(AttrId(0))).holds(&r));
    }

    #[test]
    fn empty_sigma_yields_no_nontrivial_fds() {
        let r = armstrong_relation(3, &[]);
        for (lhs, rhs) in fd_sets(3) {
            let fd = Fd::new(r.schema(), lhs, rhs);
            assert!(
                !fd.holds(&r),
                "{fd} should fail on the free Armstrong relation"
            );
        }
    }

    #[test]
    fn key_constraint_shrinks_the_relation() {
        // A0 → everything: closed sets are exactly the sets not containing
        // A0 (plus R itself).
        let sigma = vec![(
            AttrSet::single(AttrId(0)),
            AttrSet::full(3).remove(AttrId(0)),
        )];
        let r = armstrong_relation(3, &sigma);
        let fd = Fd::new(
            r.schema(),
            AttrSet::single(AttrId(0)),
            AttrSet::full(3).remove(AttrId(0)),
        );
        assert!(fd.holds(&r));
        // And A1 → A0 must not hold.
        assert!(!Fd::new(
            r.schema(),
            AttrSet::single(AttrId(1)),
            AttrSet::single(AttrId(0))
        )
        .holds(&r));
    }
}
