//! Duplicated entity records with representation variety — the workload
//! for matching-dependency deduplication experiments (§3.7, Table 3).

use crate::noise;
use crate::rng::Rng;
use deptree_relation::{Relation, RelationBuilder, Value, ValueType};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct EntitiesConfig {
    /// Number of distinct real-world entities.
    pub n_entities: usize,
    /// Maximum records per entity (each entity gets 1..=max, uniform).
    pub max_duplicates: usize,
    /// Probability that a duplicate's name/address/region is reformatted.
    pub variety: f64,
    /// Probability that a duplicate's numeric field is wrong (an error, not
    /// mere variety).
    pub error_rate: f64,
    /// RNG seed (pass to [`crate::rng`]).
    pub seed: u64,
}

impl Default for EntitiesConfig {
    fn default() -> Self {
        EntitiesConfig {
            n_entities: 100,
            max_duplicates: 3,
            variety: 0.5,
            error_rate: 0.0,
            seed: 11,
        }
    }
}

/// Generated entity data with ground truth.
#[derive(Debug, Clone)]
pub struct EntityData {
    /// Schema: `name, address, region, zip, price` (Text/Text/Text/
    /// Categorical/Numeric).
    pub relation: Relation,
    /// `cluster[row]` = entity id the row truly denotes.
    pub cluster: Vec<usize>,
    /// Rows whose price was corrupted.
    pub dirty_rows: Vec<usize>,
}

const REGION_POOL: [&str; 8] = [
    "New York", "Boston", "Chicago", "San Jose", "El Paso", "Seattle", "Austin", "Denver",
];

const STREET_POOL: [&str; 6] = [
    "Central Park",
    "West Lake Road",
    "Fifth Avenue",
    "Jackson Street",
    "Gateway Boulevard",
    "Lombard Street",
];

/// Generate hotel-like entity records. Each entity has a canonical record;
/// duplicates re-render its text fields with [`noise::vary`].
pub fn generate(cfg: &EntitiesConfig, rng: &mut Rng) -> EntityData {
    let mut builder = RelationBuilder::new()
        .attr("name", ValueType::Text)
        .attr("address", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("zip", ValueType::Categorical)
        .attr("price", ValueType::Numeric);
    let mut cluster = Vec::new();
    let mut dirty_rows = Vec::new();
    let mut row = 0usize;
    for e in 0..cfg.n_entities {
        let name = format!("Hotel {} {}", REGION_POOL[e % REGION_POOL.len()], e);
        let address = format!("No.{}, {}", 1 + e % 97, STREET_POOL[e % STREET_POOL.len()]);
        let region = REGION_POOL[(e / REGION_POOL.len()) % REGION_POOL.len()];
        let zip = format!("{:05}", 10_000 + e * 13 % 89_999);
        let price = 100 + (e % 40) as i64 * 10;
        let copies = 1 + rng.random_range(0..cfg.max_duplicates);
        for c in 0..copies {
            let (mut n, mut a, mut g) = (name.clone(), address.clone(), region.to_owned());
            if c > 0 && rng.random::<f64>() < cfg.variety {
                n = noise::vary(&n, rng);
            }
            if c > 0 && rng.random::<f64>() < cfg.variety {
                a = noise::vary(&a, rng);
            }
            if c > 0 && rng.random::<f64>() < cfg.variety {
                g = noise::vary(&g, rng);
            }
            let mut p = price;
            if rng.random::<f64>() < cfg.error_rate {
                p += 500 + rng.random_range(0..500i64);
                dirty_rows.push(row);
            }
            builder = builder.row(vec![
                Value::str(n),
                Value::str(a),
                Value::str(g),
                Value::str(zip.clone()),
                Value::int(p),
            ]);
            cluster.push(e);
            row += 1;
        }
    }
    EntityData {
        relation: match builder.build() {
            Ok(r) => r,
            Err(e) => unreachable!("generator rows share one arity: {e}"),
        },
        cluster,
        dirty_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_metrics::string::levenshtein;

    #[test]
    fn clusters_cover_all_rows() {
        let cfg = EntitiesConfig::default();
        let data = generate(&cfg, &mut crate::rng(cfg.seed));
        assert_eq!(data.cluster.len(), data.relation.n_rows());
        let max = *data.cluster.iter().max().expect("non-empty");
        assert!(max < cfg.n_entities);
    }

    #[test]
    fn duplicates_stay_textually_close() {
        let cfg = EntitiesConfig {
            n_entities: 30,
            max_duplicates: 3,
            variety: 1.0,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(5));
        let name = data.relation.schema().id("name");
        // Within a cluster, names stay within small edit distance of each
        // other (variety, not different entities).
        for i in 0..data.relation.n_rows() {
            for j in (i + 1)..data.relation.n_rows() {
                if data.cluster[i] == data.cluster[j] {
                    let d = levenshtein(
                        &data.relation.value(i, name).render(),
                        &data.relation.value(j, name).render(),
                    );
                    assert!(d <= 14, "cluster variants too far apart: {d}");
                }
            }
        }
    }

    #[test]
    fn zips_identify_entities() {
        // Ground truth for MD street/region → zip style rules: rows of the
        // same cluster share a zip.
        let cfg = EntitiesConfig::default();
        let data = generate(&cfg, &mut crate::rng(cfg.seed));
        let zip = data.relation.schema().id("zip");
        for i in 0..data.relation.n_rows() {
            for j in (i + 1)..data.relation.n_rows() {
                if data.cluster[i] == data.cluster[j] {
                    assert_eq!(data.relation.value(i, zip), data.relation.value(j, zip));
                }
            }
        }
    }

    #[test]
    fn error_rate_marks_dirty_rows() {
        let cfg = EntitiesConfig {
            error_rate: 0.2,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(9));
        assert!(!data.dirty_rows.is_empty());
    }
}
