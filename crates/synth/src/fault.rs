//! Seeded, deterministic fault injection — the veracity stress harness.
//!
//! The survey's premise is that dependencies must stay useful on dirty,
//! erroneous data. This module turns that premise into a reusable test
//! harness: a [`FaultPlan`] describes *which* corruption classes to apply
//! and at *what* rate, and applies them deterministically from a seed, so
//! a failing resilience test reproduces exactly.
//!
//! Two surfaces are covered:
//!
//! * [`FaultPlan::apply`] corrupts a typed [`Relation`] in place-ish
//!   (returning a new instance plus ground truth about every injected
//!   fault) — cell corruption, null storms, row duplication, garbled
//!   encodings, schema drift;
//! * [`FaultPlan::apply_csv`] corrupts raw CSV *text* — BOM, CRLF,
//!   ragged rows, mojibake — the faults only a parser ever sees.

use crate::noise;
use crate::rng::Rng;
use deptree_relation::{AttrId, Relation, RelationBuilder, Value, ValueType};

/// One class of injected corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Overwrite a fraction of cells with type-inconsistent garbage
    /// (strings in numeric columns, absurd magnitudes, empty strings).
    CellCorruption {
        /// Fraction of cells corrupted (0..=1).
        rate: f64,
    },
    /// Set a fraction of cells to [`Value::Null`] — the missing-data storm
    /// real extraction pipelines produce.
    NullStorm {
        /// Fraction of cells nulled (0..=1).
        rate: f64,
    },
    /// Append duplicate copies of a fraction of rows (exact duplicates,
    /// the deduplication workload's worst case).
    RowDuplication {
        /// Expected duplicates per row (0..=1 duplicates each row at most
        /// once; the harness draws per row).
        rate: f64,
    },
    /// Replace string cells with garbled re-encodings: mojibake sequences,
    /// embedded control characters, zero-width junk.
    GarbledEncoding {
        /// Fraction of string cells garbled (0..=1).
        rate: f64,
    },
    /// Schema drift between sources: every attribute is renamed and its
    /// declared type rotated (`Categorical → Text → Numeric → …`), the
    /// values left as-is — type advice now lies about the data.
    SchemaDrift,
}

/// The names of all fault classes, for enumerating scenarios in tests.
pub const FAULT_CLASSES: [&str; 5] = [
    "cell-corruption",
    "null-storm",
    "row-duplication",
    "garbled-encoding",
    "schema-drift",
];

/// A deterministic corruption recipe: a seed plus an ordered list of
/// faults, applied in sequence.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed; equal plans applied to equal relations yield equal output.
    pub seed: u64,
    /// Faults to apply, in order.
    pub faults: Vec<Fault>,
}

/// Ground truth about what a [`FaultPlan`] did to a relation.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The corrupted instance.
    pub relation: Relation,
    /// Cells overwritten with garbage by [`Fault::CellCorruption`].
    pub corrupted_cells: Vec<(usize, AttrId)>,
    /// Cells nulled by [`Fault::NullStorm`].
    pub nulled_cells: Vec<(usize, AttrId)>,
    /// Source row index of every appended duplicate, in append order.
    pub duplicated_rows: Vec<usize>,
    /// Cells garbled by [`Fault::GarbledEncoding`].
    pub garbled_cells: Vec<(usize, AttrId)>,
    /// Whether [`Fault::SchemaDrift`] rewrote the schema.
    pub drifted_schema: bool,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Append one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// One plan per fault class, each at `rate` — the scenario matrix the
    /// resilience suite iterates.
    pub fn scenarios(seed: u64, rate: f64) -> Vec<(&'static str, FaultPlan)> {
        vec![
            (
                "cell-corruption",
                FaultPlan::new(seed).with(Fault::CellCorruption { rate }),
            ),
            (
                "null-storm",
                FaultPlan::new(seed).with(Fault::NullStorm { rate }),
            ),
            (
                "row-duplication",
                FaultPlan::new(seed).with(Fault::RowDuplication { rate }),
            ),
            (
                "garbled-encoding",
                FaultPlan::new(seed).with(Fault::GarbledEncoding { rate }),
            ),
            (
                "schema-drift",
                FaultPlan::new(seed).with(Fault::SchemaDrift),
            ),
            (
                "everything-at-once",
                FaultPlan::new(seed)
                    .with(Fault::CellCorruption { rate })
                    .with(Fault::NullStorm { rate })
                    .with(Fault::GarbledEncoding { rate })
                    .with(Fault::RowDuplication { rate })
                    .with(Fault::SchemaDrift),
            ),
        ]
    }

    /// Apply the plan to a relation, returning the corrupted instance and
    /// the ground truth of every injected fault.
    pub fn apply(&self, r: &Relation) -> FaultReport {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut rel = r.clone();
        let mut report = FaultReport {
            relation: Relation::empty(r.schema().clone()).unwrap_or_else(|_| r.clone()),
            corrupted_cells: Vec::new(),
            nulled_cells: Vec::new(),
            duplicated_rows: Vec::new(),
            garbled_cells: Vec::new(),
            drifted_schema: false,
        };
        for fault in &self.faults {
            match *fault {
                Fault::CellCorruption { rate } => {
                    for row in 0..rel.n_rows() {
                        for a in rel.schema().ids() {
                            if rng.random_bool(rate) {
                                rel.set_value(row, a, garbage_value(&mut rng));
                                report.corrupted_cells.push((row, a));
                            }
                        }
                    }
                }
                Fault::NullStorm { rate } => {
                    for row in 0..rel.n_rows() {
                        for a in rel.schema().ids() {
                            if rng.random_bool(rate) {
                                rel.set_value(row, a, Value::Null);
                                report.nulled_cells.push((row, a));
                            }
                        }
                    }
                }
                Fault::RowDuplication { rate } => {
                    let n = rel.n_rows();
                    for row in 0..n {
                        if rng.random_bool(rate) {
                            let copy = rel.row(row);
                            if rel.push_row(copy).is_ok() {
                                report.duplicated_rows.push(row);
                            }
                        }
                    }
                }
                Fault::GarbledEncoding { rate } => {
                    for row in 0..rel.n_rows() {
                        for a in rel.schema().ids() {
                            let garble = match rel.value(row, a) {
                                Value::Str(_) => rng.random_bool(rate),
                                _ => false,
                            };
                            if garble {
                                let s = rel.value(row, a).render().into_owned();
                                rel.set_value(row, a, Value::str(garble_text(&s, &mut rng)));
                                report.garbled_cells.push((row, a));
                            }
                        }
                    }
                }
                Fault::SchemaDrift => {
                    rel = drift_schema(&rel, &mut rng);
                    report.drifted_schema = true;
                }
            }
        }
        report.relation = rel;
        report
    }

    /// Apply text-level faults to raw CSV: a UTF-8 BOM, CRLF line endings,
    /// ragged rows (a dropped or extra trailing field), and mojibake in a
    /// fraction of lines. Always deterministic in the seed.
    pub fn apply_csv(&self, csv: &str) -> String {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xC5_F0_0D);
        let rate = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CellCorruption { rate }
                | Fault::GarbledEncoding { rate }
                | Fault::NullStorm { rate } => Some(rate),
                _ => None,
            })
            .fold(0.0f64, f64::max)
            .max(0.05);
        let mut out = String::from("\u{feff}");
        for (i, line) in csv.lines().enumerate() {
            let mut line = line.to_owned();
            if i > 0 && rng.random_bool(rate) {
                // Ragged: drop the last field or append a stray one.
                if rng.random_bool(0.5) {
                    if let Some(pos) = line.rfind(',') {
                        line.truncate(pos);
                    }
                } else {
                    line.push_str(",stray");
                }
            }
            if i > 0 && rng.random_bool(rate) {
                line = garble_text(&line, &mut rng);
            }
            out.push_str(&line);
            // Mixed line endings, CRLF-heavy.
            out.push_str(if rng.random_bool(0.7) { "\r\n" } else { "\n" });
        }
        out
    }
}

/// A type-inconsistent garbage value.
fn garbage_value(rng: &mut Rng) -> Value {
    match rng.random_range(0..5u8) {
        0 => Value::str(""),
        1 => Value::int(i64::MAX - rng.random_range(0..1000i64)),
        2 => Value::float(f64::MAX / 2.0),
        3 => Value::str("NaN;DROP TABLE--"),
        _ => Value::str(format!("??{}", rng.random_range(0..1_000_000usize))),
    }
}

/// Garble a string: mojibake substitution, control characters, zero-width
/// junk, or a typo pile-up.
fn garble_text(s: &str, rng: &mut Rng) -> String {
    const MOJIBAKE: [&str; 4] = ["Ã©", "â€™", "ï¿½", "Ð–"];
    match rng.random_range(0..4u8) {
        0 => {
            // Replace a slice with a mojibake sequence.
            let moji = MOJIBAKE[rng.random_range(0..MOJIBAKE.len())];
            let mut out: String = s.chars().collect();
            if let Some(pos) = out
                .char_indices()
                .nth(rng.random_range(0..s.chars().count().max(1)))
            {
                out.replace_range(pos.0..pos.0 + pos.1.len_utf8(), moji);
            }
            out
        }
        1 => format!("\u{0000}{s}\u{0007}"),
        2 => format!("{s}\u{200b}\u{200d}"),
        _ => {
            let mut out = s.to_owned();
            for _ in 0..3 {
                out = noise::typo(&out, rng);
            }
            out
        }
    }
}

/// Rename every attribute and rotate its declared type.
fn drift_schema(r: &Relation, rng: &mut Rng) -> Relation {
    let mut builder = RelationBuilder::new();
    for (i, (_, attr)) in r.schema().iter().enumerate() {
        let new_ty = match attr.ty {
            ValueType::Categorical => ValueType::Text,
            ValueType::Text => ValueType::Numeric,
            ValueType::Numeric => ValueType::Categorical,
        };
        let new_name = match rng.random_range(0..3u8) {
            0 => format!("{}_v2", attr.name),
            1 => attr.name.to_uppercase() + "_",
            _ => format!("col{i}_{}", attr.name),
        };
        builder = builder.attr(new_name, new_ty);
    }
    for row in 0..r.n_rows() {
        builder = builder.row(r.row(row));
    }
    // The drifted schema has the same arity as the source relation, so
    // rebuilding cannot fail; fall back to the original on the impossible
    // path rather than panicking.
    builder.build().unwrap_or_else(|_| r.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::Schema;

    fn sample() -> Relation {
        let mut b = RelationBuilder::new()
            .attr("name", ValueType::Text)
            .attr("city", ValueType::Categorical)
            .attr("price", ValueType::Numeric);
        for i in 0..40 {
            b = b.row(vec![
                Value::str(format!("Hotel {i}")),
                Value::str(format!("c{}", i % 5)),
                Value::int(100 + i),
            ]);
        }
        b.build().expect("consistent")
    }

    #[test]
    fn deterministic_per_seed() {
        let r = sample();
        let plan = FaultPlan::new(9)
            .with(Fault::CellCorruption { rate: 0.2 })
            .with(Fault::NullStorm { rate: 0.1 })
            .with(Fault::RowDuplication { rate: 0.3 });
        let a = plan.apply(&r);
        let b = plan.apply(&r);
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.corrupted_cells, b.corrupted_cells);
        assert_eq!(a.nulled_cells, b.nulled_cells);
        assert_eq!(a.duplicated_rows, b.duplicated_rows);
        let c = FaultPlan {
            seed: 10,
            ..plan.clone()
        }
        .apply(&r);
        assert_ne!(a.corrupted_cells, c.corrupted_cells);
    }

    #[test]
    fn null_storm_nulls_reported_cells() {
        let r = sample();
        let report = FaultPlan::new(3)
            .with(Fault::NullStorm { rate: 0.25 })
            .apply(&r);
        assert!(!report.nulled_cells.is_empty());
        for &(row, a) in &report.nulled_cells {
            assert!(report.relation.value(row, a).is_null());
        }
    }

    #[test]
    fn duplication_appends_exact_copies() {
        let r = sample();
        let report = FaultPlan::new(5)
            .with(Fault::RowDuplication { rate: 0.5 })
            .apply(&r);
        assert!(!report.duplicated_rows.is_empty());
        assert_eq!(
            report.relation.n_rows(),
            r.n_rows() + report.duplicated_rows.len()
        );
        for (k, &src) in report.duplicated_rows.iter().enumerate() {
            assert_eq!(report.relation.row(r.n_rows() + k), r.row(src));
        }
    }

    #[test]
    fn schema_drift_changes_names_and_types_only() {
        let r = sample();
        let report = FaultPlan::new(7).with(Fault::SchemaDrift).apply(&r);
        assert!(report.drifted_schema);
        assert_eq!(report.relation.n_rows(), r.n_rows());
        assert_eq!(report.relation.n_attrs(), r.n_attrs());
        let old: Vec<&str> = r.schema().iter().map(|(_, a)| a.name.as_str()).collect();
        let new: Vec<&str> = report
            .relation
            .schema()
            .iter()
            .map(|(_, a)| a.name.as_str())
            .collect();
        assert_ne!(old, new);
        for row in 0..r.n_rows() {
            assert_eq!(r.row(row), report.relation.row(row));
        }
    }

    #[test]
    fn csv_faults_produce_hostile_text() {
        let r = sample();
        let clean = deptree_relation::to_csv(&r);
        let plan = FaultPlan::new(21).with(Fault::CellCorruption { rate: 0.3 });
        let dirty = plan.apply_csv(&clean);
        assert!(dirty.starts_with('\u{feff}'), "BOM injected");
        assert!(dirty.contains("\r\n"), "CRLF injected");
        assert_eq!(dirty, plan.apply_csv(&clean), "deterministic");
    }

    #[test]
    fn empty_relation_survives_all_faults() {
        let r = Relation::empty(Schema::from_attrs([
            ("a", ValueType::Text),
            ("b", ValueType::Numeric),
        ]))
        .expect("small schema");
        for (_, plan) in FaultPlan::scenarios(1, 0.5) {
            let report = plan.apply(&r);
            assert_eq!(report.relation.n_rows(), 0);
        }
    }
}
