//! Synthetic workload generators for the deptree experiments.
//!
//! The survey's evaluation artifacts (Tables 1/5/6/7) are eight-tuple
//! examples; benchmarks need the same *shapes* at scale. This crate
//! substitutes for the real dirty web-extracted data the cited systems
//! used (see DESIGN.md, substitution table):
//!
//! * [`categorical`] — relations with *planted* FDs and a controlled error
//!   rate, returning the ground-truth dirty cells, for discovery and
//!   detection precision/recall experiments;
//! * [`noise`] — the heterogeneity noise of §1.2: abbreviations, state
//!   suffixes (`"Chicago"` → `"Chicago, IL"`), typos;
//! * [`entities`] — duplicated entity records with representation variety,
//!   for MD/CD deduplication experiments with known clusters;
//! * [`numerical`] — ordered sequences with drift, regime changes and
//!   spikes, for OD/SD/CSD experiments.
//!
//! [`armstrong`] additionally builds *Armstrong relations* — instances
//! satisfying exactly the FDs a given set implies — the classical
//! completeness oracle for discovery algorithms.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod armstrong;
pub mod categorical;
pub mod entities;
pub mod fault;
pub mod noise;
pub mod numerical;
pub mod rng;

pub use categorical::{CategoricalConfig, PlantedRelation};
pub use entities::{EntitiesConfig, EntityData};
pub use fault::{Fault, FaultPlan, FaultReport};
pub use numerical::{SequenceConfig, SequenceData};
pub use rng::Rng;

/// Create the crate's canonical RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}
