//! Relations with planted functional dependencies and injected errors.

use crate::rng::Rng;
use deptree_relation::{AttrId, Relation, RelationBuilder, Value, ValueType};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct CategoricalConfig {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of *determinant* attributes `K₀ … K_{k−1}` (independent,
    /// uniform categorical columns).
    pub n_key_attrs: usize,
    /// Number of *dependent* attributes `D₀ … D_{m−1}`; `Dᵢ` is a planted
    /// function of the key attribute `K_{i mod k}`.
    pub n_dep_attrs: usize,
    /// Domain size of each determinant attribute.
    pub domain: usize,
    /// Fraction of dependent cells overwritten with a random (likely
    /// FD-violating) value.
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CategoricalConfig {
    fn default() -> Self {
        CategoricalConfig {
            n_rows: 1000,
            n_key_attrs: 2,
            n_dep_attrs: 2,
            domain: 50,
            error_rate: 0.0,
            seed: 7,
        }
    }
}

/// A generated relation plus its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedRelation {
    /// The instance.
    pub relation: Relation,
    /// The planted exact rules as `(lhs attr, rhs attr)` pairs — before
    /// error injection, `lhs → rhs` holds exactly.
    pub planted_fds: Vec<(AttrId, AttrId)>,
    /// Cells that were overwritten with noise, as `(row, attr)`.
    pub dirty_cells: Vec<(usize, AttrId)>,
}

/// Deterministic "function" mapping a key value to a dependent value —
/// a multiplicative hash so dependent domains look categorical too.
fn dep_value(key: usize, attr_salt: usize) -> usize {
    key.wrapping_mul(0x9E37_79B9)
        .wrapping_add(attr_salt.wrapping_mul(0x85EB_CA6B))
        % 1_000_003
}

/// Generate a relation where each dependent attribute is functionally
/// determined by one key attribute, then inject `error_rate` noise into
/// dependent cells.
pub fn generate(cfg: &CategoricalConfig, rng: &mut Rng) -> PlantedRelation {
    assert!(cfg.n_key_attrs >= 1, "need at least one key attribute");
    assert!(cfg.domain >= 2, "domain must have at least two values");
    let mut builder = RelationBuilder::new();
    for k in 0..cfg.n_key_attrs {
        builder = builder.attr(format!("K{k}"), ValueType::Categorical);
    }
    for d in 0..cfg.n_dep_attrs {
        builder = builder.attr(format!("D{d}"), ValueType::Categorical);
    }

    let mut keys: Vec<Vec<usize>> = Vec::with_capacity(cfg.n_rows);
    for _ in 0..cfg.n_rows {
        keys.push(
            (0..cfg.n_key_attrs)
                .map(|_| rng.random_range(0..cfg.domain))
                .collect(),
        );
    }

    let mut dirty_cells = Vec::new();
    for (row, key) in keys.iter().enumerate() {
        let mut cells: Vec<Value> = key.iter().map(|&v| Value::str(format!("k{v}"))).collect();
        for d in 0..cfg.n_dep_attrs {
            let src = key[d % cfg.n_key_attrs];
            let mut v = dep_value(src, d);
            if cfg.error_rate > 0.0 && rng.random::<f64>() < cfg.error_rate {
                // Perturb to a value outside the planted image with high
                // probability.
                v = v.wrapping_add(1 + rng.random_range(0..1_000usize));
                dirty_cells.push((row, AttrId(cfg.n_key_attrs + d)));
            }
            cells.push(Value::str(format!("d{v}")));
        }
        builder = builder.row(cells);
    }

    let relation = match builder.build() {
        Ok(r) => r,
        Err(e) => unreachable!("generator rows share one arity: {e}"),
    };
    let planted_fds = (0..cfg.n_dep_attrs)
        .map(|d| (AttrId(d % cfg.n_key_attrs), AttrId(cfg.n_key_attrs + d)))
        .collect();
    PlantedRelation {
        relation,
        planted_fds,
        dirty_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{Dependency, Fd};
    use deptree_relation::AttrSet;

    #[test]
    fn clean_generation_satisfies_planted_fds() {
        let cfg = CategoricalConfig {
            n_rows: 500,
            error_rate: 0.0,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(cfg.seed));
        assert_eq!(data.relation.n_rows(), 500);
        assert!(data.dirty_cells.is_empty());
        for &(lhs, rhs) in &data.planted_fds {
            let fd = Fd::new(
                data.relation.schema(),
                AttrSet::single(lhs),
                AttrSet::single(rhs),
            );
            assert!(fd.holds(&data.relation), "{fd} should hold on clean data");
        }
    }

    #[test]
    fn errors_break_planted_fds() {
        let cfg = CategoricalConfig {
            n_rows: 500,
            error_rate: 0.05,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(cfg.seed));
        assert!(!data.dirty_cells.is_empty());
        let violated = data.planted_fds.iter().any(|&(lhs, rhs)| {
            !Fd::new(
                data.relation.schema(),
                AttrSet::single(lhs),
                AttrSet::single(rhs),
            )
            .holds(&data.relation)
        });
        assert!(violated, "5% noise should violate at least one planted FD");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CategoricalConfig::default();
        let a = generate(&cfg, &mut crate::rng(42));
        let b = generate(&cfg, &mut crate::rng(42));
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.dirty_cells, b.dirty_cells);
    }

    #[test]
    fn error_rate_roughly_respected() {
        let cfg = CategoricalConfig {
            n_rows: 2000,
            n_dep_attrs: 1,
            error_rate: 0.1,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(3));
        let rate = data.dirty_cells.len() as f64 / 2000.0;
        assert!((0.05..0.15).contains(&rate), "rate {rate}");
    }
}
