//! Ordered numerical sequences for OD/SD/CSD experiments (§4).

use crate::rng::Rng;
use deptree_relation::{Relation, RelationBuilder, Value, ValueType};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SequenceConfig {
    /// Number of rows (one per sequence position).
    pub n_rows: usize,
    /// Gap regimes: the sequence is split into `regimes.len()` equal
    /// periods; in period `i` each step increases `y` by a value drawn
    /// uniformly from `regimes[i]` — the workload shape CSD tableaux
    /// capture (§4.4.5).
    pub regimes: Vec<(f64, f64)>,
    /// Probability that a step is replaced by an out-of-regime spike
    /// (a data error / missed poll).
    pub spike_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            n_rows: 1000,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.0,
            seed: 13,
        }
    }
}

/// A generated sequence plus ground truth.
#[derive(Debug, Clone)]
pub struct SequenceData {
    /// Schema: `seq` (1..=n) and `y` (cumulative value), both Numeric.
    pub relation: Relation,
    /// Positions `i` where the step `i → i+1` was a spike (0-indexed rows).
    pub spike_steps: Vec<usize>,
    /// The regime boundaries as row indices (start of each regime).
    pub regime_starts: Vec<usize>,
}

/// Generate a monotone sequence with per-regime step distributions and
/// occasional spikes.
pub fn generate(cfg: &SequenceConfig, rng: &mut Rng) -> SequenceData {
    assert!(!cfg.regimes.is_empty(), "need at least one regime");
    let mut builder = RelationBuilder::new()
        .attr("seq", ValueType::Numeric)
        .attr("y", ValueType::Numeric);
    let period = cfg.n_rows.div_ceil(cfg.regimes.len());
    let regime_starts = (0..cfg.regimes.len()).map(|i| i * period).collect();
    let mut spike_steps = Vec::new();
    let mut y = 0.0f64;
    for i in 0..cfg.n_rows {
        builder = builder.row(vec![Value::int(i as i64 + 1), Value::float(y)]);
        let (lo, hi) = cfg.regimes[(i / period).min(cfg.regimes.len() - 1)];
        let step = if rng.random::<f64>() < cfg.spike_rate {
            spike_steps.push(i);
            hi * 5.0 + rng.random_range(0.0..hi.max(1.0))
        } else {
            rng.random_range(lo..=hi)
        };
        y += step;
    }
    SequenceData {
        relation: match builder.build() {
            Ok(r) => r,
            Err(e) => unreachable!("generator rows share one arity: {e}"),
        },
        spike_steps,
        regime_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{Dependency, Interval, Sd};

    #[test]
    fn clean_sequence_satisfies_sd() {
        let cfg = SequenceConfig {
            n_rows: 200,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.0,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(cfg.seed));
        let s = data.relation.schema();
        let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
        assert!(sd.holds(&data.relation));
        assert!(data.spike_steps.is_empty());
    }

    #[test]
    fn spikes_violate_sd_and_are_located() {
        let cfg = SequenceConfig {
            n_rows: 200,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.05,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(17));
        assert!(!data.spike_steps.is_empty());
        let s = data.relation.schema();
        let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
        let violations = sd.violations(&data.relation);
        assert_eq!(violations.len(), data.spike_steps.len());
        // Each violation pair (i, i+1) corresponds to a recorded spike.
        for v in &violations {
            assert!(data.spike_steps.contains(&v.rows[0]), "{:?}", v.rows);
        }
    }

    #[test]
    fn regimes_produce_different_gap_bands() {
        let cfg = SequenceConfig {
            n_rows: 100,
            regimes: vec![(1.0, 2.0), (10.0, 12.0)],
            spike_rate: 0.0,
            ..Default::default()
        };
        let data = generate(&cfg, &mut crate::rng(23));
        assert_eq!(data.regime_starts, vec![0, 50]);
        let s = data.relation.schema();
        // A single global SD with the first regime's band fails…
        let tight = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(1.0, 2.0));
        assert!(!tight.holds(&data.relation));
        // …but a generous global band covering both succeeds.
        let wide = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(1.0, 12.0));
        assert!(wide.holds(&data.relation));
    }
}
