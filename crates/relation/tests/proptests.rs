//! Property tests for the relational substrate: the total order on
//! values, bitset algebra, partition laws and CSV round-trips.

use deptree_relation::{parse_csv, to_csv, AttrId, AttrSet, RelationBuilder, Value, ValueType};
use proptest::prelude::*;
use std::cmp::Ordering;

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::int),
        (-1e9f64..1e9).prop_map(Value::float),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    /// Ord is a total order consistent with Eq (the contract the Int/Float
    /// tie-breaking exists to uphold).
    #[test]
    fn value_order_total_and_consistent(a in any_value(), b in any_value(), c in any_value()) {
        // Antisymmetry + consistency with Eq.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// numeric_cmp agrees with cmp except on cross-representation numeric
    /// ties.
    #[test]
    fn numeric_cmp_refines_cmp(a in any_value(), b in any_value()) {
        let nc = a.numeric_cmp(&b);
        let sc = a.cmp(&b);
        if nc != Ordering::Equal {
            prop_assert_eq!(nc, sc);
        }
    }

    /// AttrSet algebra: De Morgan-ish laws within a fixed universe.
    #[test]
    fn attrset_laws(a in 0u64..(1 << 16), b in 0u64..(1 << 16), c in 0u64..(1 << 16)) {
        let (a, b, c) = (AttrSet::from_bits(a), AttrSet::from_bits(b), AttrSet::from_bits(c));
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.union(b).intersect(c), a.intersect(c).union(b.intersect(c)));
        prop_assert_eq!(a.difference(b).union(a.intersect(b)), a);
        prop_assert!(a.intersect(b).is_subset(a));
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert_eq!(a.len() + b.len(), a.union(b).len() + a.intersect(b).len());
        // Iteration round-trips.
        prop_assert_eq!(AttrSet::from_ids(a.iter()), a);
    }

    /// CSV round-trip: text-typed relations survive serialize → parse.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(("[a-zA-Z0-9 ,\"]{0,12}", "[a-z]{0,8}"), 0..8)) {
        let mut b = RelationBuilder::new()
            .attr("x", ValueType::Text)
            .attr("y", ValueType::Text);
        for (x, y) in &rows {
            // Empty strings deserialize as Null; normalize to non-empty.
            let x = if x.is_empty() { "_" } else { x };
            let y = if y.is_empty() { "_" } else { y };
            b = b.row(vec![Value::str(x), Value::str(y)]);
        }
        let r = b.build().expect("consistent arity");
        let text = to_csv(&r);
        let back = parse_csv(&text, &[ValueType::Text, ValueType::Text]).expect("parses");
        prop_assert_eq!(r, back);
    }

    /// group_by partitions the rows: classes are disjoint and cover.
    #[test]
    fn group_by_is_a_partition(vals in proptest::collection::vec(0u8..5, 1..20)) {
        let mut b = RelationBuilder::new().attr("a", ValueType::Categorical);
        for v in &vals {
            b = b.row(vec![Value::str(format!("v{v}"))]);
        }
        let r = b.build().expect("consistent arity");
        let groups = r.group_by(AttrSet::single(AttrId(0)));
        let mut seen = vec![false; r.n_rows()];
        for rows in groups.values() {
            for &row in rows {
                prop_assert!(!seen[row], "row in two groups");
                seen[row] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
