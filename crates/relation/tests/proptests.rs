//! Property tests for the relational substrate: the total order on
//! values, bitset algebra, partition laws and CSV round-trips.
//!
//! Driven by a seeded splitmix64 loop (no external dev-dependencies);
//! a failing case reproduces exactly from its seed.

use deptree_relation::{parse_csv, to_csv, AttrId, AttrSet, RelationBuilder, Value, ValueType};
use std::cmp::Ordering;

struct MiniRng(u64);

impl MiniRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn value(&mut self) -> Value {
        match self.below(4) {
            0 => Value::Null,
            1 => Value::int(self.next() as i64),
            2 => {
                let raw = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
                Value::float((raw - 0.5) * 2e9)
            }
            _ => {
                let len = self.below(7) as usize;
                let s: String = (0..len)
                    .map(|_| (b'a' + self.below(26) as u8) as char)
                    .collect();
                Value::str(s)
            }
        }
    }

    fn string_from(&mut self, pool: &[char], max: usize) -> String {
        let len = self.below(max as u64 + 1) as usize;
        (0..len)
            .map(|_| pool[self.below(pool.len() as u64) as usize])
            .collect()
    }
}

const CASES: u64 = 256;

/// Ord is a total order consistent with Eq (the contract the Int/Float
/// tie-breaking exists to uphold).
#[test]
fn value_order_total_and_consistent() {
    let mut rng = MiniRng(0xA1);
    for case in 0..CASES {
        let a = rng.value();
        let b = rng.value();
        let c = rng.value();
        // Antisymmetry + consistency with Eq.
        assert_eq!(a == b, a.cmp(&b) == Ordering::Equal, "case {case}");
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse(), "case {case}");
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(
                a.cmp(&c),
                Ordering::Greater,
                "case {case}: {a:?} {b:?} {c:?}"
            );
        }
    }
}

/// numeric_cmp agrees with cmp except on cross-representation numeric ties.
#[test]
fn numeric_cmp_refines_cmp() {
    let mut rng = MiniRng(0xB2);
    for case in 0..CASES {
        let a = rng.value();
        let b = rng.value();
        let nc = a.numeric_cmp(&b);
        let sc = a.cmp(&b);
        if nc != Ordering::Equal {
            assert_eq!(nc, sc, "case {case}: {a:?} vs {b:?}");
        }
    }
}

/// AttrSet algebra: De Morgan-ish laws within a fixed universe.
#[test]
fn attrset_laws() {
    let mut rng = MiniRng(0xC3);
    for case in 0..CASES {
        let a = AttrSet::from_bits(rng.below(1 << 16));
        let b = AttrSet::from_bits(rng.below(1 << 16));
        let c = AttrSet::from_bits(rng.below(1 << 16));
        assert_eq!(a.union(b), b.union(a), "case {case}");
        assert_eq!(a.intersect(b), b.intersect(a), "case {case}");
        assert_eq!(
            a.union(b).intersect(c),
            a.intersect(c).union(b.intersect(c)),
            "case {case}"
        );
        assert_eq!(a.difference(b).union(a.intersect(b)), a, "case {case}");
        assert!(a.intersect(b).is_subset(a), "case {case}");
        assert!(a.is_subset(a.union(b)), "case {case}");
        assert_eq!(
            a.len() + b.len(),
            a.union(b).len() + a.intersect(b).len(),
            "case {case}"
        );
        // Iteration round-trips.
        assert_eq!(AttrSet::from_ids(a.iter()), a, "case {case}");
    }
}

/// CSV round-trip: text-typed relations survive serialize → parse.
#[test]
fn csv_round_trip() {
    const X_POOL: [char; 10] = ['a', 'Z', '0', '9', ' ', ',', '"', 'q', 'M', '5'];
    const Y_POOL: [char; 6] = ['a', 'b', 'c', 'x', 'y', 'z'];
    let mut rng = MiniRng(0xD4);
    for case in 0..CASES {
        let n_rows = rng.below(8) as usize;
        let mut b = RelationBuilder::new()
            .attr("x", ValueType::Text)
            .attr("y", ValueType::Text);
        for _ in 0..n_rows {
            let x = rng.string_from(&X_POOL, 12);
            let y = rng.string_from(&Y_POOL, 8);
            // Empty strings deserialize as Null; normalize to non-empty.
            let x = if x.is_empty() { "_".to_owned() } else { x };
            let y = if y.is_empty() { "_".to_owned() } else { y };
            b = b.row(vec![Value::str(x), Value::str(y)]);
        }
        let r = b.build().expect("consistent arity");
        let text = to_csv(&r);
        let back = parse_csv(&text, &[ValueType::Text, ValueType::Text]).expect("parses");
        assert_eq!(r, back, "case {case}");
    }
}

/// group_by partitions the rows: classes are disjoint and cover.
#[test]
fn group_by_is_a_partition() {
    let mut rng = MiniRng(0xE5);
    for case in 0..CASES {
        let n_rows = 1 + rng.below(19) as usize;
        let mut b = RelationBuilder::new().attr("a", ValueType::Categorical);
        for _ in 0..n_rows {
            b = b.row(vec![Value::str(format!("v{}", rng.below(5)))]);
        }
        let r = b.build().expect("consistent arity");
        let groups = r.group_by(AttrSet::single(AttrId(0)));
        let mut seen = vec![false; r.n_rows()];
        for rows in groups.values() {
            for &row in rows {
                assert!(!seen[row], "case {case}: row in two groups");
                seen[row] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s), "case {case}");
    }
}
