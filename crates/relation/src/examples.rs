//! The survey's running example instances, reproduced verbatim.
//!
//! Every worked computation in the paper's text (strength 2/3, probability
//! 3/4, `g3 = 1/4`, the PAC 8/11 confidence, the FFD μ-computations, …) is
//! checked as a unit test against these relations in `deptree-core`.

// Static literal fixtures: each builder call is over fixed data whose
// arity is visible on the page, so `expect` is a compile-time-checked
// invariant rather than a reachable error path.
#![allow(clippy::expect_used)]

use crate::relation::{Relation, RelationBuilder};
use crate::schema::ValueType;
use crate::value::Value;

/// Table 1: relation instance `r1` of Hotel.
///
/// Rows (0-indexed here; the paper writes `t1..t8`):
/// the fd `address → region` is satisfied by `t1,t2`; violated with a real
/// error by `t3,t4`; `t5,t6` are a *false positive* under strict equality
/// ("Chicago" vs "Chicago, IL"); `t7,t8` are a *false negative* (similar
/// but unequal addresses hide the error).
pub fn hotels_r1() -> Relation {
    RelationBuilder::new()
        .attr("name", ValueType::Text)
        .attr("address", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("star", ValueType::Numeric)
        .attr("price", ValueType::Numeric)
        .row(row5("New Center", "No.5, Central Park", "New York", 3, 299))
        .row(row5(
            "New Center Hotel",
            "No.5, Central Park",
            "New York",
            3,
            299,
        ))
        .row(row5(
            "St. Regis Hotel",
            "#3, West Lake Rd.",
            "Boston",
            3,
            319,
        ))
        .row(row5(
            "St. Regis",
            "#3, West Lake Rd.",
            "Chicago, MA",
            3,
            319,
        ))
        .row(row5(
            "West Wood Hotel",
            "Fifth Avenue, 61st Street",
            "Chicago",
            4,
            499,
        ))
        .row(row5(
            "West Wood",
            "Fifth Avenue, 61st Street",
            "Chicago, IL",
            4,
            499,
        ))
        .row(row5(
            "Christina Hotel",
            "No.7, West Lake Rd.",
            "Boston, MA",
            5,
            599,
        ))
        .row(row5(
            "Christina",
            "#7, West Lake Rd.",
            "San Francisco",
            5,
            0,
        ))
        .build()
        .expect("static example data")
}

/// Table 5: relation instance `r5` of Hotel, where `address → region`
/// almost holds while `name → address` is not clear to hold.
pub fn hotels_r5() -> Relation {
    RelationBuilder::new()
        .attr("name", ValueType::Text)
        .attr("address", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("rate", ValueType::Numeric)
        .row(row4("Hyatt", "175 North Jackson Street", "Jackson", 230))
        .row(row4("Hyatt", "175 North Jackson Street", "Jackson", 250))
        .row(row4("Hyatt", "6030 Gateway Boulevard E", "El Paso", 189))
        .row(row4(
            "Hyatt",
            "6030 Gateway Boulevard E",
            "El Paso, TX",
            189,
        ))
        .build()
        .expect("static example data")
}

/// Table 6: relation instance `r6` with tuples from heterogeneous sources
/// `s1` and `s2`.
pub fn hotels_r6() -> Relation {
    RelationBuilder::new()
        .attr("source", ValueType::Categorical)
        .attr("name", ValueType::Text)
        .attr("street", ValueType::Text)
        .attr("address", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("zip", ValueType::Categorical)
        .attr("price", ValueType::Numeric)
        .attr("tax", ValueType::Numeric)
        .row(r6_row(
            "s1",
            "NC",
            "CPark",
            "#5, Central Park",
            "New York",
            "10041",
            299,
            29,
        ))
        .row(r6_row(
            "s2",
            "NC",
            "12th St.",
            "#2 Ave, 12th St.",
            "San Jose",
            "95102",
            300,
            20,
        ))
        .row(r6_row(
            "s1",
            "Regis",
            "CPark",
            "#9, Central Park",
            "New York",
            "10041",
            319,
            31,
        ))
        .row(r6_row(
            "s2",
            "Chris",
            "61st St.",
            "#5 Ave, 61st St.",
            "Chicago",
            "60601",
            499,
            49,
        ))
        .row(r6_row(
            "s2",
            "WD",
            "12th St.",
            "#6 Ave, 12th St.",
            "San Jose",
            "95102",
            399,
            27,
        ))
        .row(r6_row(
            "s1",
            "NC",
            "12th Str",
            "#2 Aven, 12th St.",
            "San Jose",
            "95102",
            300,
            20,
        ))
        .build()
        .expect("static example data")
}

/// The three-tuple dataspace of §3.4.1 used for comparable dependencies.
///
/// Heterogeneous sources disagree on attribute names (`region` vs `city`,
/// `addr` vs `post`); tuples fill whichever column their source uses and
/// leave the synonym column null.
pub fn dataspace_cd() -> Relation {
    let null = Value::Null;
    RelationBuilder::new()
        .attr("name", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("city", ValueType::Text)
        .attr("addr", ValueType::Text)
        .attr("post", ValueType::Text)
        .row(vec![
            "Alice".into(),
            "Petersburg".into(),
            null.clone(),
            "#7 T Avenue".into(),
            null.clone(),
        ])
        .row(vec![
            "Alice".into(),
            null.clone(),
            "St Petersburg".into(),
            null.clone(),
            "#7 T Avenue".into(),
        ])
        .row(vec![
            "Alex".into(),
            "St Petersburg".into(),
            null.clone(),
            null,
            "No 7 T Ave".into(),
        ])
        .build()
        .expect("static example data")
}

/// Table 7: relation instance `r7` with multiple numerical attributes on
/// hotel rates.
pub fn hotels_r7() -> Relation {
    RelationBuilder::new()
        .attr("nights", ValueType::Numeric)
        .attr("avg/night", ValueType::Numeric)
        .attr("subtotal", ValueType::Numeric)
        .attr("taxes", ValueType::Numeric)
        .row(vec![1.into(), 190.into(), 190.into(), 38.into()])
        .row(vec![2.into(), 185.into(), 370.into(), 74.into()])
        .row(vec![3.into(), 180.into(), 540.into(), 108.into()])
        .row(vec![4.into(), 175.into(), 700.into(), 140.into()])
        .build()
        .expect("static example data")
}

fn row5(name: &str, address: &str, region: &str, star: i64, price: i64) -> Vec<Value> {
    vec![
        name.into(),
        address.into(),
        region.into(),
        star.into(),
        price.into(),
    ]
}

fn row4(name: &str, address: &str, region: &str, rate: i64) -> Vec<Value> {
    vec![name.into(), address.into(), region.into(), rate.into()]
}

#[allow(clippy::too_many_arguments)]
fn r6_row(
    source: &str,
    name: &str,
    street: &str,
    address: &str,
    region: &str,
    zip: &str,
    price: i64,
    tax: i64,
) -> Vec<Value> {
    vec![
        source.into(),
        name.into(),
        street.into(),
        address.into(),
        region.into(),
        zip.into(),
        price.into(),
        tax.into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrset::AttrSet;

    #[test]
    fn r1_shape() {
        let r = hotels_r1();
        assert_eq!(r.n_rows(), 8);
        assert_eq!(r.n_attrs(), 5);
        // t1, t2 share the address; the region agrees.
        let s = r.schema();
        assert!(r.rows_agree(0, 1, AttrSet::single(s.id("address"))));
        assert!(r.rows_agree(0, 1, AttrSet::single(s.id("region"))));
        // t3, t4 share the address but not the region (the real violation).
        assert!(r.rows_agree(2, 3, AttrSet::single(s.id("address"))));
        assert!(!r.rows_agree(2, 3, AttrSet::single(s.id("region"))));
    }

    #[test]
    fn r5_domain_counts_match_paper() {
        // §2.1.1: |dom(address)| = 2, |dom(address, region)| = 3,
        //         |dom(name)| = 1, |dom(name, address)| = 2.
        let r = hotels_r5();
        let s = r.schema();
        assert_eq!(r.distinct_count(AttrSet::single(s.id("address"))), 2);
        assert_eq!(
            r.distinct_count(AttrSet::from_ids([s.id("address"), s.id("region")])),
            3
        );
        assert_eq!(r.distinct_count(AttrSet::single(s.id("name"))), 1);
        assert_eq!(
            r.distinct_count(AttrSet::from_ids([s.id("name"), s.id("address")])),
            2
        );
    }

    #[test]
    fn r6_shape() {
        let r = hotels_r6();
        assert_eq!(r.n_rows(), 6);
        assert_eq!(r.n_attrs(), 8);
    }

    #[test]
    fn r7_is_sorted_on_nights() {
        let r = hotels_r7();
        let sorted = r.sorted_rows(AttrSet::single(r.schema().id("nights")));
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dataspace_has_synonym_nulls() {
        let r = dataspace_cd();
        assert_eq!(r.n_rows(), 3);
        assert!(r.value(0, r.schema().id("city")).is_null());
        assert!(!r.value(1, r.schema().id("city")).is_null());
    }
}
