//! Schemas: named, typed attributes.

use std::fmt;

/// The declared type of an attribute.
///
/// Types are advisory: a [`crate::Relation`] stores [`crate::Value`]s and
/// tolerates mixed columns (heterogeneous sources rarely agree on types),
/// but discovery algorithms use the declared type to choose comparison
/// semantics — equality for categorical data, metrics for text, order for
/// numerical data — exactly the three branches of the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Categorical data compared by equality (survey §2).
    Categorical,
    /// Free text from heterogeneous sources, compared by similarity (§3).
    Text,
    /// Numerical data with meaningful order and distance (§4).
    Numeric,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Categorical => write!(f, "categorical"),
            ValueType::Text => write!(f, "text"),
            ValueType::Numeric => write!(f, "numeric"),
        }
    }
}

/// Index of an attribute within its [`Schema`].
///
/// `AttrId` is a plain newtype over `usize`; it is `Copy` and cheap to pass
/// around, and it doubles as the bit index inside an [`crate::AttrSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

/// A relation schema: an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are tiny and built
    /// by hand or by generators, so this is a programming error.
    pub fn from_attrs<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = (S, ValueType)>,
        S: Into<String>,
    {
        let mut schema = Schema::new();
        for (name, ty) in attrs {
            schema.push(name, ty);
        }
        schema
    }

    /// Append an attribute, returning its id.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn push(&mut self, name: impl Into<String>, ty: ValueType) -> AttrId {
        let name = name.into();
        assert!(
            self.attr_id(&name).is_none(),
            "duplicate attribute name `{name}`"
        );
        self.attrs.push(Attribute { name, ty });
        AttrId(self.attrs.len() - 1)
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.0]
    }

    /// Attribute name for an id.
    #[inline]
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id.0].name
    }

    /// Declared type for an id.
    #[inline]
    pub fn ty(&self, id: AttrId) -> ValueType {
        self.attrs[id.0].ty
    }

    /// Look up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(AttrId)
    }

    /// Look up an attribute id by name, panicking with a helpful message if
    /// it does not exist. Convenient in tests and examples.
    pub fn id(&self, name: &str) -> AttrId {
        self.attr_id(name)
            .unwrap_or_else(|| panic!("no attribute named `{name}`"))
    }

    /// Iterate over `(AttrId, &Attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i), a))
    }

    /// All attribute ids.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> + use<> {
        (0..self.attrs.len()).map(AttrId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Schema::new();
        let a = s.push("name", ValueType::Text);
        let b = s.push("price", ValueType::Numeric);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attr_id("name"), Some(a));
        assert_eq!(s.attr_id("price"), Some(b));
        assert_eq!(s.attr_id("missing"), None);
        assert_eq!(s.name(a), "name");
        assert_eq!(s.ty(b), ValueType::Numeric);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.push("x", ValueType::Categorical);
        s.push("x", ValueType::Numeric);
    }

    #[test]
    fn from_attrs_preserves_order() {
        let s = Schema::from_attrs([
            ("a", ValueType::Categorical),
            ("b", ValueType::Numeric),
            ("c", ValueType::Text),
        ]);
        let names: Vec<_> = s.iter().map(|(_, a)| a.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
