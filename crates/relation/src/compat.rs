//! Row-major compatibility mode: a process-wide switch that routes the
//! code-based fast paths (grouping, sorting, partitioning, pair blocking,
//! sorted order checks) through their frozen `Value`-slice reference
//! implementations instead.
//!
//! The two paths are *contractually byte-identical* — that is what
//! `tests/columnar_equivalence.rs` proves — so flipping the switch changes
//! performance, never results. It exists for exactly two consumers:
//!
//! * the differential harness, which runs every task once per mode and
//!   compares outputs byte for byte;
//! * `columnar_scaling`, which times the row-major baseline against the
//!   columnar fast paths on the same build.
//!
//! Because results are mode-independent, concurrent tests that race on the
//! flag can at worst run slower, never produce different answers; the
//! equivalence harness still serializes itself so each measurement is
//! honestly single-mode.

use std::sync::atomic::{AtomicBool, Ordering};

static ROW_MAJOR: AtomicBool = AtomicBool::new(false);

/// Is the row-major reference mode active?
#[inline]
pub fn row_major() -> bool {
    ROW_MAJOR.load(Ordering::Relaxed)
}

/// Force (or release) row-major mode directly. Prefer the RAII
/// [`force_row_major`] in tests.
pub fn set_row_major(on: bool) {
    ROW_MAJOR.store(on, Ordering::SeqCst);
}

/// Guard that restores the previous mode on drop.
#[must_use = "the mode reverts when the guard drops"]
pub struct RowMajorGuard {
    prev: bool,
}

/// Switch to row-major mode until the returned guard drops.
pub fn force_row_major() -> RowMajorGuard {
    let prev = ROW_MAJOR.swap(true, Ordering::SeqCst);
    RowMajorGuard { prev }
}

impl Drop for RowMajorGuard {
    fn drop(&mut self) {
        ROW_MAJOR.store(self.prev, Ordering::SeqCst);
    }
}

/// Serialize unit tests that force the mode against tests whose
/// *assertions* are mode-sensitive (e.g. kernel-strategy counters, which
/// legitimately differ between modes even though results never do).
#[cfg(test)]
pub(crate) fn test_mode_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
