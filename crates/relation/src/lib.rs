//! Relational substrate for the `deptree` workspace.
//!
//! This crate provides the data model every other crate builds on:
//!
//! * [`Value`] — a dynamically typed cell value (null / integer / float /
//!   string) with a total order and hashing, so values can live in keys of
//!   hash maps and be sorted without caveats;
//! * [`Schema`] / [`Attribute`] / [`AttrId`] — named, typed columns;
//! * [`AttrSet`] — a compact bitset over attribute ids, the currency of
//!   lattice-based discovery algorithms (TANE, CTANE, FASTOD, …);
//! * [`Relation`] — a column-oriented instance with grouping, projection and
//!   distinct-counting helpers;
//! * [`StrippedPartition`] — equivalence-class partitions with the product
//!   operation, the core data structure of partition-based discovery;
//! * [`PartitionCache`] — a sharded, memoized, LRU-bounded interner of
//!   stripped partitions shared across lattice levels, dependency classes
//!   and worker threads;
//! * [`examples`] — the running example instances of the survey (Tables 1,
//!   5, 6 and 7), reproduced verbatim so that every worked computation in
//!   the paper can be checked as a unit test.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod attrset;
mod cache;
pub mod column;
pub mod compat;
mod csv;
pub mod examples;
pub mod pairgen;
mod partition;
mod relation;
mod schema;
mod value;

pub use attrset::AttrSet;
pub use cache::{CacheDelta, PartitionCache};
pub use column::{Column, ColumnIndex, PackedCodes, PackedCodesIter, PACKED_CODES_MAX_DICT};
pub use csv::{parse_csv, parse_csv_lossy, to_csv, CsvError, LossyCsv, ParseIssue};
pub use partition::{ProductScratch, StrippedPartition};
pub use relation::{Relation, RelationBuilder, RelationError};
pub use schema::{AttrId, Attribute, Schema, ValueType};
pub use value::{Value, F64};
