//! A sharded, memoized cache of stripped partitions.
//!
//! Lattice-based discovery recomputes `π_X` for the same attribute sets
//! over and over: TANE needs every node of the current level plus its
//! parents, FastFD probes single-attribute partitions, and the PFD / CFD
//! / eCFD miners re-derive the same groupings per candidate. A run-scoped
//! [`PartitionCache`] interns `π_X` by [`AttrSet`] so each partition is
//! computed once and *shared* — across lattice levels, across dependency
//! classes, and across the worker threads of the parallel executors.
//!
//! Design points:
//!
//! * **Sharded**: the key space is split over independent `Mutex`-guarded
//!   shards (selected by a mix of the attrset bits), so concurrent
//!   workers rarely contend on the same lock and never hold two at once.
//! * **Memoized products**: a miss on `X` is computed as
//!   `π_{X∖{a}} · π_{a}` (with `a = max(X)`), recursively through the
//!   cache — exactly TANE's parent-product trick, so a warm cache makes
//!   each new lattice level one product per node. Products run through a
//!   thread-local [`ProductScratch`], reusing probe buffers across calls.
//! * **Budget-aware**: every mutation reports a [`CacheDelta`] of bytes
//!   inserted/evicted so callers can charge the execution engine's
//!   partition-memory budget precisely.
//! * **LRU eviction**: an optional capacity bounds the estimated resident
//!   bytes; inserts over capacity evict least-recently-used entries.
//!   Base partitions (`|X| ≤ 1`) are pinned — they are the leaves of
//!   every recomputation, so evicting them only thrashes. Eviction is
//!   transparent: a later lookup recomputes the identical partition.
//!
//! Correctness invariant (property-tested): a cache hit is bit-identical
//! to a fresh [`StrippedPartition`] computation, with or without
//! eviction, at any thread count.

use crate::attrset::AttrSet;
use crate::partition::{ProductScratch, StrippedPartition};
use crate::relation::Relation;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of independent shards. A power of two so shard selection is a
/// mask; 16 comfortably exceeds the worker counts the pool runs with.
const SHARDS: usize = 16;

thread_local! {
    /// Per-thread product scratch: each pool worker reuses its own probe
    /// buffer across every product it computes within a run.
    static SCRATCH: RefCell<ProductScratch> = RefCell::new(ProductScratch::new());
}

/// Bytes inserted into / evicted from the cache by one operation, for
/// charging the engine's partition-memory budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheDelta {
    /// Estimated bytes newly interned by this operation.
    pub inserted_bytes: u64,
    /// Estimated bytes released by LRU eviction during this operation.
    pub evicted_bytes: u64,
}

impl CacheDelta {
    fn merge(self, other: CacheDelta) -> CacheDelta {
        CacheDelta {
            inserted_bytes: self.inserted_bytes + other.inserted_bytes,
            evicted_bytes: self.evicted_bytes + other.evicted_bytes,
        }
    }
}

struct Entry {
    part: Arc<StrippedPartition>,
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<AttrSet, Entry>,
}

/// A sharded, memoized, LRU-bounded cache of stripped partitions keyed by
/// attribute set. See the [module docs](self) for the design.
pub struct PartitionCache {
    shards: Vec<Mutex<Shard>>,
    capacity: Option<u64>,
    mem: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Products computed by the radix kernel
    /// ([`StrippedPartition::product_with_column`]).
    radix_products: AtomicU64,
    /// Products computed by the probe-table fallback
    /// ([`StrippedPartition::product_with`]).
    hash_products: AtomicU64,
}

impl Default for PartitionCache {
    fn default() -> Self {
        PartitionCache::new()
    }
}

impl std::fmt::Debug for PartitionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionCache")
            .field("capacity", &self.capacity)
            .field("mem_estimate", &self.mem_estimate())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .field("radix_products", &self.radix_products())
            .field("hash_products", &self.hash_products())
            .finish()
    }
}

impl PartitionCache {
    /// Unbounded cache.
    pub fn new() -> Self {
        PartitionCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: None,
            mem: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            radix_products: AtomicU64::new(0),
            hash_products: AtomicU64::new(0),
        }
    }

    /// Cache that evicts least-recently-used unpinned entries once the
    /// resident estimate exceeds `bytes`. The bound is honored modulo the
    /// pinned base partitions (`|X| ≤ 1`), which are never evicted.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        PartitionCache {
            capacity: Some(bytes),
            ..PartitionCache::new()
        }
    }

    fn shard_for(&self, attrs: AttrSet) -> &Mutex<Shard> {
        // Fibonacci-hash the bitset so dense lattice neighborhoods spread
        // over shards instead of clustering by low bits.
        let h = attrs.bits().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize & (SHARDS - 1)]
    }

    fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up `π_attrs` without computing it on a miss.
    pub fn get(&self, attrs: AttrSet) -> Option<Arc<StrippedPartition>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = Self::lock(self.shard_for(attrs));
        match shard.map.get_mut(&attrs) {
            Some(e) => {
                e.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.part))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Intern a ready-made partition for `attrs`. If another thread won
    /// the race, the incumbent is kept (first insert wins) and the delta
    /// is empty. Returns the interned partition plus the byte delta.
    pub fn insert(
        &self,
        attrs: AttrSet,
        part: StrippedPartition,
    ) -> (Arc<StrippedPartition>, CacheDelta) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let bytes = part.approx_bytes();
        let arc = Arc::new(part);
        let mut delta = CacheDelta::default();
        {
            let mut shard = Self::lock(self.shard_for(attrs));
            let entry = shard.map.entry(attrs);
            match entry {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().last_used = stamp;
                    return (Arc::clone(&e.get().part), delta);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Entry {
                        part: Arc::clone(&arc),
                        bytes,
                        last_used: stamp,
                    });
                    self.mem.fetch_add(bytes, Ordering::Relaxed);
                    delta.inserted_bytes = bytes;
                }
            }
        }
        delta.evicted_bytes = self.enforce_capacity(attrs);
        (arc, delta)
    }

    /// Fetch `π_attrs`, computing (and interning) it on a miss via the
    /// cached-parent product recursion. Returns the partition and the
    /// accumulated byte delta of every insert/eviction the call caused.
    pub fn get_or_compute(
        &self,
        r: &Relation,
        attrs: AttrSet,
    ) -> (Arc<StrippedPartition>, CacheDelta) {
        if let Some(p) = self.get(attrs) {
            return (p, CacheDelta::default());
        }
        let mut delta = CacheDelta::default();
        let computed = match attrs.len() {
            0 => StrippedPartition::identity(r.n_rows()),
            1 => match attrs.min() {
                Some(a) => StrippedPartition::from_column(r, a),
                None => StrippedPartition::identity(r.n_rows()),
            },
            _ => {
                // π_X = π_{X∖{a}} · π_{a}: the left parent comes
                // (recursively) from the cache, so a warm level costs one
                // product. The product itself picks a strategy: the radix
                // kernel splits the left parent directly on `a`'s code
                // vector; when the dictionary is too wide for it (or
                // row-major compat is forced), fall back to materializing
                // `π_a` and the probe-table product. Both strategies are
                // byte-identical by construction and by property test.
                let Some(split) = attrs.max() else {
                    return (Arc::new(StrippedPartition::identity(r.n_rows())), delta);
                };
                let (left, d1) = self.get_or_compute(r, attrs.remove(split));
                delta = delta.merge(d1);
                let radix = if crate::compat::row_major() {
                    None
                } else {
                    SCRATCH.with(|s| left.product_with_column(r.col(split), &mut s.borrow_mut()))
                };
                match radix {
                    Some(p) => {
                        self.radix_products.fetch_add(1, Ordering::Relaxed);
                        p
                    }
                    None => {
                        let (right, d2) = self.get_or_compute(r, AttrSet::single(split));
                        delta = delta.merge(d2);
                        self.hash_products.fetch_add(1, Ordering::Relaxed);
                        SCRATCH.with(|s| left.product_with(&right, &mut s.borrow_mut()))
                    }
                }
            }
        };
        let (arc, d) = self.insert(attrs, computed);
        (arc, delta.merge(d))
    }

    /// Evict least-recently-used unpinned entries until the resident
    /// estimate fits the capacity. `just_inserted` is never evicted by
    /// its own insert (evicting the partition being handed out would make
    /// every over-capacity insert useless). Returns bytes evicted.
    fn enforce_capacity(&self, just_inserted: AttrSet) -> u64 {
        let Some(cap) = self.capacity else {
            return 0;
        };
        let mut evicted_total = 0u64;
        while self.mem.load(Ordering::Relaxed) > cap {
            // Pass 1: find the globally-oldest unpinned victim, one shard
            // lock at a time (never two locks at once).
            let mut victim: Option<(usize, AttrSet, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let guard = Self::lock(shard);
                for (&k, e) in &guard.map {
                    if k.len() <= 1 || k == just_inserted {
                        continue; // pinned
                    }
                    if victim.is_none_or(|(_, _, stamp)| e.last_used < stamp) {
                        victim = Some((i, k, e.last_used));
                    }
                }
            }
            let Some((i, k, stamp)) = victim else {
                break; // nothing evictable — over-capacity by pins alone
            };
            // Pass 2: re-lock and remove if untouched since pass 1.
            let mut guard = Self::lock(&self.shards[i]);
            let still_oldest = guard.map.get(&k).is_some_and(|e| e.last_used == stamp);
            if still_oldest {
                if let Some(e) = guard.map.remove(&k) {
                    self.mem.fetch_sub(e.bytes, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted_total += e.bytes;
                }
            }
        }
        evicted_total
    }

    /// Explicitly drop `π_attrs` (level-wise miners release levels the
    /// lattice walk no longer needs). Returns the bytes released, 0 when
    /// the entry was absent. Unlike LRU eviction this also drops pinned
    /// base partitions if asked to.
    pub fn remove(&self, attrs: AttrSet) -> u64 {
        let mut shard = Self::lock(self.shard_for(attrs));
        match shard.map.remove(&attrs) {
            Some(e) => {
                self.mem.fetch_sub(e.bytes, Ordering::Relaxed);
                e.bytes
            }
            None => 0,
        }
    }

    /// Estimated resident bytes across all shards.
    pub fn mem_estimate(&self) -> u64 {
        self.mem.load(Ordering::Relaxed)
    }

    /// Number of interned partitions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Partition products computed by the radix (counting-sort) kernel.
    pub fn radix_products(&self) -> u64 {
        self.radix_products.load(Ordering::Relaxed)
    }

    /// Partition products computed by the probe-table (hash-fallback) path.
    pub fn hash_products(&self) -> u64 {
        self.hash_products.load(Ordering::Relaxed)
    }

    /// Drop every entry (stats are kept). Returns bytes released.
    pub fn clear(&self) -> u64 {
        let mut released = 0u64;
        for shard in &self.shards {
            let mut guard = Self::lock(shard);
            for (_, e) in guard.map.drain() {
                released += e.bytes;
            }
        }
        self.mem.fetch_sub(released, Ordering::Relaxed);
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::ValueType;
    use crate::AttrId;

    fn rel() -> Relation {
        RelationBuilder::new()
            .attr("a", ValueType::Categorical)
            .attr("b", ValueType::Categorical)
            .attr("c", ValueType::Categorical)
            .row(vec!["x".into(), "p".into(), "1".into()])
            .row(vec!["x".into(), "p".into(), "1".into()])
            .row(vec!["x".into(), "q".into(), "2".into()])
            .row(vec!["y".into(), "q".into(), "2".into()])
            .row(vec!["y".into(), "q".into(), "3".into()])
            .build()
            .expect("consistent arity")
    }

    fn ids(v: &[usize]) -> AttrSet {
        v.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn hit_equals_fresh_computation() {
        let r = rel();
        let cache = PartitionCache::new();
        for set in [
            ids(&[0]),
            ids(&[0, 1]),
            ids(&[0, 1, 2]),
            ids(&[2]),
            AttrSet::empty(),
        ] {
            let (cached, _) = cache.get_or_compute(&r, set);
            let fresh = StrippedPartition::from_attrs(&r, set);
            assert_eq!(*cached, fresh, "mismatch for {set:?}");
            // Second call is a pure hit, identical again.
            let (again, d) = cache.get_or_compute(&r, set);
            assert_eq!(*again, fresh);
            assert_eq!(d, CacheDelta::default());
        }
        assert!(cache.hits() >= 5);
    }

    #[test]
    fn deltas_track_mem_estimate() {
        let r = rel();
        let cache = PartitionCache::new();
        let mut charged = 0u64;
        for set in [ids(&[0]), ids(&[1]), ids(&[0, 1]), ids(&[0, 1, 2])] {
            let (_, d) = cache.get_or_compute(&r, set);
            charged += d.inserted_bytes;
            charged -= d.evicted_bytes;
        }
        assert_eq!(charged, cache.mem_estimate());
        let released = cache.clear();
        assert_eq!(released, charged);
        assert_eq!(cache.mem_estimate(), 0);
    }

    #[test]
    fn eviction_keeps_results_correct() {
        let r = rel();
        // Absurdly small capacity: every multi-attribute insert evicts.
        let cache = PartitionCache::with_capacity_bytes(1);
        let sets = [ids(&[0, 1]), ids(&[1, 2]), ids(&[0, 2]), ids(&[0, 1, 2])];
        for &set in &sets {
            let (p, _) = cache.get_or_compute(&r, set);
            assert_eq!(*p, StrippedPartition::from_attrs(&r, set));
        }
        assert!(cache.evictions() > 0);
        // Re-query everything: recomputation after eviction is identical.
        for &set in &sets {
            let (p, _) = cache.get_or_compute(&r, set);
            assert_eq!(*p, StrippedPartition::from_attrs(&r, set));
        }
    }

    #[test]
    fn base_partitions_are_pinned() {
        let r = rel();
        let cache = PartitionCache::with_capacity_bytes(1);
        for a in 0..3 {
            cache.get_or_compute(&r, ids(&[a]));
        }
        cache.get_or_compute(&r, ids(&[0, 1, 2]));
        // Singletons survive even though the cache is far over capacity.
        for a in 0..3 {
            assert!(cache.get(ids(&[a])).is_some(), "singleton {a} evicted");
        }
    }

    #[test]
    fn product_strategy_counters_track_paths() {
        let _mode = crate::compat::test_mode_lock();
        let r = rel();
        let cache = PartitionCache::new();
        let (p, _) = cache.get_or_compute(&r, ids(&[0, 1]));
        assert_eq!(
            (cache.radix_products(), cache.hash_products()),
            (1, 0),
            "tiny dictionaries take the radix kernel"
        );
        let row_major = crate::compat::force_row_major();
        let rm_cache = PartitionCache::new();
        let (q, _) = rm_cache.get_or_compute(&r, ids(&[0, 1]));
        drop(row_major);
        assert_eq!(
            (rm_cache.radix_products(), rm_cache.hash_products()),
            (0, 1),
            "row-major compat forces the probe-table fallback"
        );
        assert_eq!(*p, *q, "both strategies produce the same partition");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let r = rel();
        let cache = PartitionCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for bits in 1u64..8 {
                        let set = AttrSet::from_bits(bits);
                        let (p, _) = cache.get_or_compute(&r, set);
                        assert_eq!(*p, StrippedPartition::from_attrs(&r, set));
                    }
                });
            }
        });
        // Every distinct set interned exactly once.
        assert_eq!(cache.len(), 7);
        let expected: u64 = (1u64..8)
            .map(|bits| StrippedPartition::from_attrs(&r, AttrSet::from_bits(bits)).approx_bytes())
            .sum();
        assert_eq!(cache.mem_estimate(), expected);
    }
}
