//! Dynamically typed cell values.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable wrapper around `f64`.
///
/// Ordering and equality use [`f64::total_cmp`], so `NaN` values are legal
/// (they sort above `+inf`) and the wrapper can be used in `BTreeMap` keys
/// or hashed group-by keys without panics or surprises.
#[derive(Debug, Clone, Copy)]
pub struct F64(pub f64);

impl F64 {
    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // total_cmp-equal floats have identical bit patterns except for
        // 0.0 vs -0.0, which total_cmp distinguishes anyway.
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for F64 {
    #[inline]
    fn from(v: f64) -> Self {
        F64(v)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A single cell value in a relation instance.
///
/// `Value` has a *total* order so relations can be sorted on any column:
/// `Null` sorts first, then numbers (integers and floats compare
/// numerically against each other), then strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Missing / unknown value (SQL `NULL`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(F64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Build an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Build a float value.
    pub fn float(v: f64) -> Self {
        Value::Float(F64(v))
    }

    /// Is this the null value?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is a number.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(v.0),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value as text; numbers use their canonical decimal form,
    /// `Null` renders as the empty string.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Float(v) => Cow::Owned(v.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }

    /// Compare with *value* semantics: numeric values compare by their
    /// numeric value regardless of representation (`Int(2)` equals
    /// `Float(2.0)`), everything else falls back to the structural total
    /// order. This is the comparison SQL-style predicates want; the `Ord`
    /// impl is the stricter structural order suitable for sorting and
    /// grouping.
    pub fn numeric_cmp(&self, other: &Self) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            _ => self.cmp(other),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            // Mixed numeric comparisons order numerically, but numerically
            // equal Int/Float pairs tie-break by variant (Int first) so the
            // order stays consistent with `Eq` (Int(2) != Float(2.0)).
            // Use `numeric_cmp` for value-semantics comparison instead.
            (Int(a), Float(b)) => F64(*a as f64).cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.cmp(&F64(*b as f64)).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(F64(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn total_order_ranks_null_numbers_strings() {
        let mut vals = vec![
            Value::str("abc"),
            Value::int(3),
            Value::Null,
            Value::float(2.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::float(2.5),
                Value::int(3),
                Value::str("abc"),
            ]
        );
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Value::int(2) < Value::float(2.5));
        assert!(Value::float(2.5) < Value::int(3));
        // Structural order tie-breaks by variant so Ord agrees with Eq…
        assert_eq!(Value::int(2).cmp(&Value::float(2.0)), Ordering::Less);
        assert_ne!(Value::int(2), Value::float(2.0));
        // …while numeric_cmp gives value semantics.
        assert_eq!(
            Value::int(2).numeric_cmp(&Value::float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::str("a").numeric_cmp(&Value::str("a")),
            Ordering::Equal
        );
    }

    #[test]
    fn nan_is_orderable_and_hashable() {
        let nan = Value::float(f64::NAN);
        assert!(Value::float(f64::INFINITY) < nan);
        let mut set = HashSet::new();
        set.insert(nan.clone());
        assert!(set.contains(&nan));
    }

    #[test]
    fn float_zero_signs_distinguished_consistently() {
        // total_cmp distinguishes -0.0 from 0.0; Eq and Hash must agree.
        let pos = Value::float(0.0);
        let neg = Value::float(-0.0);
        assert_ne!(pos, neg);
        assert!(neg < pos);
    }

    #[test]
    fn render_round_trip() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::int(42).render(), "42");
        assert_eq!(Value::str("x").render(), "x");
    }
}
