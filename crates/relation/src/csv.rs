//! Minimal CSV reading/writing for datasets and experiment output.
//!
//! Supports the common subset: comma separation, double-quote quoting with
//! `""` escapes, a header row. Typed parsing: numeric columns parse to
//! `Int`/`Float`, empty cells become `Null`.

use crate::relation::{Relation, RelationError};
use crate::schema::{Schema, ValueType};
use std::borrow::Cow;
use std::fmt;

/// Errors raised by [`parse_csv`].
#[derive(Debug)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A data row's field count didn't match the header.
    Relation(RelationError),
    /// Header arity and type-list arity differ.
    TypeArity {
        /// Number of header columns.
        header: usize,
        /// Number of supplied types.
        types: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::Relation(e) => write!(f, "{e}"),
            CsvError::TypeArity { header, types } => {
                write!(
                    f,
                    "header has {header} columns but {types} types were given"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<RelationError> for CsvError {
    fn from(e: RelationError) -> Self {
        CsvError::Relation(e)
    }
}

/// Split one CSV line into fields, borrowing from the input wherever
/// possible: a field only costs an allocation when it contains a quote
/// (and therefore needs unescaping). Unquoted fields — the overwhelmingly
/// common case — are zero-copy slices, which lets the relation's
/// dictionary interner probe them without ever building a `String` for a
/// repeated cell.
///
/// Semantics are identical to the historical per-field-`String` splitter:
/// `"` toggles quoting anywhere in a field, `""` inside quotes escapes a
/// literal quote, and commas inside quotes do not split.
fn split_line(line: &str) -> Vec<Cow<'_, str>> {
    let mut fields: Vec<Cow<'_, str>> = Vec::new();
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    // Current field: starts at `start`; `owned` buffers it once a quote
    // forces unescaping, with `seg` marking the verbatim run not yet
    // copied into the buffer.
    let mut start = 0usize;
    let mut seg = 0usize;
    let mut owned: Option<String> = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let buf = owned.get_or_insert_with(String::new);
                buf.push_str(&line[seg..i]);
                if in_quotes && bytes.get(i + 1) == Some(&b'"') {
                    buf.push('"');
                    i += 1;
                } else {
                    in_quotes = !in_quotes;
                }
                seg = i + 1;
            }
            b',' if !in_quotes => {
                match owned.take() {
                    Some(mut buf) => {
                        buf.push_str(&line[seg..i]);
                        fields.push(Cow::Owned(buf));
                    }
                    None => fields.push(Cow::Borrowed(&line[start..i])),
                }
                start = i + 1;
                seg = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    match owned {
        Some(mut buf) => {
            buf.push_str(&line[seg..]);
            fields.push(Cow::Owned(buf));
        }
        None => fields.push(Cow::Borrowed(&line[start..])),
    }
    fields
}

/// Parse CSV text into a relation. The first row is the header; `types`
/// assigns a [`ValueType`] to each column in order.
///
/// # Errors
/// Fails on a missing header, ragged rows, or a type list whose length
/// doesn't match the header.
pub fn parse_csv(text: &str, types: &[ValueType]) -> Result<Relation, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_line(header);
    if names.len() != types.len() {
        return Err(CsvError::TypeArity {
            header: names.len(),
            types: types.len(),
        });
    }
    let schema = Schema::from_attrs(
        names
            .into_iter()
            .map(Cow::into_owned)
            .zip(types.iter().copied()),
    );
    let mut rel = Relation::empty(schema)?;
    for line in lines {
        let fields = split_line(line);
        // Cells intern through each column's dictionary: repeated values
        // cost no allocation, and ragged rows surface as arity errors.
        rel.push_row_texts(&fields)?;
    }
    Ok(rel)
}

/// A non-fatal problem encountered by [`parse_csv_lossy`], pinned to its
/// 1-based data-row number (the header is row 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIssue {
    /// The row had a different field count than the header; it was
    /// dropped.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
        /// Fields the header promised.
        expected: usize,
        /// Fields the row carried.
        got: usize,
    },
    /// A byte-order mark preceded the header and was stripped.
    ByteOrderMark,
}

impl fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseIssue::RaggedRow { row, expected, got } => {
                write!(
                    f,
                    "row {row}: expected {expected} fields, got {got}; row dropped"
                )
            }
            ParseIssue::ByteOrderMark => write!(f, "leading byte-order mark stripped"),
        }
    }
}

/// The result of a lossy parse: the rows that survived plus a report of
/// everything that was repaired or dropped along the way.
#[derive(Debug)]
pub struct LossyCsv {
    /// The relation built from the well-formed rows.
    pub relation: Relation,
    /// Per-row problems, in input order. Empty iff the input was clean.
    pub issues: Vec<ParseIssue>,
}

/// Parse real-world CSV, degrading instead of failing: a UTF-8 byte-order
/// mark is stripped, CRLF line endings are accepted, and ragged data rows
/// are dropped and reported as [`ParseIssue`]s rather than aborting the
/// parse. Structural errors that leave nothing to salvage (no header, a
/// type list that doesn't match the header) still fail.
///
/// The strict [`parse_csv`] remains the default entry point; use this one
/// when partial ingestion with a defect report is preferable to rejection.
///
/// # Errors
/// Fails only on a missing header or a header/type-list arity mismatch.
pub fn parse_csv_lossy(text: &str, types: &[ValueType]) -> Result<LossyCsv, CsvError> {
    let mut issues = Vec::new();
    let text = match text.strip_prefix('\u{feff}') {
        Some(rest) => {
            issues.push(ParseIssue::ByteOrderMark);
            rest
        }
        None => text,
    };
    // `str::lines` already tolerates CRLF, but quoted fields may retain a
    // stray trailing `\r`; trim it per line before splitting.
    let mut lines = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_line(header);
    if names.len() != types.len() {
        return Err(CsvError::TypeArity {
            header: names.len(),
            types: types.len(),
        });
    }
    let schema = Schema::from_attrs(
        names
            .into_iter()
            .map(Cow::into_owned)
            .zip(types.iter().copied()),
    );
    let mut rel = Relation::empty(schema)?;
    for (i, line) in lines.enumerate() {
        let fields = split_line(line);
        if fields.len() != types.len() {
            issues.push(ParseIssue::RaggedRow {
                row: i + 1,
                expected: types.len(),
                got: fields.len(),
            });
            continue;
        }
        rel.push_row_texts(&fields)?;
    }
    Ok(LossyCsv {
        relation: rel,
        issues,
    })
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize a relation to CSV text (header + rows).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.schema().iter().map(|(_, a)| quote(&a.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..rel.n_rows() {
        let cells: Vec<String> = rel
            .schema()
            .ids()
            .map(|a| quote(&rel.value(row, a).render()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn round_trip() {
        let text = "name,city,price\nHyatt,\"Jackson, MS\",230\nRegis,Boston,319.5\n";
        let rel = parse_csv(
            text,
            &[ValueType::Text, ValueType::Text, ValueType::Numeric],
        )
        .unwrap();
        assert_eq!(rel.n_rows(), 2);
        assert_eq!(
            rel.value(0, rel.schema().id("city")),
            &Value::str("Jackson, MS")
        );
        assert_eq!(rel.value(0, rel.schema().id("price")), &Value::int(230));
        assert_eq!(rel.value(1, rel.schema().id("price")), &Value::float(319.5));
        let text2 = to_csv(&rel);
        let rel2 = parse_csv(
            &text2,
            &[ValueType::Text, ValueType::Text, ValueType::Numeric],
        )
        .unwrap();
        assert_eq!(rel, rel2);
    }

    #[test]
    fn empty_cells_become_null() {
        let rel = parse_csv("a,b\nx,\n,y\n", &[ValueType::Text, ValueType::Text]).unwrap();
        assert!(rel.value(0, crate::AttrId(1)).is_null());
        assert!(rel.value(1, crate::AttrId(0)).is_null());
    }

    #[test]
    fn escaped_quotes() {
        let rel = parse_csv("a\n\"say \"\"hi\"\"\"\n", &[ValueType::Text]).unwrap();
        assert_eq!(rel.value(0, crate::AttrId(0)), &Value::str("say \"hi\""));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = parse_csv("a,b\nx\n", &[ValueType::Text, ValueType::Text]).unwrap_err();
        assert!(matches!(err, CsvError::Relation(_)));
    }

    #[test]
    fn type_arity_checked() {
        let err = parse_csv("a,b\nx,y\n", &[ValueType::Text]).unwrap_err();
        assert!(matches!(err, CsvError::TypeArity { .. }));
    }

    #[test]
    fn lossy_strips_bom_and_crlf() {
        let text = "\u{feff}a,b\r\nx,y\r\n1,2\r\n";
        let out = parse_csv_lossy(text, &[ValueType::Text, ValueType::Text]).unwrap();
        assert_eq!(out.relation.n_rows(), 2);
        assert_eq!(out.relation.schema().name(crate::AttrId(0)), "a");
        assert_eq!(out.issues, vec![ParseIssue::ByteOrderMark]);
        assert_eq!(out.relation.value(0, crate::AttrId(0)), &Value::str("x"));
    }

    #[test]
    fn lossy_drops_and_reports_ragged_rows() {
        let text = "a,b\nx,y\nonly-one\np,q,extra\nz,w\n";
        let out = parse_csv_lossy(text, &[ValueType::Text, ValueType::Text]).unwrap();
        assert_eq!(out.relation.n_rows(), 2);
        assert_eq!(
            out.issues,
            vec![
                ParseIssue::RaggedRow {
                    row: 2,
                    expected: 2,
                    got: 1
                },
                ParseIssue::RaggedRow {
                    row: 3,
                    expected: 2,
                    got: 3
                },
            ]
        );
        // The strict parser rejects the same input outright.
        assert!(parse_csv(text, &[ValueType::Text, ValueType::Text]).is_err());
    }

    #[test]
    fn lossy_matches_strict_on_clean_input() {
        let text = "name,price\nHyatt,230\nRegis,319.5\n";
        let types = [ValueType::Text, ValueType::Numeric];
        let strict = parse_csv(text, &types).unwrap();
        let lossy = parse_csv_lossy(text, &types).unwrap();
        assert_eq!(strict, lossy.relation);
        assert!(lossy.issues.is_empty());
    }

    #[test]
    fn lossy_still_fails_without_salvageable_structure() {
        assert!(matches!(
            parse_csv_lossy("", &[ValueType::Text]),
            Err(CsvError::MissingHeader)
        ));
        assert!(matches!(
            parse_csv_lossy("a,b\nx,y\n", &[ValueType::Text]),
            Err(CsvError::TypeArity { .. })
        ));
    }
}
