//! Minimal CSV reading/writing for datasets and experiment output.
//!
//! Supports the common subset: comma separation, double-quote quoting with
//! `""` escapes, a header row. Typed parsing: numeric columns parse to
//! `Int`/`Float`, empty cells become `Null`.

use crate::relation::{Relation, RelationError};
use crate::schema::{Schema, ValueType};
use crate::value::Value;
use std::fmt;

/// Errors raised by [`parse_csv`].
#[derive(Debug)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A data row's field count didn't match the header.
    Relation(RelationError),
    /// Header arity and type-list arity differ.
    TypeArity {
        /// Number of header columns.
        header: usize,
        /// Number of supplied types.
        types: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::Relation(e) => write!(f, "{e}"),
            CsvError::TypeArity { header, types } => {
                write!(f, "header has {header} columns but {types} types were given")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<RelationError> for CsvError {
    fn from(e: RelationError) -> Self {
        CsvError::Relation(e)
    }
}

fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn parse_cell(text: &str, ty: ValueType) -> Value {
    if text.is_empty() {
        return Value::Null;
    }
    match ty {
        ValueType::Numeric => {
            if let Ok(i) = text.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = text.parse::<f64>() {
                Value::float(f)
            } else {
                Value::str(text)
            }
        }
        _ => Value::str(text),
    }
}

/// Parse CSV text into a relation. The first row is the header; `types`
/// assigns a [`ValueType`] to each column in order.
///
/// # Errors
/// Fails on a missing header, ragged rows, or a type list whose length
/// doesn't match the header.
pub fn parse_csv(text: &str, types: &[ValueType]) -> Result<Relation, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_line(header);
    if names.len() != types.len() {
        return Err(CsvError::TypeArity {
            header: names.len(),
            types: types.len(),
        });
    }
    let schema = Schema::from_attrs(names.into_iter().zip(types.iter().copied()));
    let mut rel = Relation::empty(schema)?;
    for line in lines {
        let fields = split_line(line);
        let row: Vec<Value> = fields
            .iter()
            .zip(types)
            .map(|(f, &ty)| parse_cell(f, ty))
            .collect();
        // If a row is ragged, push_row reports the arity mismatch.
        if fields.len() != types.len() {
            return Err(RelationError::ArityMismatch {
                expected: types.len(),
                got: fields.len(),
            }
            .into());
        }
        rel.push_row(row)?;
    }
    Ok(rel)
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize a relation to CSV text (header + rows).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel
        .schema()
        .iter()
        .map(|(_, a)| quote(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..rel.n_rows() {
        let cells: Vec<String> = rel
            .schema()
            .ids()
            .map(|a| quote(&rel.value(row, a).render()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "name,city,price\nHyatt,\"Jackson, MS\",230\nRegis,Boston,319.5\n";
        let rel = parse_csv(
            text,
            &[ValueType::Text, ValueType::Text, ValueType::Numeric],
        )
        .unwrap();
        assert_eq!(rel.n_rows(), 2);
        assert_eq!(
            rel.value(0, rel.schema().id("city")),
            &Value::str("Jackson, MS")
        );
        assert_eq!(rel.value(0, rel.schema().id("price")), &Value::int(230));
        assert_eq!(rel.value(1, rel.schema().id("price")), &Value::float(319.5));
        let text2 = to_csv(&rel);
        let rel2 = parse_csv(
            &text2,
            &[ValueType::Text, ValueType::Text, ValueType::Numeric],
        )
        .unwrap();
        assert_eq!(rel, rel2);
    }

    #[test]
    fn empty_cells_become_null() {
        let rel = parse_csv("a,b\nx,\n,y\n", &[ValueType::Text, ValueType::Text]).unwrap();
        assert!(rel.value(0, crate::AttrId(1)).is_null());
        assert!(rel.value(1, crate::AttrId(0)).is_null());
    }

    #[test]
    fn escaped_quotes() {
        let rel = parse_csv("a\n\"say \"\"hi\"\"\"\n", &[ValueType::Text]).unwrap();
        assert_eq!(rel.value(0, crate::AttrId(0)), &Value::str("say \"hi\""));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = parse_csv("a,b\nx\n", &[ValueType::Text, ValueType::Text]).unwrap_err();
        assert!(matches!(err, CsvError::Relation(_)));
    }

    #[test]
    fn type_arity_checked() {
        let err = parse_csv("a,b\nx,y\n", &[ValueType::Text]).unwrap_err();
        assert!(matches!(err, CsvError::TypeArity { .. }));
    }
}
