//! Compact attribute bitsets.

use crate::schema::{AttrId, Schema};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

/// A set of attributes, stored as a 64-bit bitset.
///
/// Lattice-based discovery algorithms (TANE, CTANE, FASTOD, FASTDC's cover
/// search) manipulate millions of attribute sets; a `u64` bitset keeps them
/// `Copy`, hashable and branch-cheap. Relations are limited to 64 attributes,
/// which is far beyond what exponential-lattice discovery can handle anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// Maximum number of attributes representable.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet(0)
    }

    /// A singleton set.
    ///
    /// # Panics
    /// Panics if the attribute index is ≥ 64.
    #[inline]
    pub fn single(attr: AttrId) -> Self {
        assert!(attr.0 < Self::MAX_ATTRS, "attribute index out of range");
        AttrSet(1 << attr.0)
    }

    /// The full set over the first `n` attributes.
    ///
    /// # Panics
    /// Panics if `n` > 64.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_ATTRS, "too many attributes");
        if n == Self::MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = AttrId>>(ids: I) -> Self {
        ids.into_iter().fold(Self::empty(), |s, a| s.insert(a))
    }

    /// Raw bit pattern (useful as a dense map key).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Number of attributes in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, attr: AttrId) -> bool {
        attr.0 < Self::MAX_ATTRS && self.0 & (1 << attr.0) != 0
    }

    /// Set with `attr` added.
    #[inline]
    pub fn insert(self, attr: AttrId) -> Self {
        assert!(attr.0 < Self::MAX_ATTRS, "attribute index out of range");
        AttrSet(self.0 | (1 << attr.0))
    }

    /// Set with `attr` removed.
    #[inline]
    pub fn remove(self, attr: AttrId) -> Self {
        AttrSet(self.0 & !(1 << attr.0))
    }

    /// Union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: Self) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊂ other`.
    #[inline]
    pub const fn is_proper_subset(self, other: Self) -> bool {
        self.0 != other.0 && self.is_subset(other)
    }

    /// True if the sets share no attribute.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterate over member ids in increasing order.
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// Collect member ids into a vector, in increasing order.
    pub fn to_vec(self) -> Vec<AttrId> {
        self.iter().collect()
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min(self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            Some(AttrId(self.0.trailing_zeros() as usize))
        }
    }

    /// Largest member, if any.
    #[inline]
    pub fn max(self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            Some(AttrId(63 - self.0.leading_zeros() as usize))
        }
    }

    /// Render as `{a, b, c}` using names from `schema`.
    pub fn display<'a>(&self, schema: &'a Schema) -> AttrSetDisplay<'a> {
        AttrSetDisplay { set: *self, schema }
    }
}

impl BitOr for AttrSet {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}
impl BitAnd for AttrSet {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}
impl BitXor for AttrSet {
    type Output = Self;
    fn bitxor(self, rhs: Self) -> Self {
        AttrSet(self.0 ^ rhs.0)
    }
}
impl Sub for AttrSet {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        Self::from_ids(iter)
    }
}

impl From<AttrId> for AttrSet {
    fn from(a: AttrId) -> Self {
        Self::single(a)
    }
}

impl IntoIterator for AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of an [`AttrSet`].
#[derive(Debug, Clone)]
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(AttrId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

/// Helper returned by [`AttrSet::display`].
pub struct AttrSetDisplay<'a> {
    set: AttrSet,
    schema: &'a Schema,
}

impl fmt::Display for AttrSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.name(id))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> AttrSet {
        v.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn basic_set_algebra() {
        let a = ids(&[0, 2, 5]);
        let b = ids(&[2, 3]);
        assert_eq!(a.union(b), ids(&[0, 2, 3, 5]));
        assert_eq!(a.intersect(b), ids(&[2]));
        assert_eq!(a.difference(b), ids(&[0, 5]));
        assert_eq!(a.len(), 3);
        assert!(ids(&[2]).is_subset(a));
        assert!(ids(&[2]).is_proper_subset(a));
        assert!(!a.is_proper_subset(a));
        assert!(a.is_subset(a));
    }

    #[test]
    fn iteration_in_order() {
        let s = ids(&[7, 1, 4]);
        assert_eq!(s.to_vec(), vec![AttrId(1), AttrId(4), AttrId(7)]);
        assert_eq!(s.iter().len(), 3);
        assert_eq!(s.min(), Some(AttrId(1)));
        assert_eq!(s.max(), Some(AttrId(7)));
        assert_eq!(AttrSet::empty().min(), None);
        assert_eq!(AttrSet::empty().max(), None);
        assert_eq!(AttrSet::full(64).max(), Some(AttrId(63)));
    }

    #[test]
    fn full_and_boundaries() {
        assert_eq!(AttrSet::full(0), AttrSet::empty());
        assert_eq!(AttrSet::full(3).to_vec().len(), 3);
        assert_eq!(AttrSet::full(64).len(), 64);
        assert!(AttrSet::full(64).contains(AttrId(63)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_attr_rejected() {
        AttrSet::single(AttrId(64));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = AttrSet::empty().insert(AttrId(3)).insert(AttrId(9));
        assert!(s.contains(AttrId(3)));
        assert!(!s.remove(AttrId(3)).contains(AttrId(3)));
        assert!(s.remove(AttrId(3)).contains(AttrId(9)));
    }

    #[test]
    fn operators_match_methods() {
        let a = ids(&[0, 1]);
        let b = ids(&[1, 2]);
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersect(b));
        assert_eq!(a - b, a.difference(b));
        assert_eq!(a ^ b, ids(&[0, 2]));
    }
}
