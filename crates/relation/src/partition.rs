//! Stripped partitions: the core data structure of partition-based
//! dependency discovery (TANE and its many descendants).
//!
//! A *partition* `π_X` groups rows by their values on attribute set `X`.
//! A *stripped* partition drops singleton classes: they can never witness a
//! violation, and dropping them keeps partitions small as `X` grows. The
//! *product* `π_X · π_Y = π_{X∪Y}` lets a level-wise algorithm compute the
//! partition for every lattice node from its parents in linear time, which
//! is the trick that makes TANE practical.

use crate::attrset::AttrSet;
use crate::relation::Relation;
use std::collections::HashMap;

/// A stripped partition of the rows of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Equivalence classes with at least two rows, each sorted ascending.
    classes: Vec<Vec<usize>>,
    n_rows: usize,
}

impl StrippedPartition {
    /// The identity partition (all rows in one class) over `n_rows` rows —
    /// the partition of the empty attribute set.
    pub fn identity(n_rows: usize) -> Self {
        let classes = if n_rows >= 2 {
            vec![(0..n_rows).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, n_rows }
    }

    /// Partition by one attribute's column.
    ///
    /// Buckets rows by dictionary code — structural equality of cells is
    /// code equality — so no `Value` is hashed or compared. The frozen
    /// row-major grouping stays reachable through
    /// [`crate::compat::force_row_major`] for the differential harness;
    /// both paths canonicalize through `from_groups`, so the results are
    /// identical by construction *and* by test.
    pub fn from_column(rel: &Relation, attr: crate::AttrId) -> Self {
        if crate::compat::row_major() {
            let mut groups: HashMap<&crate::Value, Vec<usize>> = HashMap::new();
            for (row, v) in rel.column(attr).iter().enumerate() {
                groups.entry(v).or_default().push(row);
            }
            return Self::from_groups(groups.into_values(), rel.n_rows());
        }
        let col = rel.col(attr);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); col.dict().len()];
        // Narrow dictionaries scan through the bit-packed code view: the
        // decoded codes are identical, only the bytes streamed differ.
        match col.packed_codes() {
            Some(packed) => {
                for (row, code) in packed.iter().enumerate() {
                    buckets[code as usize].push(row);
                }
            }
            None => {
                for (row, &code) in col.codes().iter().enumerate() {
                    buckets[code as usize].push(row);
                }
            }
        }
        Self::from_groups(buckets, rel.n_rows())
    }

    /// Partition by an attribute set (grouping directly, without products).
    pub fn from_attrs(rel: &Relation, attrs: AttrSet) -> Self {
        if attrs.is_empty() {
            return Self::identity(rel.n_rows());
        }
        if !crate::compat::row_major() {
            if let Some(p) = Self::from_codes_radix(rel, attrs) {
                return p;
            }
        }
        Self::from_groups(rel.group_by(attrs).into_values(), rel.n_rows())
    }

    /// Counting-sort grouping over the combined dictionary code.
    ///
    /// When the product of the attribute dictionaries fits a dense key
    /// space of `O(n_rows)` slots, each row's code tuple collapses (by
    /// Horner's rule) into one `u32` key and grouping becomes two linear
    /// counting passes over two flat arrays — no tuple hashing, no
    /// per-group allocation beyond the exact class sizes. Returns `None`
    /// when the combined domain is too wide (the hash fallback in
    /// [`StrippedPartition::from_attrs`] then takes over).
    ///
    /// Byte-identity: classes are created in first-covered-row order and
    /// filled ascending, which is exactly the canonical order
    /// `from_groups` produces (disjoint ascending classes sort by their
    /// first element).
    fn from_codes_radix(rel: &Relation, attrs: AttrSet) -> Option<StrippedPartition> {
        let n = rel.n_rows();
        if n >= u32::MAX as usize {
            return None;
        }
        let cols: Vec<&crate::Column> = attrs.iter().map(|a| rel.col(a)).collect();
        let cap = n.saturating_mul(4).saturating_add(4096);
        let mut domain = 1usize;
        for c in &cols {
            domain = domain.checked_mul(c.dict().len().max(1))?;
            if domain > cap || domain > u32::MAX as usize {
                return None;
            }
        }
        // Combined key per row, built column-at-a-time for sequential
        // access to each code vector.
        let mut keys = vec![0u32; n];
        for c in &cols {
            let d = c.dict().len().max(1) as u64;
            match c.packed_codes() {
                Some(packed) => {
                    for (k, code) in keys.iter_mut().zip(packed.iter()) {
                        *k = (u64::from(*k) * d + u64::from(code)) as u32;
                    }
                }
                None => {
                    for (k, &code) in keys.iter_mut().zip(c.codes()) {
                        *k = (u64::from(*k) * d + u64::from(code)) as u32;
                    }
                }
            }
        }
        let mut count = vec![0u32; domain];
        for &k in &keys {
            count[k as usize] += 1;
        }
        const NO_CLASS: u32 = u32::MAX;
        let mut class_of = vec![NO_CLASS; domain];
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for (row, &k) in keys.iter().enumerate() {
            let c = count[k as usize];
            if c < 2 {
                continue;
            }
            let slot = class_of[k as usize];
            let slot = if slot == NO_CLASS {
                let s = classes.len() as u32;
                class_of[k as usize] = s;
                classes.push(Vec::with_capacity(c as usize));
                s
            } else {
                slot
            };
            classes[slot as usize].push(row);
        }
        Some(StrippedPartition { classes, n_rows: n })
    }

    /// Partition from per-row labels: rows with equal labels share a class.
    pub fn from_labels<T: std::hash::Hash + Eq>(labels: &[T]) -> Self {
        let mut groups: HashMap<&T, Vec<usize>> = HashMap::new();
        for (row, l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(row);
        }
        Self::from_groups(groups.into_values(), labels.len())
    }

    fn from_groups<I: IntoIterator<Item = Vec<usize>>>(groups: I, n_rows: usize) -> Self {
        let mut classes: Vec<Vec<usize>> = groups
            .into_iter()
            .filter(|g| g.len() >= 2)
            .map(|mut g| {
                g.sort_unstable();
                g
            })
            .collect();
        classes.sort_unstable();
        StrippedPartition { classes, n_rows }
    }

    /// Number of rows in the underlying relation.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The non-singleton classes.
    #[inline]
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// `‖π‖`: number of rows covered by non-singleton classes.
    pub fn covered_rows(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Total number of equivalence classes *including* singletons —
    /// i.e. the number of distinct values of the underlying attribute set.
    pub fn num_classes(&self) -> usize {
        self.n_rows - self.covered_rows() + self.classes.len()
    }

    /// Rough in-memory footprint in bytes, used by the execution engine's
    /// partition-memory budget. Counts the row indices plus per-class and
    /// per-partition overhead; an estimate, not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        const WORD: u64 = std::mem::size_of::<usize>() as u64;
        const VEC_OVERHEAD: u64 = 3 * WORD;
        VEC_OVERHEAD
            + self
                .classes
                .iter()
                .map(|c| VEC_OVERHEAD + c.len() as u64 * WORD)
                .sum::<u64>()
    }

    /// TANE's error `e(π) = (‖π‖ − |π|)`: the minimum number of rows to
    /// remove so every remaining class is a singleton. Divided by `n`,
    /// this is the key-ness error used for key pruning.
    pub fn error(&self) -> usize {
        self.covered_rows() - self.classes.len()
    }

    /// Partition product: `π_self · π_other = π_{X ∪ Y}`.
    ///
    /// Linear in `‖π_self‖` using the probe-table scheme from the TANE
    /// paper. Allocates fresh scratch buffers; the hot paths of the
    /// lattice miners should prefer [`StrippedPartition::product_with`],
    /// which reuses one [`ProductScratch`] across calls.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        self.product_with(other, &mut ProductScratch::new())
    }

    /// [`StrippedPartition::product`] with caller-owned scratch buffers.
    ///
    /// The product sits in the innermost loop of every lattice miner —
    /// one per generated lattice node — and the naive formulation
    /// reallocates an `n_rows`-sized probe table plus hash buckets per
    /// call. This variant keeps both in `scratch`: the probe table is
    /// grown once and selectively reset (only rows actually labelled are
    /// touched), and bucket vectors are recycled. Results are identical
    /// to [`StrippedPartition::product`].
    pub fn product_with(
        &self,
        other: &StrippedPartition,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        assert_eq!(
            self.n_rows, other.n_rows,
            "partition product over different relations"
        );
        // probe[row] = label of the other-partition class containing row,
        // or NO_LABEL. Grow once; stale entries from earlier calls were
        // reset via the touched list before the previous call returned.
        const NO_LABEL: u32 = u32::MAX;
        if scratch.probe.len() < self.n_rows {
            scratch.probe.resize(self.n_rows, NO_LABEL);
        }
        scratch.touched.clear();
        for (i, cls) in other.classes.iter().enumerate() {
            for &row in cls {
                scratch.probe[row] = i as u32;
                scratch.touched.push(row);
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        for cls in &self.classes {
            for &row in cls {
                let label = scratch.probe[row];
                if label == NO_LABEL {
                    continue;
                }
                while scratch.buckets.len() <= label as usize {
                    scratch.buckets.push(Vec::new());
                }
                let bucket = &mut scratch.buckets[label as usize];
                if bucket.is_empty() {
                    scratch.used_labels.push(label);
                }
                bucket.push(row);
            }
            for &label in &scratch.used_labels {
                let bucket = &mut scratch.buckets[label as usize];
                if bucket.len() >= 2 {
                    out.push(std::mem::take(bucket));
                } else {
                    bucket.clear();
                }
            }
            scratch.used_labels.clear();
        }
        // Reset only the probe entries this call labelled, so the next
        // call starts clean without an O(n_rows) wipe.
        for &row in &scratch.touched {
            scratch.probe[row] = NO_LABEL;
        }
        Self::from_groups(out, self.n_rows)
    }

    /// Radix partition product against one attribute's column:
    /// `π_self · π_{a} = π_{X ∪ {a}}` computed directly from `a`'s code
    /// vector, without materializing `π_a` or probe-labelling its rows.
    ///
    /// Two counting strategies, picked by domain width. When
    /// `num_classes · |dict|` fits the covered-row budget, rows are
    /// labelled by left class once and then streamed *sequentially*
    /// (count pass + exact-capacity fill pass over the combined
    /// `label·d + code` key — no random access in the hot loops).
    /// Otherwise each left class is split through a dense `|dict|`-slot
    /// scratch table (selectively reset via a touched list). Returns
    /// `None` when the dictionary alone is wide relative to the covered
    /// rows (the conservative hash fallback: a huge slot table for a tiny
    /// partition would trade O(‖π‖) work for O(|dict|) memory traffic).
    ///
    /// Byte-identity: both strategies create classes in ascending
    /// first-covered-row order (the sequential variant by construction —
    /// already the canonical lexicographic order of `from_groups`; the
    /// per-class variant after its final sort by first row).
    pub fn product_with_column(
        &self,
        col: &crate::Column,
        scratch: &mut ProductScratch,
    ) -> Option<StrippedPartition> {
        assert_eq!(
            self.n_rows,
            col.len(),
            "partition product over different relations"
        );
        let d = col.dict().len();
        if d > self.covered_rows().saturating_mul(4).saturating_add(1024)
            || self.n_rows >= u32::MAX as usize
        {
            return None;
        }
        let seq_cap = self.covered_rows().saturating_mul(4).saturating_add(4096);
        if let Some(domain) = self.classes.len().checked_mul(d) {
            if domain <= seq_cap && domain < u32::MAX as usize && self.n_rows < (1 << 31) {
                return Some(self.product_sequential(col, domain, scratch));
            }
        }
        const NO_SLOT: u32 = u32::MAX;
        if scratch.code_slot.len() < d {
            scratch.code_slot.resize(d, NO_SLOT);
        }
        let codes = col.codes();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for cls in &self.classes {
            // Counting pass: assign slots in first-appearance order, count
            // rows per slot — no allocation, no pushes.
            let mut n_used = 0u32;
            for &row in cls {
                let code = codes[row] as usize;
                let slot = scratch.code_slot[code];
                if slot == NO_SLOT {
                    scratch.code_slot[code] = n_used;
                    scratch.touched_codes.push(code);
                    if scratch.slot_counts.len() == n_used as usize {
                        scratch.slot_counts.push(1);
                    } else {
                        scratch.slot_counts[n_used as usize] = 1;
                    }
                    n_used += 1;
                } else {
                    scratch.slot_counts[slot as usize] += 1;
                }
            }
            // Slots with ≥2 rows become exact-capacity output classes
            // (stripped: singletons are never allocated at all); the count
            // entry is reused as the slot's output index.
            for s in 0..n_used as usize {
                let cnt = scratch.slot_counts[s];
                if cnt >= 2 {
                    scratch.slot_counts[s] = out.len() as u32;
                    out.push(Vec::with_capacity(cnt as usize));
                } else {
                    scratch.slot_counts[s] = NO_SLOT;
                }
            }
            // Fill pass, in row order within the class.
            for &row in cls {
                let slot = scratch.code_slot[codes[row] as usize];
                let oi = scratch.slot_counts[slot as usize];
                if oi != NO_SLOT {
                    out[oi as usize].push(row);
                }
            }
            for &code in &scratch.touched_codes {
                scratch.code_slot[code] = NO_SLOT;
            }
            scratch.touched_codes.clear();
        }
        out.sort_unstable_by_key(|c| c[0]);
        Some(StrippedPartition {
            classes: out,
            n_rows: self.n_rows,
        })
    }

    /// Sequential counting-sort product: label rows by left class, then
    /// stream the row range twice — a count pass and an exact-capacity
    /// fill pass over the dense `label·d + code` key. Classes are created
    /// at their first covered row, so the output is born in canonical
    /// order and needs no sort.
    ///
    /// The count pass caches each covered row's combined key back into the
    /// probe table, so the fill pass streams a single array. The slot
    /// table does double duty: a slot holds the key's row count until the
    /// fill pass first touches it, then (tagged with the high bit) the
    /// output class index. Requires `n_rows < 2^31` so counts and tagged
    /// indexes cannot collide — guaranteed by the caller's gate.
    fn product_sequential(
        &self,
        col: &crate::Column,
        domain: usize,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        const NO_LABEL: u32 = u32::MAX;
        const PLACED: u32 = 1 << 31;
        if scratch.probe.len() < self.n_rows {
            scratch.probe.resize(self.n_rows, NO_LABEL);
        }
        for (i, cls) in self.classes.iter().enumerate() {
            for &row in cls {
                scratch.probe[row] = i as u32;
            }
        }
        let d = col.dict().len() as u64;
        let codes = col.codes();
        let mut slots = vec![0u32; domain];
        for (row, &code) in codes.iter().enumerate() {
            let label = scratch.probe[row];
            if label != NO_LABEL {
                // `domain < u32::MAX`, so a cached key never aliases NO_LABEL.
                let key = (u64::from(label) * d + u64::from(code)) as u32;
                slots[key as usize] += 1;
                scratch.probe[row] = key;
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        for row in 0..self.n_rows {
            let key = scratch.probe[row];
            if key == NO_LABEL {
                continue;
            }
            let slot = slots[key as usize];
            if slot < 2 {
                continue; // singleton (or null-stripped) key: never allocated
            }
            let cls = if slot & PLACED == 0 {
                let idx = out.len() as u32;
                out.push(Vec::with_capacity(slot as usize));
                slots[key as usize] = idx | PLACED;
                idx
            } else {
                slot & !PLACED
            };
            out[cls as usize].push(row);
        }
        for cls in &self.classes {
            for &row in cls {
                scratch.probe[row] = NO_LABEL;
            }
        }
        StrippedPartition {
            classes: out,
            n_rows: self.n_rows,
        }
    }

    /// Does the FD `X → Y` hold, where `self = π_X` and `rhs = π_{X∪Y}`?
    ///
    /// Holds iff both partitions have the same number of classes
    /// (equivalently, the same error).
    pub fn refines(&self, xy: &StrippedPartition) -> bool {
        self.error() == xy.error()
    }

    /// `g3` error of the FD `X → rhs` where `self = π_X` and `rhs` is the
    /// partition of the right-hand side: the fraction of rows that must be
    /// removed so the FD holds exactly (Kivinen–Mannila's `g3`, as computed
    /// in TANE's approximate-dependency mode).
    pub fn g3_error(&self, rhs: &StrippedPartition) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.g3_violations(rhs) as f64 / self.n_rows as f64
    }

    /// Minimum number of rows to delete so that the FD `X → rhs` holds.
    pub fn g3_violations(&self, rhs: &StrippedPartition) -> usize {
        assert_eq!(self.n_rows, rhs.n_rows);
        // rhs_label[row] = Some(class) or None (singleton in rhs).
        let mut rhs_label: Vec<Option<u32>> = vec![None; self.n_rows];
        for (i, cls) in rhs.classes.iter().enumerate() {
            for &row in cls {
                rhs_label[row] = Some(i as u32);
            }
        }
        let mut violations = 0usize;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for cls in &self.classes {
            counts.clear();
            let mut singletons = 0usize;
            for &row in cls {
                match rhs_label[row] {
                    Some(l) => *counts.entry(l).or_insert(0) += 1,
                    None => singletons += 1,
                }
            }
            let max_keep = counts
                .values()
                .copied()
                .max()
                .unwrap_or(0)
                .max(usize::from(singletons > 0));
            violations += cls.len() - max_keep;
        }
        violations
    }
}

/// Reusable scratch buffers for [`StrippedPartition::product_with`].
///
/// One scratch per thread of execution: the parallel lattice executors
/// give each pool worker its own (see `PartitionCache`), and serial
/// callers keep one per run. Memory grows to the largest product computed
/// and is then recycled for every subsequent call.
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// Row → other-partition class label (`u32::MAX` = unlabelled).
    probe: Vec<u32>,
    /// Rows labelled by the current call, for selective reset.
    touched: Vec<usize>,
    /// Recycled per-label row buckets.
    buckets: Vec<Vec<usize>>,
    /// Labels with a non-empty bucket for the class being split.
    used_labels: Vec<u32>,
    /// Dictionary code → bucket slot for the radix product
    /// ([`StrippedPartition::product_with_column`]); `u32::MAX` = unused.
    code_slot: Vec<u32>,
    /// Codes assigned a slot for the class being split, for selective reset.
    touched_codes: Vec<usize>,
    /// Per-slot row count, then output-class index, for the counting pass.
    slot_counts: Vec<u32>,
}

impl ProductScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        ProductScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::ValueType;

    fn rel() -> Relation {
        // a  b  c
        // x  p  1
        // x  p  1
        // x  q  2
        // y  q  2
        // y  q  3
        RelationBuilder::new()
            .attr("a", ValueType::Categorical)
            .attr("b", ValueType::Categorical)
            .attr("c", ValueType::Numeric)
            .row(vec!["x".into(), "p".into(), 1.into()])
            .row(vec!["x".into(), "p".into(), 1.into()])
            .row(vec!["x".into(), "q".into(), 2.into()])
            .row(vec!["y".into(), "q".into(), 2.into()])
            .row(vec!["y".into(), "q".into(), 3.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn from_column_strips_singletons() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        assert_eq!(pa.classes(), &[vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(pa.num_classes(), 2);
        let pc = StrippedPartition::from_column(&r, r.schema().id("c"));
        // c groups: {0,1}, {2,3}, {4} — the singleton {4} is stripped.
        assert_eq!(pc.classes(), &[vec![0, 1], vec![2, 3]]);
        assert_eq!(pc.num_classes(), 3);
    }

    #[test]
    fn product_equals_direct_grouping() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let prod = pa.product(&pb);
        let direct = StrippedPartition::from_attrs(&r, AttrSet::from_ids([s.id("a"), s.id("b")]));
        assert_eq!(prod, direct);
        // Commutativity.
        assert_eq!(pb.product(&pa), prod);
    }

    #[test]
    fn identity_is_product_unit() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        let id = StrippedPartition::identity(r.n_rows());
        assert_eq!(id.product(&pa), pa);
        assert_eq!(pa.product(&id), pa);
    }

    #[test]
    fn refines_detects_fds() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let pab = pa.product(&pb);
        // a → b does not hold (x maps to p and q).
        assert!(!pa.refines(&pab));
        // b → a does not hold (q maps to x and y).
        assert!(!pb.refines(&pab));
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        let pcb = pc.product(&pb);
        // c → b holds: 1→p, 2→q, 3→q.
        assert!(pc.refines(&pcb));
    }

    #[test]
    fn g3_counts_minimum_removals() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        // a → b: class {0,1,2} has b-values p,p,q → remove 1.
        //         class {3,4} has q,q → remove 0.
        assert_eq!(pa.g3_violations(&pb), 1);
        assert!((pa.g3_error(&pb) - 0.2).abs() < 1e-12);
        // Exact FD has zero error.
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        assert_eq!(pc.g3_violations(&pb), 0);
    }

    #[test]
    fn g3_with_rhs_singletons() {
        // X has one class of 3 rows; RHS values are all distinct, so the
        // best we can keep is one row: 2 violations.
        let labels_x = ["g", "g", "g"];
        let labels_y = [1, 2, 3];
        let px = StrippedPartition::from_labels(&labels_x);
        let py = StrippedPartition::from_labels(&labels_y);
        assert_eq!(px.g3_violations(&py), 2);
    }

    #[test]
    fn error_measure() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        // ‖π‖ = 5, |π| = 2 → error 3: removing 3 rows makes `a` a key.
        assert_eq!(pa.error(), 3);
        let super_key = StrippedPartition::from_attrs(&r, r.all_attrs());
        // {a,b,c} is not a key: rows 0 and 1 are full duplicates.
        assert_eq!(super_key.error(), 1);
    }

    #[test]
    fn product_scratch_reuse_matches_fresh_products() {
        // One scratch across many products of different shapes and row
        // counts must give bit-identical results to fresh computations.
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        let id5 = StrippedPartition::identity(r.n_rows());
        let tiny = StrippedPartition::from_labels(&["x", "x", "y"]);
        let tiny2 = StrippedPartition::from_labels(&[1, 2, 2]);
        let mut scratch = ProductScratch::new();
        for (x, y) in [
            (&pa, &pb),
            (&pb, &pa),
            (&pa, &pc),
            (&pc, &pb),
            (&id5, &pa),
            (&tiny, &tiny2),
            (&tiny2, &tiny),
            (&pa, &pa),
        ] {
            assert_eq!(x.product_with(y, &mut scratch), x.product(y));
        }
    }

    #[test]
    fn product_with_column_matches_probe_product() {
        let r = rel();
        let s = r.schema();
        let mut scratch = ProductScratch::new();
        for (x, a) in [
            ("a", "b"),
            ("b", "a"),
            ("a", "c"),
            ("c", "b"),
            ("b", "c"),
            ("a", "a"),
        ] {
            let px = StrippedPartition::from_column(&r, s.id(x));
            let pa = StrippedPartition::from_column(&r, s.id(a));
            let radix = px
                .product_with_column(r.col(s.id(a)), &mut scratch)
                .expect("tiny dictionaries always take the radix path");
            assert_eq!(radix, px.product(&pa), "radix product mismatch {x}·{a}");
        }
        // The identity partition splits into π_a directly.
        let id = StrippedPartition::identity(r.n_rows());
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        assert_eq!(
            id.product_with_column(r.col(s.id("a")), &mut scratch),
            Some(pa)
        );
    }

    #[test]
    fn radix_from_attrs_matches_hash_grouping() {
        let r = rel();
        let s = r.schema();
        for set in [
            AttrSet::from_ids([s.id("a"), s.id("b")]),
            AttrSet::from_ids([s.id("a"), s.id("c")]),
            AttrSet::from_ids([s.id("a"), s.id("b"), s.id("c")]),
        ] {
            let radix = StrippedPartition::from_codes_radix(&r, set).expect("domain fits");
            let hash = StrippedPartition::from_groups(r.group_by(set).into_values(), r.n_rows());
            assert_eq!(radix, hash, "from_attrs strategies disagree on {set:?}");
        }
    }

    #[test]
    fn empty_relation_edge_cases() {
        let p = StrippedPartition::identity(0);
        assert_eq!(p.num_classes(), 0);
        assert_eq!(p.error(), 0);
        assert_eq!(p.g3_error(&StrippedPartition::identity(0)), 0.0);
    }
}
