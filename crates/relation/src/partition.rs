//! Stripped partitions: the core data structure of partition-based
//! dependency discovery (TANE and its many descendants).
//!
//! A *partition* `π_X` groups rows by their values on attribute set `X`.
//! A *stripped* partition drops singleton classes: they can never witness a
//! violation, and dropping them keeps partitions small as `X` grows. The
//! *product* `π_X · π_Y = π_{X∪Y}` lets a level-wise algorithm compute the
//! partition for every lattice node from its parents in linear time, which
//! is the trick that makes TANE practical.

use crate::attrset::AttrSet;
use crate::relation::Relation;
use std::collections::HashMap;

/// A stripped partition of the rows of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Equivalence classes with at least two rows, each sorted ascending.
    classes: Vec<Vec<usize>>,
    n_rows: usize,
}

impl StrippedPartition {
    /// The identity partition (all rows in one class) over `n_rows` rows —
    /// the partition of the empty attribute set.
    pub fn identity(n_rows: usize) -> Self {
        let classes = if n_rows >= 2 {
            vec![(0..n_rows).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, n_rows }
    }

    /// Partition by one attribute's column.
    ///
    /// Buckets rows by dictionary code — structural equality of cells is
    /// code equality — so no `Value` is hashed or compared. The frozen
    /// row-major grouping stays reachable through
    /// [`crate::compat::force_row_major`] for the differential harness;
    /// both paths canonicalize through `from_groups`, so the results are
    /// identical by construction *and* by test.
    pub fn from_column(rel: &Relation, attr: crate::AttrId) -> Self {
        if crate::compat::row_major() {
            let mut groups: HashMap<&crate::Value, Vec<usize>> = HashMap::new();
            for (row, v) in rel.column(attr).iter().enumerate() {
                groups.entry(v).or_default().push(row);
            }
            return Self::from_groups(groups.into_values(), rel.n_rows());
        }
        let col = rel.col(attr);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); col.dict().len()];
        for (row, &code) in col.codes().iter().enumerate() {
            buckets[code as usize].push(row);
        }
        Self::from_groups(buckets, rel.n_rows())
    }

    /// Partition by an attribute set (grouping directly, without products).
    pub fn from_attrs(rel: &Relation, attrs: AttrSet) -> Self {
        if attrs.is_empty() {
            return Self::identity(rel.n_rows());
        }
        Self::from_groups(rel.group_by(attrs).into_values(), rel.n_rows())
    }

    /// Partition from per-row labels: rows with equal labels share a class.
    pub fn from_labels<T: std::hash::Hash + Eq>(labels: &[T]) -> Self {
        let mut groups: HashMap<&T, Vec<usize>> = HashMap::new();
        for (row, l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(row);
        }
        Self::from_groups(groups.into_values(), labels.len())
    }

    fn from_groups<I: IntoIterator<Item = Vec<usize>>>(groups: I, n_rows: usize) -> Self {
        let mut classes: Vec<Vec<usize>> = groups
            .into_iter()
            .filter(|g| g.len() >= 2)
            .map(|mut g| {
                g.sort_unstable();
                g
            })
            .collect();
        classes.sort_unstable();
        StrippedPartition { classes, n_rows }
    }

    /// Number of rows in the underlying relation.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The non-singleton classes.
    #[inline]
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// `‖π‖`: number of rows covered by non-singleton classes.
    pub fn covered_rows(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Total number of equivalence classes *including* singletons —
    /// i.e. the number of distinct values of the underlying attribute set.
    pub fn num_classes(&self) -> usize {
        self.n_rows - self.covered_rows() + self.classes.len()
    }

    /// Rough in-memory footprint in bytes, used by the execution engine's
    /// partition-memory budget. Counts the row indices plus per-class and
    /// per-partition overhead; an estimate, not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        const WORD: u64 = std::mem::size_of::<usize>() as u64;
        const VEC_OVERHEAD: u64 = 3 * WORD;
        VEC_OVERHEAD
            + self
                .classes
                .iter()
                .map(|c| VEC_OVERHEAD + c.len() as u64 * WORD)
                .sum::<u64>()
    }

    /// TANE's error `e(π) = (‖π‖ − |π|)`: the minimum number of rows to
    /// remove so every remaining class is a singleton. Divided by `n`,
    /// this is the key-ness error used for key pruning.
    pub fn error(&self) -> usize {
        self.covered_rows() - self.classes.len()
    }

    /// Partition product: `π_self · π_other = π_{X ∪ Y}`.
    ///
    /// Linear in `‖π_self‖` using the probe-table scheme from the TANE
    /// paper. Allocates fresh scratch buffers; the hot paths of the
    /// lattice miners should prefer [`StrippedPartition::product_with`],
    /// which reuses one [`ProductScratch`] across calls.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        self.product_with(other, &mut ProductScratch::new())
    }

    /// [`StrippedPartition::product`] with caller-owned scratch buffers.
    ///
    /// The product sits in the innermost loop of every lattice miner —
    /// one per generated lattice node — and the naive formulation
    /// reallocates an `n_rows`-sized probe table plus hash buckets per
    /// call. This variant keeps both in `scratch`: the probe table is
    /// grown once and selectively reset (only rows actually labelled are
    /// touched), and bucket vectors are recycled. Results are identical
    /// to [`StrippedPartition::product`].
    pub fn product_with(
        &self,
        other: &StrippedPartition,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        assert_eq!(
            self.n_rows, other.n_rows,
            "partition product over different relations"
        );
        // probe[row] = label of the other-partition class containing row,
        // or NO_LABEL. Grow once; stale entries from earlier calls were
        // reset via the touched list before the previous call returned.
        const NO_LABEL: u32 = u32::MAX;
        if scratch.probe.len() < self.n_rows {
            scratch.probe.resize(self.n_rows, NO_LABEL);
        }
        scratch.touched.clear();
        for (i, cls) in other.classes.iter().enumerate() {
            for &row in cls {
                scratch.probe[row] = i as u32;
                scratch.touched.push(row);
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        for cls in &self.classes {
            for &row in cls {
                let label = scratch.probe[row];
                if label == NO_LABEL {
                    continue;
                }
                while scratch.buckets.len() <= label as usize {
                    scratch.buckets.push(Vec::new());
                }
                let bucket = &mut scratch.buckets[label as usize];
                if bucket.is_empty() {
                    scratch.used_labels.push(label);
                }
                bucket.push(row);
            }
            for &label in &scratch.used_labels {
                let bucket = &mut scratch.buckets[label as usize];
                if bucket.len() >= 2 {
                    out.push(std::mem::take(bucket));
                } else {
                    bucket.clear();
                }
            }
            scratch.used_labels.clear();
        }
        // Reset only the probe entries this call labelled, so the next
        // call starts clean without an O(n_rows) wipe.
        for &row in &scratch.touched {
            scratch.probe[row] = NO_LABEL;
        }
        Self::from_groups(out, self.n_rows)
    }

    /// Does the FD `X → Y` hold, where `self = π_X` and `rhs = π_{X∪Y}`?
    ///
    /// Holds iff both partitions have the same number of classes
    /// (equivalently, the same error).
    pub fn refines(&self, xy: &StrippedPartition) -> bool {
        self.error() == xy.error()
    }

    /// `g3` error of the FD `X → rhs` where `self = π_X` and `rhs` is the
    /// partition of the right-hand side: the fraction of rows that must be
    /// removed so the FD holds exactly (Kivinen–Mannila's `g3`, as computed
    /// in TANE's approximate-dependency mode).
    pub fn g3_error(&self, rhs: &StrippedPartition) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.g3_violations(rhs) as f64 / self.n_rows as f64
    }

    /// Minimum number of rows to delete so that the FD `X → rhs` holds.
    pub fn g3_violations(&self, rhs: &StrippedPartition) -> usize {
        assert_eq!(self.n_rows, rhs.n_rows);
        // rhs_label[row] = Some(class) or None (singleton in rhs).
        let mut rhs_label: Vec<Option<u32>> = vec![None; self.n_rows];
        for (i, cls) in rhs.classes.iter().enumerate() {
            for &row in cls {
                rhs_label[row] = Some(i as u32);
            }
        }
        let mut violations = 0usize;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for cls in &self.classes {
            counts.clear();
            let mut singletons = 0usize;
            for &row in cls {
                match rhs_label[row] {
                    Some(l) => *counts.entry(l).or_insert(0) += 1,
                    None => singletons += 1,
                }
            }
            let max_keep = counts
                .values()
                .copied()
                .max()
                .unwrap_or(0)
                .max(usize::from(singletons > 0));
            violations += cls.len() - max_keep;
        }
        violations
    }
}

/// Reusable scratch buffers for [`StrippedPartition::product_with`].
///
/// One scratch per thread of execution: the parallel lattice executors
/// give each pool worker its own (see `PartitionCache`), and serial
/// callers keep one per run. Memory grows to the largest product computed
/// and is then recycled for every subsequent call.
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// Row → other-partition class label (`u32::MAX` = unlabelled).
    probe: Vec<u32>,
    /// Rows labelled by the current call, for selective reset.
    touched: Vec<usize>,
    /// Recycled per-label row buckets.
    buckets: Vec<Vec<usize>>,
    /// Labels with a non-empty bucket for the class being split.
    used_labels: Vec<u32>,
}

impl ProductScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        ProductScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::ValueType;

    fn rel() -> Relation {
        // a  b  c
        // x  p  1
        // x  p  1
        // x  q  2
        // y  q  2
        // y  q  3
        RelationBuilder::new()
            .attr("a", ValueType::Categorical)
            .attr("b", ValueType::Categorical)
            .attr("c", ValueType::Numeric)
            .row(vec!["x".into(), "p".into(), 1.into()])
            .row(vec!["x".into(), "p".into(), 1.into()])
            .row(vec!["x".into(), "q".into(), 2.into()])
            .row(vec!["y".into(), "q".into(), 2.into()])
            .row(vec!["y".into(), "q".into(), 3.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn from_column_strips_singletons() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        assert_eq!(pa.classes(), &[vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(pa.num_classes(), 2);
        let pc = StrippedPartition::from_column(&r, r.schema().id("c"));
        // c groups: {0,1}, {2,3}, {4} — the singleton {4} is stripped.
        assert_eq!(pc.classes(), &[vec![0, 1], vec![2, 3]]);
        assert_eq!(pc.num_classes(), 3);
    }

    #[test]
    fn product_equals_direct_grouping() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let prod = pa.product(&pb);
        let direct = StrippedPartition::from_attrs(&r, AttrSet::from_ids([s.id("a"), s.id("b")]));
        assert_eq!(prod, direct);
        // Commutativity.
        assert_eq!(pb.product(&pa), prod);
    }

    #[test]
    fn identity_is_product_unit() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        let id = StrippedPartition::identity(r.n_rows());
        assert_eq!(id.product(&pa), pa);
        assert_eq!(pa.product(&id), pa);
    }

    #[test]
    fn refines_detects_fds() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let pab = pa.product(&pb);
        // a → b does not hold (x maps to p and q).
        assert!(!pa.refines(&pab));
        // b → a does not hold (q maps to x and y).
        assert!(!pb.refines(&pab));
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        let pcb = pc.product(&pb);
        // c → b holds: 1→p, 2→q, 3→q.
        assert!(pc.refines(&pcb));
    }

    #[test]
    fn g3_counts_minimum_removals() {
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        // a → b: class {0,1,2} has b-values p,p,q → remove 1.
        //         class {3,4} has q,q → remove 0.
        assert_eq!(pa.g3_violations(&pb), 1);
        assert!((pa.g3_error(&pb) - 0.2).abs() < 1e-12);
        // Exact FD has zero error.
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        assert_eq!(pc.g3_violations(&pb), 0);
    }

    #[test]
    fn g3_with_rhs_singletons() {
        // X has one class of 3 rows; RHS values are all distinct, so the
        // best we can keep is one row: 2 violations.
        let labels_x = ["g", "g", "g"];
        let labels_y = [1, 2, 3];
        let px = StrippedPartition::from_labels(&labels_x);
        let py = StrippedPartition::from_labels(&labels_y);
        assert_eq!(px.g3_violations(&py), 2);
    }

    #[test]
    fn error_measure() {
        let r = rel();
        let pa = StrippedPartition::from_column(&r, r.schema().id("a"));
        // ‖π‖ = 5, |π| = 2 → error 3: removing 3 rows makes `a` a key.
        assert_eq!(pa.error(), 3);
        let super_key = StrippedPartition::from_attrs(&r, r.all_attrs());
        // {a,b,c} is not a key: rows 0 and 1 are full duplicates.
        assert_eq!(super_key.error(), 1);
    }

    #[test]
    fn product_scratch_reuse_matches_fresh_products() {
        // One scratch across many products of different shapes and row
        // counts must give bit-identical results to fresh computations.
        let r = rel();
        let s = r.schema();
        let pa = StrippedPartition::from_column(&r, s.id("a"));
        let pb = StrippedPartition::from_column(&r, s.id("b"));
        let pc = StrippedPartition::from_column(&r, s.id("c"));
        let id5 = StrippedPartition::identity(r.n_rows());
        let tiny = StrippedPartition::from_labels(&["x", "x", "y"]);
        let tiny2 = StrippedPartition::from_labels(&[1, 2, 2]);
        let mut scratch = ProductScratch::new();
        for (x, y) in [
            (&pa, &pb),
            (&pb, &pa),
            (&pa, &pc),
            (&pc, &pb),
            (&id5, &pa),
            (&tiny, &tiny2),
            (&tiny2, &tiny),
            (&pa, &pa),
        ] {
            assert_eq!(x.product_with(y, &mut scratch), x.product(y));
        }
    }

    #[test]
    fn empty_relation_edge_cases() {
        let p = StrippedPartition::identity(0);
        assert_eq!(p.num_classes(), 0);
        assert_eq!(p.error(), 0);
        assert_eq!(p.g3_error(&StrippedPartition::identity(0)), 0.0);
    }
}
