//! Relation instances.

use crate::attrset::AttrSet;
use crate::column::Column;
use crate::compat;
use crate::schema::{AttrId, Schema, ValueType};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Errors raised when constructing or manipulating relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// Expected number of values (schema width).
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The schema has more attributes than [`AttrSet::MAX_ATTRS`].
    TooManyAttributes(usize),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            RelationError::TooManyAttributes(n) => {
                write!(f, "schema has {n} attributes; at most 64 are supported")
            }
        }
    }
}

impl std::error::Error for RelationError {}

/// A relation instance: a schema plus dictionary-encoded columnar data.
///
/// Each attribute is a [`Column`]: a `u32` code vector over a per-column
/// dictionary of distinct [`Value`]s, a null bitmap, and lazily built
/// sorted-run / packed-numeric / row-major views (see the [`crate::column`]
/// module docs). Cell access through [`Relation::value`] is two array
/// loads; the code-level accessors ([`Relation::col`]) are what the hot
/// paths of partitioning, grouping and pair blocking consume.
///
/// Equality is *logical* — same schema, same cells in the same order —
/// independent of dictionary layout, which mutation history can permute.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    cols: Vec<Column>,
    n_rows: usize,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.n_rows == other.n_rows && self.cols == other.cols
    }
}

impl Relation {
    /// An empty relation over `schema`.
    ///
    /// # Errors
    /// Fails if the schema exceeds 64 attributes.
    pub fn empty(schema: Schema) -> Result<Self, RelationError> {
        if schema.len() > AttrSet::MAX_ATTRS {
            return Err(RelationError::TooManyAttributes(schema.len()));
        }
        let cols = (0..schema.len()).map(|_| Column::new()).collect();
        Ok(Relation {
            schema,
            cols,
            n_rows: 0,
        })
    }

    /// Build a relation from rows. Convenience for tests and examples.
    ///
    /// # Errors
    /// Fails on arity mismatches or oversized schemas.
    pub fn from_rows<R>(schema: Schema, rows: R) -> Result<Self, RelationError>
    where
        R: IntoIterator<Item = Vec<Value>>,
    {
        let mut rel = Relation::empty(schema)?;
        for row in rows {
            rel.push_row(row)?;
        }
        Ok(rel)
    }

    /// Append one row, interning each cell through its column's dictionary.
    ///
    /// # Errors
    /// Fails if `row.len()` differs from the schema width.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), RelationError> {
        if row.len() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Append one row from borrowed cell texts — the CSV ingest path.
    ///
    /// Typed parsing matches the CSV reader's contract: an empty text is
    /// `Null`; on a [`ValueType::Numeric`] column the text parses to
    /// `Int`, then `Float`, then falls back to a string; other columns
    /// keep the text as a string. Repeated string cells intern against
    /// the column dictionary *borrowed* — no per-cell allocation.
    ///
    /// # Errors
    /// Fails if `cells.len()` differs from the schema width.
    pub fn push_row_texts(&mut self, cells: &[impl AsRef<str>]) -> Result<(), RelationError> {
        if cells.len() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: cells.len(),
            });
        }
        for (i, (col, cell)) in self.cols.iter_mut().zip(cells).enumerate() {
            let text = cell.as_ref();
            if text.is_empty() {
                col.push(Value::Null);
                continue;
            }
            match self.schema.ty(AttrId(i)) {
                ValueType::Numeric => {
                    if let Ok(v) = text.parse::<i64>() {
                        col.push(Value::Int(v));
                    } else if let Ok(v) = text.parse::<f64>() {
                        col.push(Value::float(v));
                    } else {
                        col.push_str(text);
                    }
                }
                _ => col.push_str(text),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.schema.len()
    }

    /// The set of all attributes.
    #[inline]
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.schema.len())
    }

    /// Cell value at `(row, attr)`.
    ///
    /// # Panics
    /// Panics if the row or attribute is out of range.
    #[inline]
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        self.cols[attr.0].value(row)
    }

    /// Overwrite a cell value (used by repair algorithms). The new value is
    /// interned; the column's lazy views are invalidated.
    ///
    /// # Panics
    /// Panics if the row or attribute is out of range.
    pub fn set_value(&mut self, row: usize, attr: AttrId, v: Value) {
        self.cols[attr.0].set(row, v);
    }

    /// The dictionary-encoded column of an attribute: code vector,
    /// dictionary, null bitmap, sorted-run index, packed views.
    #[inline]
    pub fn col(&self, attr: AttrId) -> &Column {
        &self.cols[attr.0]
    }

    /// Whole column for an attribute as a `Value` slice.
    ///
    /// Compatibility shim: the slice is materialized (one clone per cell)
    /// on first use and cached until the column mutates. Hot paths should
    /// prefer [`Relation::col`] and work on codes.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &[Value] {
        self.cols[attr.0].values()
    }

    /// Materialize one row as a vector of cloned values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(row).clone()).collect()
    }

    /// Project a row onto an attribute set, cloning the values
    /// (in increasing attribute order).
    pub fn project_row(&self, row: usize, attrs: AttrSet) -> Vec<Value> {
        attrs
            .iter()
            .map(|a| self.cols[a.0].value(row).clone())
            .collect()
    }

    /// Do two rows agree (are equal) on every attribute in `attrs`?
    ///
    /// Structural cell equality is code equality, so this is a pure
    /// integer comparison.
    pub fn rows_agree(&self, r1: usize, r2: usize, attrs: AttrSet) -> bool {
        attrs
            .iter()
            .all(|a| self.cols[a.0].code(r1) == self.cols[a.0].code(r2))
    }

    /// Group rows by their code tuples on `attrs` — the integer-keyed core
    /// of [`Relation::group_by`]. Row lists are ascending (rows are
    /// visited in order). Key tuples follow `attrs` in increasing
    /// attribute order.
    fn group_rows_by_codes(&self, attrs: AttrSet) -> HashMap<Vec<u32>, Vec<usize>> {
        let cols: Vec<&Column> = attrs.iter().map(|a| &self.cols[a.0]).collect();
        let mut groups: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for row in 0..self.n_rows {
            let key: Vec<u32> = cols.iter().map(|c| c.code(row)).collect();
            groups.entry(key).or_default().push(row);
        }
        groups
    }

    /// Group rows by their values on `attrs`.
    ///
    /// Returns a map from projected key to the (sorted) row indices holding
    /// that key. This is the workhorse behind grouping-based validation of
    /// FDs, AFDs, PFDs, MFDs, MVDs, … — and, via the all-attribute
    /// grouping, the tuple classing of FASTDC evidence sets. Grouping runs
    /// on dictionary codes; the `Value` keys are materialized once per
    /// distinct group, not once per row.
    pub fn group_by(&self, attrs: AttrSet) -> HashMap<Vec<Value>, Vec<usize>> {
        if compat::row_major() {
            return self.group_by_row_major(attrs);
        }
        let cols: Vec<&Column> = attrs.iter().map(|a| &self.cols[a.0]).collect();
        self.group_rows_by_codes(attrs)
            .into_iter()
            .map(|(key, rows)| {
                let vals: Vec<Value> = key
                    .iter()
                    .zip(&cols)
                    .map(|(&code, c)| c.dict_value(code).clone())
                    .collect();
                (vals, rows)
            })
            .collect()
    }

    /// Frozen row-major reference for [`Relation::group_by`], kept callable
    /// for the differential harness.
    fn group_by_row_major(&self, attrs: AttrSet) -> HashMap<Vec<Value>, Vec<usize>> {
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for row in 0..self.n_rows {
            groups
                .entry(self.project_row(row, attrs))
                .or_default()
                .push(row);
        }
        groups
    }

    /// Number of distinct value combinations on `attrs`
    /// (`|dom(X)|_r` in the survey's SFD strength measure).
    pub fn distinct_count(&self, attrs: AttrSet) -> usize {
        if attrs.is_empty() {
            return usize::from(self.n_rows > 0);
        }
        if compat::row_major() {
            return self.group_by_row_major(attrs).len();
        }
        self.group_rows_by_codes(attrs).len()
    }

    /// Row indices sorted by the values of `attrs` (lexicographically, in
    /// increasing attribute order). Used by order-dependency validation.
    ///
    /// The sort is stable (ties keep row order) and compares per-column
    /// structural *ranks* from the sorted-run index — rank order is value
    /// order, so the result is identical to sorting on the values.
    pub fn sorted_rows(&self, attrs: AttrSet) -> Vec<usize> {
        let mut rows: Vec<usize> = (0..self.n_rows).collect();
        if compat::row_major() {
            let attr_list: Vec<AttrId> = attrs.to_vec();
            rows.sort_by(|&a, &b| {
                for &attr in &attr_list {
                    let ord = self.cols[attr.0].value(a).cmp(self.cols[attr.0].value(b));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            return rows;
        }
        let keys: Vec<(&[u32], &crate::column::ColumnIndex)> = attrs
            .iter()
            .map(|a| (self.cols[a.0].codes(), self.cols[a.0].index()))
            .collect();
        rows.sort_by(|&a, &b| {
            for (codes, ix) in &keys {
                let ord = ix.rank(codes[a]).cmp(&ix.rank(codes[b]));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// A new relation containing only the given rows (in the given order).
    /// Dictionaries are rebuilt in first-appearance order of the selection.
    pub fn select_rows(&self, rows: &[usize]) -> Relation {
        let cols = self.cols.iter().map(|c| c.select(rows)).collect();
        Relation {
            schema: self.schema.clone(),
            cols,
            n_rows: rows.len(),
        }
    }

    /// A new relation with only the attributes in `attrs`
    /// (schema order preserved). Duplicate rows are kept.
    pub fn project(&self, attrs: AttrSet) -> Relation {
        let mut schema = Schema::new();
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs.iter() {
            let attr = self.schema.attr(a);
            schema.push(attr.name.clone(), attr.ty);
            cols.push(self.cols[a.0].clone());
        }
        Relation {
            schema,
            cols,
            n_rows: self.n_rows,
        }
    }

    /// Rough resident footprint in bytes: code vectors, dictionaries,
    /// intern tables, null bitmaps and any lazy views already built.
    /// The columnar analogue of `StrippedPartition::approx_bytes`.
    pub fn approx_bytes(&self) -> u64 {
        self.cols.iter().map(Column::approx_bytes).sum()
    }

    /// Validate every column's internal invariants (dense codes, duplicate-
    /// free dictionary, consistent null bitmap, intact intern chains) plus
    /// cross-column row counts. Used by the fault-resilience and property
    /// suites.
    ///
    /// # Panics
    /// Panics (with a description) on any violated invariant.
    pub fn debug_validate(&self) {
        for (i, c) in self.cols.iter().enumerate() {
            assert_eq!(c.len(), self.n_rows, "column {i} row count");
            c.debug_validate();
        }
    }

    /// Render the relation as an aligned ASCII table (for examples/demos).
    pub fn to_ascii_table(&self) -> String {
        let headers: Vec<String> = self.schema.iter().map(|(_, a)| a.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = (0..self.n_rows)
            .map(|r| {
                self.schema
                    .ids()
                    .map(|a| {
                        let s = self.value(r, a).render().into_owned();
                        s
                    })
                    .collect()
            })
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Iterate over all unordered row pairs `(i, j)` with `i < j`.
    ///
    /// Pair-based dependencies (MFDs, NEDs, DDs, MDs, DCs, PACs, FFDs, ODs)
    /// are defined over tuple pairs; this gives them one canonical
    /// enumeration.
    pub fn row_pairs(&self) -> impl Iterator<Item = (usize, usize)> + use<> {
        let n = self.n_rows;
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
    }
}

/// Incremental builder: declare attributes, then add rows.
///
/// ```
/// use deptree_relation::{RelationBuilder, ValueType};
///
/// let rel = RelationBuilder::new()
///     .attr("name", ValueType::Text)
///     .attr("price", ValueType::Numeric)
///     .row(vec!["Hyatt".into(), 230.into()])
///     .row(vec!["Regis".into(), 319.into()])
///     .build()
///     .unwrap();
/// assert_eq!(rel.n_rows(), 2);
/// ```
#[derive(Debug, Default)]
pub struct RelationBuilder {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl RelationBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an attribute.
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, ty: ValueType) -> Self {
        self.schema.push(name, ty);
        self
    }

    /// Append a row.
    #[must_use]
    pub fn row(mut self, row: Vec<Value>) -> Self {
        self.rows.push(row);
        self
    }

    /// Finish building.
    ///
    /// # Errors
    /// Fails on arity mismatches or oversized schemas.
    pub fn build(self) -> Result<Relation, RelationError> {
        Relation::from_rows(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        RelationBuilder::new()
            .attr("a", ValueType::Categorical)
            .attr("b", ValueType::Categorical)
            .attr("c", ValueType::Numeric)
            .row(vec!["x".into(), "p".into(), 1.into()])
            .row(vec!["x".into(), "p".into(), 2.into()])
            .row(vec!["y".into(), "q".into(), 3.into()])
            .row(vec!["y".into(), "r".into(), 4.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn arity_mismatch_detected() {
        let schema = Schema::from_attrs([("a", ValueType::Categorical)]);
        let err = Relation::from_rows(schema, [vec!["x".into(), "y".into()]]).unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn group_by_and_distinct() {
        let r = sample();
        let a = r.schema().id("a");
        let groups = r.group_by(AttrSet::single(a));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![Value::str("x")]], vec![0, 1]);
        assert_eq!(r.distinct_count(AttrSet::single(a)), 2);
        let ab = AttrSet::single(a).insert(r.schema().id("b"));
        assert_eq!(r.distinct_count(ab), 3);
    }

    #[test]
    fn distinct_count_empty_set() {
        let r = sample();
        // The empty projection has exactly one distinct (empty) tuple when
        // the relation is non-empty.
        assert_eq!(r.distinct_count(AttrSet::empty()), 1);
    }

    #[test]
    fn rows_agree_semantics() {
        let r = sample();
        let ab = AttrSet::from_ids([r.schema().id("a"), r.schema().id("b")]);
        assert!(r.rows_agree(0, 1, ab));
        assert!(!r.rows_agree(2, 3, ab));
        assert!(r.rows_agree(2, 3, AttrSet::single(r.schema().id("a"))));
    }

    #[test]
    fn sorted_rows_order() {
        let r = sample();
        let c = r.schema().id("c");
        let sorted = r.sorted_rows(AttrSet::single(c));
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn project_and_select() {
        let r = sample();
        let a = r.schema().id("a");
        let p = r.project(AttrSet::single(a));
        assert_eq!(p.n_attrs(), 1);
        assert_eq!(p.n_rows(), 4);
        let s = r.select_rows(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.value(0, a), &Value::str("y"));
        assert_eq!(s.value(1, a), &Value::str("x"));
        s.debug_validate();
    }

    #[test]
    fn row_pairs_count() {
        let r = sample();
        assert_eq!(r.row_pairs().count(), 6);
        assert!(r.row_pairs().all(|(i, j)| i < j));
    }

    #[test]
    fn ascii_table_contains_headers_and_values() {
        let r = sample();
        let t = r.to_ascii_table();
        assert!(t.contains("| a |"));
        assert!(t.contains("x"));
    }

    #[test]
    fn set_value_mutates() {
        let mut r = sample();
        let b = r.schema().id("b");
        r.set_value(3, b, "q".into());
        assert_eq!(r.value(3, b), &Value::str("q"));
    }

    #[test]
    fn logical_equality_ignores_dictionary_history() {
        let mut a = sample();
        let mut b = sample();
        // Give `b` a different dictionary layout via mutation round trips.
        let attr = b.schema().id("a");
        b.set_value(0, attr, "zzz".into());
        b.set_value(0, attr, "x".into());
        assert_eq!(a, b);
        a.set_value(1, attr, "y".into());
        assert_ne!(a, b);
    }

    #[test]
    fn push_row_texts_types_cells() {
        let mut r = Relation::empty(Schema::from_attrs([
            ("name", ValueType::Text),
            ("qty", ValueType::Numeric),
        ]))
        .unwrap();
        r.push_row_texts(&["widget", "3"]).unwrap();
        r.push_row_texts(&["", "2.5"]).unwrap();
        r.push_row_texts(&["widget", "n/a"]).unwrap();
        let name = r.schema().id("name");
        let qty = r.schema().id("qty");
        assert_eq!(r.value(0, name), &Value::str("widget"));
        assert_eq!(r.value(0, qty), &Value::int(3));
        assert!(r.value(1, name).is_null());
        assert_eq!(r.value(1, qty), &Value::float(2.5));
        assert_eq!(r.value(2, qty), &Value::str("n/a"));
        // "widget" was interned once.
        assert_eq!(r.col(name).code(0), r.col(name).code(2));
        assert!(matches!(
            r.push_row_texts(&["too", "many", "cells"]),
            Err(RelationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn row_major_mode_changes_nothing() {
        let _mode = crate::compat::test_mode_lock();
        let r = sample();
        let attrs = r.all_attrs();
        let fast = (
            r.group_by(attrs),
            r.sorted_rows(attrs),
            r.distinct_count(attrs),
        );
        let guard = crate::compat::force_row_major();
        let slow = (
            r.group_by(attrs),
            r.sorted_rows(attrs),
            r.distinct_count(attrs),
        );
        drop(guard);
        assert_eq!(fast, slow);
    }
}
