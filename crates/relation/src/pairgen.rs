//! Candidate-pair generation: blocking and similarity indexes.
//!
//! The pairwise classes of the family tree (MDs, DDs, NEDs, ODs, DCs and the
//! dedup application) all quantify over *tuple pairs*; a naive check walks all
//! `n·(n−1)/2` of them regardless of predicate selectivity.  This module
//! provides deterministic candidate-pair generators that are **complete** for
//! a small vocabulary of predicate classes ([`PairSpec`]): every pair that can
//! satisfy the predicate is generated, so filtering candidates through the
//! exact predicate yields results identical to the full scan.
//!
//! Generators:
//!
//! * **Equality blocking** ([`PairSpec::Eq`]) — rows are grouped into
//!   structural-equality classes (the same classes a stripped partition
//!   holds); only within-class pairs can satisfy the predicate, and all of
//!   them do (*exact*).
//! * **Band join** ([`PairSpec::Band`]) — for `|a−b| ≤ θ` under `AbsDiff`
//!   semantics: value classes are sorted and linked by a two-pointer sweep;
//!   non-finite numerics match nothing and are dropped, null and non-numeric
//!   classes keep their within-class pairs (*exact*).
//! * **q-gram prefix filter** ([`PairSpec::Edit`]) — for edit distance ≤ k:
//!   distinct rendered strings sharing a positional-independent q-gram within
//!   a length filter of k are linked; strings too short to guarantee a shared
//!   q-gram are all-paired within the length filter (*candidates require
//!   verification*).
//! * **Full scan** ([`PairSpec::All`]) — the conservative fallback for
//!   predicates that are not indexable; candidates are every pair, chunked
//!   into fixed-size blocks so parallel consumers stay deterministic.
//!
//! Enumeration order is a pure function of the column contents — independent
//! of thread count, hash seeds and budget state — so indexed paths can be
//! parallelised over [`PairIndex::n_blocks`] with a serial in-order merge and
//! still produce byte-identical output.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::column::Column;
use crate::{AttrId, Relation, StrippedPartition, Value};

/// Seedless single-pass hasher for the edit-index tables: one Fibonacci
/// multiply for packed u64 grams, FNV-1a for byte streams. Deterministic
/// across processes (no `RandomState`), which the reproducible-enumeration
/// contract requires, and far cheaper than SipHash on the hot gram path.
/// Iteration order of the maps it backs is never observed.
#[derive(Default)]
struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_right(29);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Predicate class a candidate generator can serve.
///
/// A spec describes the *match relation* on a single column; an index built
/// for a spec generates a superset of the matching pairs (exactly the
/// matching pairs when [`PairIndex::is_exact`] holds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairSpec {
    /// Matches iff the two values are structurally equal
    /// (`Metric::Equality` with threshold `< 1`).
    Eq,
    /// Matches iff `AbsDiff` distance ≤ θ: numeric values within the band,
    /// equal non-numeric values, and null/null pairs.
    Band(f64),
    /// May match only if rendered-string edit distance ≤ k
    /// (`Metric::Levenshtein`); candidates beyond identical strings need
    /// verification.
    Edit(usize),
    /// No pair matches (e.g. a negative distance threshold).
    Empty,
    /// Not indexable: every pair is a candidate (full-scan fallback).
    All,
}

/// q-gram width used by the [`PairSpec::Edit`] prefix filter.
const QGRAM: usize = 2;

/// Fixed `i`-range width of full-scan blocks; independent of thread count so
/// block-parallel consumers stay deterministic.
const FULL_SCAN_CHUNK: usize = 1024;

/// Abandon an index whose link list outgrows this bound (the predicate is too
/// unselective for blocking to pay off) and fall back to the full scan.
fn link_cap(n_rows: usize) -> usize {
    8 * n_rows + 1024
}

/// A deterministic candidate-pair generator for one column and one
/// [`PairSpec`].
///
/// Candidates come from two sources: *within-class* pairs (all row pairs of
/// each equivalence class) and *link* pairs (the cross product of two linked
/// classes).  Classes are ordered by their smallest row id, rows ascend
/// within a class, and links are emitted in a fixed sweep order, so
/// [`PairIndex::for_each_candidate`] visits pairs in the same order on every
/// run.
#[derive(Debug, Clone)]
pub struct PairIndex {
    classes: Vec<Vec<usize>>,
    /// Candidate class pairs `(a, b)` with `a != b`, indexes into `classes`.
    links: Vec<(usize, usize)>,
    /// Every candidate satisfies the predicate (no verification needed).
    exact: bool,
    /// False for the full-scan fallback.
    indexed: bool,
    n_rows: usize,
    n_candidates: u64,
    /// Rows whose q-gram work was skipped because their dictionary entry
    /// was already indexed (distinct-value edit builds only; 0 elsewhere).
    distinct_gram_hits: u64,
}

impl PairIndex {
    /// Build an index over a column for a predicate class.
    ///
    /// Completeness contract: every row pair `(i, j)` with `i < j` whose
    /// values match under `spec` is generated by
    /// [`PairIndex::for_each_candidate`].  For [`PairSpec::All`] (and for
    /// indexes that blow past the internal link cap) this degenerates to the
    /// full scan.
    pub fn build(col: &[Value], spec: PairSpec) -> Self {
        match spec {
            PairSpec::Eq => Self::build_eq(col),
            PairSpec::Band(theta) => Self::build_band(col, theta),
            PairSpec::Edit(k) => Self::build_edit(col, k),
            PairSpec::Empty => Self::empty(col.len()),
            PairSpec::All => Self::full_scan(col.len()),
        }
    }

    /// [`PairIndex::build`] over a relation attribute, keyed on dictionary
    /// codes: equality classes come straight from the code vector, band
    /// sweeps sort one value per *distinct* code, and the edit index
    /// renders each distinct value once instead of once per row. Class
    /// construction visits rows in order, so classes, links and candidate
    /// enumeration are identical to the `Value`-slice builder — which
    /// remains the row-major reference, reachable via
    /// [`crate::compat::force_row_major`].
    pub fn build_attr(rel: &Relation, attr: AttrId, spec: PairSpec) -> Self {
        if crate::compat::row_major() {
            return Self::build(rel.column(attr), spec);
        }
        let col = rel.col(attr);
        match spec {
            PairSpec::Eq => Self::build_eq_codes(col),
            PairSpec::Band(theta) => Self::build_band_codes(col, theta),
            PairSpec::Edit(k) => Self::build_edit_codes(col, k),
            PairSpec::Empty => Self::empty(col.len()),
            PairSpec::All => Self::full_scan(col.len()),
        }
    }

    /// The index that generates no candidates (unsatisfiable predicate).
    pub fn empty(n_rows: usize) -> Self {
        PairIndex {
            classes: Vec::new(),
            links: Vec::new(),
            exact: true,
            indexed: true,
            n_rows,
            n_candidates: 0,
            distinct_gram_hits: 0,
        }
    }

    /// The conservative fallback: every pair is a candidate, enumerated in
    /// `(i, j)` ascending order and chunked into fixed-width blocks.
    pub fn full_scan(n_rows: usize) -> Self {
        let n = n_rows as u64;
        PairIndex {
            classes: Vec::new(),
            links: Vec::new(),
            exact: false,
            indexed: false,
            n_rows,
            n_candidates: n * n.saturating_sub(1) / 2,
            distinct_gram_hits: 0,
        }
    }

    /// Equality-blocking index from an existing stripped partition
    /// (singleton classes generate no pairs, so stripping loses nothing).
    pub fn from_partition(part: &StrippedPartition) -> Self {
        Self::from_classes(part.classes().to_vec(), part.n_rows())
    }

    /// Equality-blocking index over the structural-equality classes of an
    /// attribute set (the multi-column analogue of [`PairSpec::Eq`]).
    pub fn from_attrs(rel: &Relation, attrs: crate::AttrSet) -> Self {
        Self::from_partition(&StrippedPartition::from_attrs(rel, attrs))
    }

    fn from_classes(mut classes: Vec<Vec<usize>>, n_rows: usize) -> Self {
        classes.retain(|c| c.len() >= 2);
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort_unstable();
        Self::finish(classes, Vec::new(), true, n_rows)
    }

    fn finish(
        classes: Vec<Vec<usize>>,
        links: Vec<(usize, usize)>,
        exact: bool,
        n_rows: usize,
    ) -> Self {
        let mut idx = PairIndex {
            classes,
            links,
            exact,
            indexed: true,
            n_rows,
            n_candidates: 0,
            distinct_gram_hits: 0,
        };
        idx.n_candidates = (0..idx.n_blocks()).map(|b| idx.block_pairs(b)).sum();
        idx
    }

    fn build_eq(col: &[Value]) -> Self {
        Self::finish(structural_classes(col), Vec::new(), true, col.len())
    }

    fn build_eq_codes(col: &Column) -> Self {
        Self::finish(code_classes(col), Vec::new(), true, col.len())
    }

    fn build_band_codes(col: &Column, theta: f64) -> Self {
        if theta.is_nan() || theta < 0.0 {
            return Self::empty(col.len());
        }
        // Mirrors `build_band`: structural classes in first-appearance
        // order, rows with non-finite numeric values dropped entirely.
        // Membership decisions are made once per dictionary code.
        const NO_CLASS: u32 = u32::MAX;
        let dict = col.dict();
        let mut class_of: Vec<u32> = vec![NO_CLASS; dict.len()];
        let mut skip: Vec<bool> = vec![false; dict.len()];
        for (code, v) in dict.iter().enumerate() {
            skip[code] = matches!(v.as_f64(), Some(x) if !x.is_finite());
        }
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut class_code: Vec<u32> = Vec::new();
        for (row, &code) in col.codes().iter().enumerate() {
            if skip[code as usize] {
                continue;
            }
            let cls = if class_of[code as usize] != NO_CLASS {
                class_of[code as usize] as usize
            } else {
                class_of[code as usize] = classes.len() as u32;
                classes.push(Vec::new());
                class_code.push(code);
                classes.len() - 1
            };
            classes[cls].push(row);
        }
        let mut nums: Vec<(f64, usize)> = class_code
            .iter()
            .enumerate()
            .filter_map(|(c, &code)| Some((dict[code as usize].as_f64()?, c)))
            .collect();
        nums.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let cap = link_cap(col.len());
        let mut links = Vec::new();
        let mut lo = 0usize;
        for hi in 0..nums.len() {
            while nums[hi].0 - nums[lo].0 > theta {
                lo += 1;
            }
            for k in lo..hi {
                let (a, b) = (nums[k].1, nums[hi].1);
                links.push((a.min(b), a.max(b)));
                if links.len() > cap {
                    return Self::full_scan(col.len());
                }
            }
        }
        Self::finish(classes, links, true, col.len())
    }

    fn build_edit_codes(col: &Column, k: usize) -> Self {
        // Same classes as `build_edit` — keyed on *rendered* text, so
        // distinct codes can share a class (`Int(10)` and `Str("10")`
        // render alike) — but built per *distinct dictionary entry*: two
        // row passes (count, then fill into exact-capacity classes) and
        // one render per live code. Class creation follows the first live
        // row of each code, so class order, content and the downstream
        // gram links are identical to the per-row reference builder.
        const NO_CLASS: u32 = u32::MAX;
        let dict = col.dict();
        // Pass 1: first-seen live codes (in first-row order) + row counts.
        let mut count_of: Vec<u32> = vec![0; dict.len()];
        let mut first_seen: Vec<u32> = Vec::new();
        for &code in col.codes() {
            if count_of[code as usize] == 0 {
                first_seen.push(code);
            }
            count_of[code as usize] += 1;
        }
        let hits = (col.len() - first_seen.len()) as u64;
        // Resolve every distinct entry to a rendered-text class.
        let mut class_of: Vec<u32> = vec![NO_CLASS; dict.len()];
        let mut by_key: FastMap<Option<String>, usize> = FastMap::default();
        let mut class_sizes: Vec<usize> = Vec::new();
        let mut texts: Vec<Option<Vec<char>>> = Vec::new();
        for &code in &first_seen {
            let v = &dict[code as usize];
            let key = (!v.is_null()).then(|| v.render().into_owned());
            let cls = match by_key.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let cls = texts.len();
                    texts.push(e.key().as_ref().map(|s| s.chars().collect()));
                    class_sizes.push(0);
                    e.insert(cls);
                    cls
                }
            };
            class_of[code as usize] = cls as u32;
            class_sizes[cls] += count_of[code as usize] as usize;
        }
        // Pass 2: fill classes in row order, no reallocation.
        let mut classes: Vec<Vec<usize>> =
            class_sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
        for (row, &code) in col.codes().iter().enumerate() {
            classes[class_of[code as usize] as usize].push(row);
        }
        let mut idx = Self::finish_edit(classes, texts, k, col.len());
        idx.distinct_gram_hits = hits;
        idx
    }

    fn build_band(col: &[Value], theta: f64) -> Self {
        // A negative (or NaN) band matches nothing: even null/null pairs sit
        // at distance 0, which is not ≤ θ.
        if theta.is_nan() || theta < 0.0 {
            return Self::empty(col.len());
        }
        // Structural classes, excluding non-finite numerics: |x−y| is NaN or
        // +∞ whenever either side is, so those rows match nothing at all —
        // not even structurally equal copies of themselves.
        let mut by_value: HashMap<&Value, usize> = HashMap::new();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for (row, v) in col.iter().enumerate() {
            if matches!(v.as_f64(), Some(x) if !x.is_finite()) {
                continue;
            }
            let cls = *by_value.entry(v).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[cls].push(row);
        }
        // Two-pointer sweep over the numeric classes sorted by value: classes
        // a < b are linked iff their value gap is ≤ θ, which is exactly the
        // AbsDiff predicate on their (constant) member values.
        let mut nums: Vec<(f64, usize)> = classes
            .iter()
            .enumerate()
            .filter_map(|(c, rows)| {
                let v = col[rows[0]].as_f64()?;
                Some((v, c))
            })
            .collect();
        nums.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let cap = link_cap(col.len());
        let mut links = Vec::new();
        let mut lo = 0usize;
        for hi in 0..nums.len() {
            while nums[hi].0 - nums[lo].0 > theta {
                lo += 1;
            }
            for k in lo..hi {
                let (a, b) = (nums[k].1, nums[hi].1);
                links.push((a.min(b), a.max(b)));
                if links.len() > cap {
                    return Self::full_scan(col.len());
                }
            }
        }
        Self::finish(classes, links, true, col.len())
    }

    fn build_edit(col: &[Value], k: usize) -> Self {
        // Classes of identical rendered strings (distance 0), plus one class
        // for nulls (null/null distance is 0, null/string is ∞).  Cross-class
        // candidates come from a q-gram inverted index with a length filter.
        let mut by_key: HashMap<Option<String>, usize> = HashMap::new();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut texts: Vec<Option<Vec<char>>> = Vec::new();
        for (row, v) in col.iter().enumerate() {
            let key = (!v.is_null()).then(|| v.render().into_owned());
            let cls = *by_key.entry(key).or_insert_with(|| {
                classes.push(Vec::new());
                texts.push((!v.is_null()).then(|| v.render().chars().collect()));
                classes.len() - 1
            });
            classes[cls].push(row);
        }
        Self::finish_edit(classes, texts, k, col.len())
    }

    /// Shared tail of the edit-distance builders: q-gram prefix-filter
    /// linking over rendered-text classes.
    fn finish_edit(
        classes: Vec<Vec<usize>>,
        texts: Vec<Option<Vec<char>>>,
        k: usize,
        n_rows: usize,
    ) -> Self {
        if k == 0 {
            // Edit distance 0 is rendered-string equality: classes only.
            return Self::finish(classes, Vec::new(), true, n_rows);
        }
        // Two strings within edit distance k share at least
        // max(|a|,|b|) − q + 1 − k·q q-grams (Gravano et al.); that bound is
        // ≥ 1 only when max(|a|,|b|) ≥ q·(k+1), so shorter strings must be
        // all-paired (within the |Δlen| ≤ k filter, which any edit-k pair
        // satisfies).
        let short_lim = QGRAM * (k + 1);
        let cap = link_cap(n_rows);
        let mut links: Vec<(usize, usize)> = Vec::new();
        let mut shorts: Vec<usize> = Vec::new();
        let lens: Vec<usize> = texts
            .iter()
            .map(|t| t.as_ref().map_or(0, Vec::len))
            .collect();
        // Grams pack into one u64 (`c1 << 32 | c2`) whose numeric order is
        // the lexicographic `(char, char)` order, so flat sorted-deduped
        // buffers replace per-class tree sets without reordering anything.
        //
        // Postings are intrusive chains through one flat arena — the map
        // holds only each gram's newest entry, so a gram costs a single
        // hash probe (walk the chain for candidates, then prepend the
        // current class). Chain order is newest-first, which is fine:
        // `cand` is sorted and deduped before use. A class never chains
        // to itself because its grams are deduped and each is prepended
        // exactly once, after its own candidate walk.
        const NO_ENTRY: u32 = u32::MAX;
        if texts.len() >= NO_ENTRY as usize {
            return Self::full_scan(n_rows);
        }
        let mut heads: FastMap<u64, u32> = FastMap::default();
        let mut arena: Vec<(u32, u32)> = Vec::new(); // (class, prev entry)
        let mut grams: Vec<u64> = Vec::new();
        let mut cand: Vec<usize> = Vec::new();
        for (c, text) in texts.iter().enumerate() {
            let Some(chars) = text else { continue };
            let len_c = chars.len();
            grams.clear();
            for w in chars.windows(QGRAM) {
                grams.push(((w[0] as u64) << 32) | (w[1] as u64));
            }
            grams.sort_unstable();
            grams.dedup();
            cand.clear();
            for &g in &grams {
                let head = heads.entry(g).or_insert(NO_ENTRY);
                let mut e = *head;
                while e != NO_ENTRY {
                    let (cls, prev) = arena[e as usize];
                    if lens[cls as usize].abs_diff(len_c) <= k {
                        cand.push(cls as usize);
                    }
                    e = prev;
                }
                if arena.len() >= NO_ENTRY as usize {
                    return Self::full_scan(n_rows);
                }
                arena.push((c as u32, *head));
                *head = (arena.len() - 1) as u32;
            }
            if len_c < short_lim {
                for &e in &shorts {
                    if lens[e].abs_diff(len_c) <= k {
                        cand.push(e);
                    }
                }
                shorts.push(c);
            }
            cand.sort_unstable();
            cand.dedup();
            if links.len() + cand.len() > cap {
                return Self::full_scan(n_rows);
            }
            for &e in &cand {
                links.push((e, c));
            }
        }
        let exact = links.is_empty();
        Self::finish(classes, links, exact, n_rows)
    }

    /// Does this index actually restrict candidates (vs the full scan)?
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Does every candidate satisfy the predicate (no verification needed)?
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Number of rows of the indexed column.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The equivalence classes (each a sorted row list, ≥ 2 rows).
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Candidate cross-class links as `(class_a, class_b)` index pairs.
    pub fn links(&self) -> &[(usize, usize)] {
        &self.links
    }

    /// Total number of candidate pairs this index generates.
    pub fn n_candidates(&self) -> u64 {
        self.n_candidates
    }

    /// Rows whose q-gram indexing was served by an already-indexed distinct
    /// dictionary entry (the repeated-string win of the distinct-value edit
    /// builder). 0 for every other index kind and for the row-major
    /// reference builder.
    pub fn distinct_gram_hits(&self) -> u64 {
        self.distinct_gram_hits
    }

    /// Number of enumeration blocks (units of parallel work).
    ///
    /// Indexed: one block per class (within-class pairs) followed by one per
    /// link.  Full scan: fixed-width chunks of the outer row index.
    pub fn n_blocks(&self) -> usize {
        if self.indexed {
            self.classes.len() + self.links.len()
        } else {
            self.n_rows.saturating_sub(1).div_ceil(FULL_SCAN_CHUNK)
        }
    }

    /// Number of candidate pairs in block `b`.
    pub fn block_pairs(&self, b: usize) -> u64 {
        if self.indexed {
            if b < self.classes.len() {
                let c = self.classes[b].len() as u64;
                c * (c - 1) / 2
            } else {
                let (a, c) = self.links[b - self.classes.len()];
                self.classes[a].len() as u64 * self.classes[c].len() as u64
            }
        } else {
            let (lo, hi) = self.full_scan_range(b);
            let cnt = (hi - lo) as u64;
            let n = self.n_rows as u64;
            // Σ_{i=lo}^{hi−1} (n−1−i)
            cnt * (n - 1) - (lo as u64 + hi as u64 - 1) * cnt / 2
        }
    }

    fn full_scan_range(&self, b: usize) -> (usize, usize) {
        let lo = b * FULL_SCAN_CHUNK;
        let hi = ((b + 1) * FULL_SCAN_CHUNK).min(self.n_rows.saturating_sub(1));
        (lo, hi)
    }

    /// Enumerate the candidates of block `b` in deterministic order; stops
    /// and returns `false` if `f` returns `false`.
    pub fn for_each_in_block(&self, b: usize, f: &mut impl FnMut(usize, usize) -> bool) -> bool {
        if self.indexed {
            if b < self.classes.len() {
                let rows = &self.classes[b];
                for x in 0..rows.len() {
                    for y in x + 1..rows.len() {
                        if !f(rows[x], rows[y]) {
                            return false;
                        }
                    }
                }
            } else {
                let (a, c) = self.links[b - self.classes.len()];
                for &i in &self.classes[a] {
                    for &j in &self.classes[c] {
                        if !f(i.min(j), i.max(j)) {
                            return false;
                        }
                    }
                }
            }
        } else {
            let (lo, hi) = self.full_scan_range(b);
            for i in lo..hi {
                for j in i + 1..self.n_rows {
                    if !f(i, j) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Enumerate every candidate pair `(i, j)` with `i < j`, block by block,
    /// in a fixed order; stops early (returning `false`) if `f` returns
    /// `false`.  No pair is generated twice.
    pub fn for_each_candidate(&self, mut f: impl FnMut(usize, usize) -> bool) -> bool {
        for b in 0..self.n_blocks() {
            if !self.for_each_in_block(b, &mut f) {
                return false;
            }
        }
        true
    }
}

/// Structural-equality classes of a column, ordered by first row, rows
/// ascending within each class.  All rows are covered (singletons included).
fn structural_classes(col: &[Value]) -> Vec<Vec<usize>> {
    let mut by_value: HashMap<&Value, usize> = HashMap::new();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (row, v) in col.iter().enumerate() {
        let cls = *by_value.entry(v).or_insert_with(|| {
            classes.push(Vec::new());
            classes.len() - 1
        });
        classes[cls].push(row);
    }
    classes
}

/// [`structural_classes`] from dictionary codes: no `Value` hashing, one
/// array slot per code.  Identical output — a code *is* a structural-
/// equality class id, and both walks visit rows in ascending order.
/// Narrow dictionaries stream the bit-packed code view instead of the
/// `u32` vector; the decoded codes are identical.
fn code_classes(col: &Column) -> Vec<Vec<usize>> {
    const NO_CLASS: u32 = u32::MAX;
    let mut class_of: Vec<u32> = vec![NO_CLASS; col.dict().len()];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut classify = |row: usize, code: u32| {
        let cls = if class_of[code as usize] != NO_CLASS {
            class_of[code as usize] as usize
        } else {
            class_of[code as usize] = classes.len() as u32;
            classes.push(Vec::new());
            classes.len() - 1
        };
        classes[cls].push(row);
    };
    match col.packed_codes() {
        Some(packed) => {
            for (row, code) in packed.iter().enumerate() {
                classify(row, code);
            }
        }
        None => {
            for (row, &code) in col.codes().iter().enumerate() {
                classify(row, code);
            }
        }
    }
    classes
}

/// Exact count of row pairs satisfying a *conjunction* of per-attribute
/// specs, without enumerating them.
///
/// Countable forms: any number of [`PairSpec::Eq`] atoms plus at most one
/// [`PairSpec::Band`] atom (plus [`PairSpec::Empty`], which forces 0).
/// Returns `None` when the conjunction involves [`PairSpec::Edit`] /
/// [`PairSpec::All`] atoms or more than one band — callers fall back to
/// enumerate-and-verify.
///
/// The count is over unordered pairs `i < j` and matches a full-scan filter
/// exactly, including the awkward cases: null/null pairs count for both `Eq`
/// and `Band` atoms, non-finite numerics match nothing under a band, and
/// non-numeric values match a band only when structurally equal.
pub fn count_pairs(rel: &Relation, specs: &[(AttrId, PairSpec)]) -> Option<u64> {
    let mut eq_attrs = crate::AttrSet::empty();
    let mut bands: Vec<(AttrId, f64)> = Vec::new();
    for (attr, spec) in specs {
        match spec {
            PairSpec::Empty => return Some(0),
            PairSpec::Eq => eq_attrs = eq_attrs.insert(*attr),
            PairSpec::Band(theta) => bands.push((*attr, *theta)),
            PairSpec::Edit(_) | PairSpec::All => return None,
        }
    }
    // Merge bands on the same attribute (|a−b| ≤ θ₁ ∧ |a−b| ≤ θ₂ ⟺ ≤ min θ,
    // which sorts first); distinct banded attributes are not countable by
    // grouping.
    bands.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    bands.dedup_by_key(|b| b.0);
    if bands.len() > 1 {
        return None;
    }
    let band = bands.first().copied();
    let mut total = 0u64;
    if eq_attrs.is_empty() {
        let all: Vec<usize> = (0..rel.n_rows()).collect();
        total += match band {
            None => {
                let n = rel.n_rows() as u64;
                n * n.saturating_sub(1) / 2
            }
            Some((attr, theta)) => band_count(rel.col(attr), &all, theta),
        };
    } else {
        for class in StrippedPartition::from_attrs(rel, eq_attrs).classes() {
            total += match band {
                None => {
                    let c = class.len() as u64;
                    c * (c - 1) / 2
                }
                Some((attr, theta)) => band_count(rel.col(attr), class, theta),
            };
        }
    }
    Some(total)
}

/// Count pairs among `rows` whose `col` values sit within an `AbsDiff` band
/// of width `theta` (mirroring `Metric::AbsDiff` semantics exactly).
/// Classifies each cell through its dictionary code — nulls via the
/// bitmap, string tallies by code — without materializing any `Value`.
fn band_count(col: &Column, rows: &[usize], theta: f64) -> u64 {
    if theta.is_nan() || theta < 0.0 {
        return 0;
    }
    let mut nulls = 0u64;
    let mut nums: Vec<f64> = Vec::new();
    let mut strs: HashMap<u32, u64> = HashMap::new();
    if let Some(packed) = col.packed_f64() {
        // All-numeric column: gather straight from the packed view (null
        // rows hold NaN there, so the bitmap check still gates them) —
        // no dictionary indirection, and `strs` stays empty by
        // construction.
        for &row in rows {
            if col.is_null(row) {
                nulls += 1;
                continue;
            }
            let x = packed[row];
            if x.is_finite() {
                nums.push(x);
            }
        }
    } else {
        for &row in rows {
            if col.is_null(row) {
                nulls += 1;
                continue;
            }
            let code = col.code(row);
            if let Some(x) = col.dict_value(code).as_f64() {
                if x.is_finite() {
                    nums.push(x);
                }
                // non-finite numerics match nothing, not even themselves
            } else {
                *strs.entry(code).or_insert(0) += 1;
            }
        }
    }
    let mut total = nulls * nulls.saturating_sub(1) / 2;
    for c in strs.into_values() {
        total += c * (c - 1) / 2;
    }
    nums.sort_unstable_by(f64::total_cmp);
    total + band_pairs_sorted(&nums, theta)
}

/// Count pairs `(j, h)` with `j < h` and `nums[h] − nums[j] ≤ θ` over an
/// ascending slice — the counting core of the `AbsDiff` band join.
///
/// The classic formulation is a serial two-pointer sweep whose inner
/// `while` advances one comparison at a time — fine while the low pointer
/// crawls, but every step is a dependent branch when it has to sprint
/// across a cluster gap. This kernel is that sweep with a *vectorized
/// sprint*: each `h` first advances at most eight scalar steps; if all
/// eight land, the pointer is mid-burst and switches to eight-lane blocks
/// where a branch-free compare-mask sum `Σ (nums[h] − nums[lo+i] > θ)`
/// counts the excluded lanes (autovectorizable std-only Rust). The slice
/// is ascending and f64 subtraction is weakly monotone, so exclusion is
/// prefix-closed within a block: a full count means the whole block is
/// out (leap it), a partial count means the band boundary sits inside
/// (fall back to scalar steps). Every comparison is the
/// same `nums[h] − nums[j] > θ` expression the scalar sweep evaluates
/// (never algebraically rearranged — f64 rounding is not associative), so
/// the count is exactly the scalar sweep's, in linear worst-case time.
///
/// Returns 0 for a NaN or negative `θ` (nothing matches, matching
/// [`PairSpec::Band`] semantics).
pub fn band_pairs_sorted(nums: &[f64], theta: f64) -> u64 {
    if theta.is_nan() || theta < 0.0 {
        return 0;
    }
    const LANES: usize = 8;
    let n = nums.len();
    let mut total = 0u64;
    let mut lo = 0usize;
    for h in 0..n {
        let t = nums[h];
        // `lo` can never pass `h`: `t − nums[h] = 0 ≤ θ` stops the scalar
        // loops, and the block loop only runs while `lo + LANES ≤ h`.
        // The first probe is kept branch-identical to the plain sweep so
        // a stationary pointer (the common case) pays nothing extra.
        if t - nums[lo] > theta {
            lo += 1;
            let mut steps = 1usize;
            while steps < LANES && t - nums[lo] > theta {
                lo += 1;
                steps += 1;
            }
            if steps == LANES {
                // Mid-burst: leap a whole block whenever all eight lanes
                // are excluded. Advancing by the fixed LANES (not by the
                // mask sum) keeps the loop-carried dependency a highly
                // predictable *branch* rather than data flowing into the
                // next block's address, so the loads stream speculatively
                // just like the scalar sweep's — with an eighth of the
                // iterations. Exclusions are prefix-closed, so a partial
                // block means the boundary is inside it; the scalar
                // residue below finds it.
                while lo + LANES <= h {
                    let mut c = 0u32;
                    for &v in &nums[lo..lo + LANES] {
                        c += u32::from(t - v > theta);
                    }
                    if c == LANES as u32 {
                        lo += LANES;
                    } else {
                        break;
                    }
                }
                while t - nums[lo] > theta {
                    lo += 1;
                }
            }
        }
        total += (h - lo) as u64;
    }
    total
}

/// The most selective single-attribute index for a conjunction of specs, or
/// the full scan when nothing is indexable.
///
/// The returned index generates a superset of the pairs satisfying the whole
/// conjunction (it is complete for one conjunct, and a conjunction only
/// shrinks the match set); candidates must still be verified against the
/// exact predicate unless the conjunction is a single exact atom.
pub fn best_index(rel: &Relation, specs: &[(AttrId, PairSpec)]) -> PairIndex {
    let mut best: Option<PairIndex> = None;
    for (attr, spec) in specs {
        if matches!(spec, PairSpec::All) {
            continue;
        }
        let idx = PairIndex::build_attr(rel, *attr, *spec);
        if !idx.is_indexed() {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|b| idx.n_candidates() < b.n_candidates());
        if better {
            best = Some(idx);
        }
    }
    best.unwrap_or_else(|| PairIndex::full_scan(rel.n_rows()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(spec: PairSpec, a: &Value, b: &Value) -> bool {
        // Reference semantics, mirroring Metric::dist for the spec's class.
        match (a.is_null(), b.is_null()) {
            (true, true) => {
                return match spec {
                    PairSpec::Eq => true,
                    PairSpec::Band(t) => t >= 0.0,
                    PairSpec::Edit(_) => true,
                    PairSpec::Empty => false,
                    PairSpec::All => true,
                }
            }
            (true, false) | (false, true) => return matches!(spec, PairSpec::All),
            _ => {}
        }
        match spec {
            PairSpec::Eq => a == b,
            PairSpec::Band(t) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x - y).abs() <= t,
                _ => a == b && t >= 0.0,
            },
            PairSpec::Edit(k) => {
                let (ra, rb) = (a.render().into_owned(), b.render().into_owned());
                lev(&ra, &rb) <= k
            }
            PairSpec::Empty => false,
            PairSpec::All => true,
        }
    }

    fn lev(a: &str, b: &str) -> usize {
        let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut cur = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
            }
            prev = cur;
        }
        prev[b.len()]
    }

    fn check_complete(col: &[Value], spec: PairSpec) {
        let idx = PairIndex::build(col, spec);
        let mut cands = std::collections::BTreeSet::new();
        idx.for_each_candidate(|i, j| {
            assert!(i < j, "ordered pair");
            assert!(cands.insert((i, j)), "duplicate candidate ({i},{j})");
            true
        });
        assert_eq!(cands.len() as u64, idx.n_candidates());
        for i in 0..col.len() {
            for j in i + 1..col.len() {
                let m = matches(spec, &col[i], &col[j]);
                if m {
                    assert!(
                        cands.contains(&(i, j)),
                        "missing matching pair ({i},{j}) for {spec:?}: {:?} / {:?}",
                        col[i],
                        col[j]
                    );
                }
                if idx.is_exact() && cands.contains(&(i, j)) {
                    assert!(m, "exact index produced non-match ({i},{j}) for {spec:?}");
                }
            }
        }
    }

    fn sample_column() -> Vec<Value> {
        vec![
            Value::int(10),
            Value::float(10.0),
            Value::int(12),
            Value::int(25),
            Value::Null,
            Value::str("jones"),
            Value::str("jonse"),
            Value::str("smith"),
            Value::Null,
            Value::int(10),
            Value::float(f64::NAN),
            Value::float(f64::INFINITY),
            Value::str(""),
            Value::str("a"),
            Value::float(11.5),
        ]
    }

    #[test]
    fn eq_band_edit_complete_on_mixed_column() {
        let col = sample_column();
        for spec in [
            PairSpec::Eq,
            PairSpec::Band(0.0),
            PairSpec::Band(2.0),
            PairSpec::Band(100.0),
            PairSpec::Edit(0),
            PairSpec::Edit(1),
            PairSpec::Edit(2),
            PairSpec::Empty,
            PairSpec::Band(-1.0),
            PairSpec::All,
        ] {
            check_complete(&col, spec);
        }
    }

    #[test]
    fn band_links_are_exact() {
        let col: Vec<Value> = (0..40).map(|i| Value::int(i * 3)).collect();
        let idx = PairIndex::build(&col, PairSpec::Band(4.0));
        assert!(idx.is_exact() && idx.is_indexed());
        // each value is within 4 of exactly its neighbours at gap 3
        assert_eq!(idx.n_candidates(), 39);
    }

    #[test]
    fn full_scan_enumerates_all_pairs_in_order() {
        let idx = PairIndex::full_scan(2500);
        let mut count = 0u64;
        let mut prev = (0usize, 0usize);
        idx.for_each_candidate(|i, j| {
            assert!((i, j) > prev || count == 0);
            prev = (i, j);
            count += 1;
            true
        });
        assert_eq!(count, 2500 * 2499 / 2);
        assert_eq!(count, idx.n_candidates());
        let per_block: u64 = (0..idx.n_blocks()).map(|b| idx.block_pairs(b)).sum();
        assert_eq!(per_block, count);
    }

    #[test]
    fn early_stop_propagates() {
        let idx = PairIndex::full_scan(50);
        let mut seen = 0;
        let complete = idx.for_each_candidate(|_, _| {
            seen += 1;
            seen < 10
        });
        assert!(!complete);
        assert_eq!(seen, 10);
    }

    #[test]
    fn unselective_band_falls_back_to_full_scan() {
        // thousands of distinct values all within one huge band
        let col: Vec<Value> = (0..2000).map(Value::int).collect();
        let idx = PairIndex::build(&col, PairSpec::Band(1e12));
        assert!(!idx.is_indexed());
        assert_eq!(idx.n_candidates(), 2000 * 1999 / 2);
    }

    #[test]
    fn count_pairs_matches_brute_force() {
        use crate::{RelationBuilder, ValueType};
        let col_a = sample_column();
        let col_b: Vec<Value> = (0..col_a.len())
            .map(|i| {
                if i % 5 == 4 {
                    Value::Null
                } else {
                    Value::Str(format!("g{}", i % 3))
                }
            })
            .collect();
        let mut b = RelationBuilder::new()
            .attr("a", ValueType::Numeric)
            .attr("b", ValueType::Categorical);
        for i in 0..col_a.len() {
            b = b.row(vec![col_a[i].clone(), col_b[i].clone()]);
        }
        let r = b.build().expect("valid relation");
        let a0 = r.schema().attr_id("a").expect("a");
        let b0 = r.schema().attr_id("b").expect("b");
        let cases: Vec<Vec<(AttrId, PairSpec)>> = vec![
            vec![(a0, PairSpec::Eq)],
            vec![(b0, PairSpec::Eq)],
            vec![(a0, PairSpec::Band(2.0))],
            vec![(a0, PairSpec::Band(0.0))],
            vec![(a0, PairSpec::Eq), (b0, PairSpec::Eq)],
            vec![(b0, PairSpec::Eq), (a0, PairSpec::Band(5.0))],
            vec![(a0, PairSpec::Band(2.0)), (a0, PairSpec::Band(5.0))],
            vec![(a0, PairSpec::Eq), (a0, PairSpec::Band(1.0))],
            vec![(a0, PairSpec::Empty), (b0, PairSpec::Eq)],
            vec![],
        ];
        for specs in cases {
            let got = count_pairs(&r, &specs).expect("countable");
            let mut want = 0u64;
            for i in 0..r.n_rows() {
                for j in i + 1..r.n_rows() {
                    if specs
                        .iter()
                        .all(|(a, s)| matches(*s, r.value(i, *a), r.value(j, *a)))
                    {
                        want += 1;
                    }
                }
            }
            assert_eq!(got, want, "count mismatch for {specs:?}");
        }
        // non-countable shapes
        assert!(count_pairs(&r, &[(b0, PairSpec::Edit(1))]).is_none());
        assert!(count_pairs(&r, &[(a0, PairSpec::Band(1.0)), (b0, PairSpec::Band(1.0))]).is_none());
        assert!(count_pairs(&r, &[(a0, PairSpec::All)]).is_none());
    }

    #[test]
    fn best_index_prefers_most_selective() {
        use crate::{RelationBuilder, ValueType};
        let mut b = RelationBuilder::new()
            .attr("wide", ValueType::Categorical)
            .attr("narrow", ValueType::Categorical);
        for i in 0..100 {
            b = b.row(vec![
                Value::Str(format!("w{}", i % 2)),
                Value::Str(format!("n{i}")),
            ]);
        }
        let r = b.build().expect("valid relation");
        let wide = r.schema().attr_id("wide").expect("wide");
        let narrow = r.schema().attr_id("narrow").expect("narrow");
        let idx = best_index(&r, &[(wide, PairSpec::Eq), (narrow, PairSpec::Eq)]);
        assert_eq!(idx.n_candidates(), 0, "all-distinct attr blocks everything");
        let idx = best_index(&r, &[(wide, PairSpec::All)]);
        assert!(!idx.is_indexed(), "no indexable atom → full scan");
    }

    #[test]
    fn band_kernel_matches_scalar_sweep() {
        // Deterministic pseudo-random values, duplicates and clusters
        // included, across window shapes that hit the vector path, the
        // wide-window scalar fallback, and the tail loop.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut vals: Vec<f64> = (0..997)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 11) % 10_000) as f64 / 10.0
            })
            .collect();
        vals.sort_unstable_by(f64::total_cmp);
        for theta in [0.0, 0.1, 1.0, 25.0, 400.0, 1e6, -1.0, f64::NAN] {
            let want: u64 = if theta.is_nan() || theta < 0.0 {
                0
            } else {
                let mut t = 0u64;
                let mut lo = 0usize;
                for hi in 0..vals.len() {
                    while vals[hi] - vals[lo] > theta {
                        lo += 1;
                    }
                    t += (hi - lo) as u64;
                }
                t
            };
            assert_eq!(
                band_pairs_sorted(&vals, theta),
                want,
                "kernel diverged from scalar sweep at theta={theta}"
            );
        }
        for n in 0..20 {
            let tiny = &vals[..n];
            assert_eq!(band_pairs_sorted(tiny, 3.0), {
                let mut t = 0u64;
                for i in 0..n {
                    for j in i + 1..n {
                        if (tiny[j] - tiny[i]).abs() <= 3.0 {
                            t += 1;
                        }
                    }
                }
                t
            });
        }
    }

    #[test]
    fn distinct_gram_hits_count_repeated_strings() {
        use crate::{RelationBuilder, ValueType};
        let _mode = crate::compat::test_mode_lock();
        let mut b = RelationBuilder::new().attr("s", ValueType::Categorical);
        for i in 0..40 {
            b = b.row(vec![Value::Str(format!("name-{}", i % 8))]);
        }
        let r = b.build().expect("valid relation");
        let s = r.schema().attr_id("s").expect("s");
        let idx = PairIndex::build_attr(&r, s, PairSpec::Edit(1));
        assert_eq!(idx.distinct_gram_hits(), 32, "40 rows over 8 distinct");
        let row_major = crate::compat::force_row_major();
        let reference = PairIndex::build_attr(&r, s, PairSpec::Edit(1));
        drop(row_major);
        assert_eq!(reference.distinct_gram_hits(), 0, "reference counts none");
        assert_eq!(idx.classes(), reference.classes());
        assert_eq!(idx.links(), reference.links());
    }

    #[test]
    fn from_partition_matches_eq_index() {
        use crate::{RelationBuilder, ValueType};
        let mut b = RelationBuilder::new().attr("g", ValueType::Categorical);
        for i in 0..30 {
            b = b.row(vec![Value::Str(format!("g{}", i % 4))]);
        }
        let r = b.build().expect("valid relation");
        let g = r.schema().attr_id("g").expect("g");
        let via_part = PairIndex::from_attrs(&r, crate::AttrSet::single(g));
        let via_build = PairIndex::build(r.column(g), PairSpec::Eq);
        assert_eq!(via_part.n_candidates(), via_build.n_candidates());
        let mut a = Vec::new();
        via_part.for_each_candidate(|i, j| {
            a.push((i, j));
            true
        });
        let mut bs = Vec::new();
        via_build.for_each_candidate(|i, j| {
            bs.push((i, j));
            true
        });
        a.sort_unstable();
        bs.sort_unstable();
        assert_eq!(a, bs);
    }
}
