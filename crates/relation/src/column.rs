//! Dictionary-encoded columns: the columnar storage cell of [`crate::Relation`].
//!
//! A [`Column`] stores one attribute's cells as a dense vector of `u32`
//! *codes* into a per-column *dictionary* of distinct [`Value`]s. Every
//! distinct value — including `Null` — is interned exactly once, in
//! first-appearance order, so:
//!
//! * cell access is two array loads (`&dict[codes[row]]`), no enum cloning;
//! * structural equality of cells is equality of codes (the bijection
//!   between live codes and values is the invariant everything leans on);
//! * repeated CSV cells cost no allocation after the first occurrence
//!   (the parse path interns through [`Column::intern_text`]);
//! * grouping, partitioning and blocking become integer loops over the
//!   code vector instead of `Value` hashing.
//!
//! Alongside the codes a column maintains a null bitmap (one bit per row)
//! and two lazily built views:
//!
//! * a *sorted-run index* ([`ColumnIndex`]): for every dictionary code its
//!   rank under the structural [`Value`] total order (ties impossible:
//!   dictionary entries are distinct) and its rank under
//!   [`Value::numeric_cmp`] with numerically-equal entries collapsed onto
//!   one rank — the currency of order-dependency checks and sorted scans;
//! * packed `f64` / `i64` vectors ([`Column::packed_f64`] /
//!   [`Column::packed_i64`]) when every non-null cell is numeric
//!   (resp. an integer); nulls hold a placeholder (`NaN` / `0`) and are
//!   disambiguated through the bitmap.
//!
//! Lazy views are invalidated by any mutation ([`Column::set`], pushes).

use crate::value::Value;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Chain terminator for the intern hash chains.
const NO_CODE: u32 = u32::MAX;

/// FNV-1a, the workspace's standalone hasher (no `RandomState` seeding, so
/// intern tables are reproducible across runs — determinism contract).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn byte(mut self, b: u8) -> Self {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        self
    }

    fn bytes(mut self, bs: &[u8]) -> Self {
        for &b in bs {
            self = self.byte(b);
        }
        self
    }
}

/// Hash of a value for the intern table. Variants are tagged so `Int(10)`,
/// `Float(10.0)` and `Str("10")` never share a bucket by construction.
fn value_hash(v: &Value) -> u64 {
    match v {
        Value::Null => Fnv::new().byte(0).0,
        Value::Int(i) => Fnv::new().byte(1).bytes(&i.to_le_bytes()).0,
        Value::Float(f) => Fnv::new().byte(2).bytes(&f.get().to_bits().to_le_bytes()).0,
        Value::Str(s) => str_hash(s),
    }
}

/// Hash of a would-be `Value::Str` — identical to `value_hash(&Value::str(s))`
/// without building the value, so CSV cells probe the dictionary borrowed.
fn str_hash(s: &str) -> u64 {
    Fnv::new().byte(3).bytes(s.as_bytes()).0
}

/// The lazily built sorted-run index of a column: per-code ranks under the
/// two orders discovery cares about.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    /// Structural rank: position of each dictionary entry in the sorted
    /// order of [`Value`]'s total `Ord`. Distinct entries, distinct ranks.
    rank: Vec<u32>,
    /// [`Value::numeric_cmp`] rank with numerically equal entries (e.g.
    /// `Int(2)` / `Float(2.0)`) collapsed onto one rank.
    num_rank: Vec<u32>,
}

impl ColumnIndex {
    fn build(dict: &[Value]) -> Self {
        let mut order: Vec<u32> = (0..dict.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| dict[a as usize].cmp(&dict[b as usize]));
        let mut rank = vec![0u32; dict.len()];
        for (pos, &code) in order.iter().enumerate() {
            rank[code as usize] = pos as u32;
        }
        order.sort_unstable_by(|&a, &b| {
            dict[a as usize]
                .numeric_cmp(&dict[b as usize])
                .then(a.cmp(&b))
        });
        let mut num_rank = vec![0u32; dict.len()];
        let mut next = 0u32;
        for (pos, &code) in order.iter().enumerate() {
            if pos > 0 {
                let prev = order[pos - 1] as usize;
                if dict[prev].numeric_cmp(&dict[code as usize]) != std::cmp::Ordering::Equal {
                    next += 1;
                }
            }
            num_rank[code as usize] = next;
        }
        ColumnIndex { rank, num_rank }
    }

    /// Structural rank of a dictionary code.
    #[inline]
    pub fn rank(&self, code: u32) -> u32 {
        self.rank[code as usize]
    }

    /// Numeric-comparison rank of a dictionary code (ties collapsed).
    #[inline]
    pub fn num_rank(&self, code: u32) -> u32 {
        self.num_rank[code as usize]
    }
}

/// Bit-packed code vector: every row's dictionary code stored in a fixed
/// lane of 1, 2, 4, 8 or 16 bits — the narrowest power-of-two width that
/// holds the largest dictionary code. Lane widths divide 64, so no code
/// ever straddles a word boundary and decoding is one load + shift + mask.
///
/// Built lazily ([`Column::packed_codes`]) and only for dictionaries of at
/// most 65536 entries; wider dictionaries gain nothing over the plain
/// `u32` vector. The packed view is a pure re-encoding of
/// [`Column::codes`]: `get(row) == codes()[row]` for every row — the
/// round-trip property the kernel suites pin down.
#[derive(Debug, Clone)]
pub struct PackedCodes {
    words: Vec<u64>,
    /// Lane width in bits: 1, 2, 4, 8 or 16.
    width: u32,
    /// `log2(64 / width)` — lanes per word is a power of two, so row →
    /// (word, lane) splits into a shift and a mask instead of a division.
    pw_shift: u32,
    /// Lane mask: `width` low bits set.
    mask: u64,
    len: usize,
}

/// Largest dictionary for which a packed view is built (16-bit lanes).
pub const PACKED_CODES_MAX_DICT: usize = 1 << 16;

impl PackedCodes {
    /// Pack `codes` given the dictionary size (which bounds every code).
    /// Returns `None` when the dictionary exceeds 16-bit lanes.
    pub fn build(codes: &[u32], dict_len: usize) -> Option<PackedCodes> {
        if dict_len > PACKED_CODES_MAX_DICT {
            return None;
        }
        let width = Self::width_for(dict_len);
        let per_word = 64 / width as usize;
        let mut words = vec![0u64; codes.len().div_ceil(per_word)];
        for (row, &code) in codes.iter().enumerate() {
            let shift = (row % per_word) as u32 * width;
            words[row / per_word] |= u64::from(code) << shift;
        }
        Some(PackedCodes {
            words,
            width,
            pw_shift: (per_word as u32).trailing_zeros(),
            mask: (1u64 << width) - 1,
            len: codes.len(),
        })
    }

    /// Narrowest lane width (1/2/4/8/16 bits) holding codes `< dict_len`.
    fn width_for(dict_len: usize) -> u32 {
        let max_code = dict_len.saturating_sub(1) as u64;
        [1u32, 2, 4, 8, 16]
            .into_iter()
            .find(|&w| w == 64 || max_code < (1u64 << w))
            .unwrap_or(16)
    }

    /// Lane width in bits.
    #[inline]
    pub fn width_bits(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decode one row's code.
    #[inline]
    pub fn get(&self, row: usize) -> u32 {
        debug_assert!(row < self.len);
        let lane = row & ((1usize << self.pw_shift) - 1);
        let shift = lane as u32 * self.width;
        ((self.words[row >> self.pw_shift] >> shift) & self.mask) as u32
    }

    /// Decode every row in order, one word load per `64/width` rows —
    /// the branch-light scan the grouping kernels drive. The iterator
    /// buffers the current word and shifts it in place, so a lane costs a
    /// mask, a shift, and a countdown — no per-lane indexing.
    #[inline]
    pub fn iter(&self) -> PackedCodesIter<'_> {
        PackedCodesIter {
            words: self.words.iter(),
            cur: 0,
            lanes_left: 0,
            per_word: 1 << self.pw_shift,
            width: self.width,
            mask: self.mask,
            remaining: self.len,
        }
    }

    /// Resident footprint of the packed words.
    pub fn approx_bytes(&self) -> u64 {
        (self.words.len() * std::mem::size_of::<u64>()) as u64
    }
}

/// In-order decoder over a [`PackedCodes`] vector (see
/// [`PackedCodes::iter`]).
pub struct PackedCodesIter<'a> {
    words: std::slice::Iter<'a, u64>,
    cur: u64,
    lanes_left: u32,
    per_word: u32,
    width: u32,
    mask: u64,
    remaining: usize,
}

impl Iterator for PackedCodesIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        if self.lanes_left == 0 {
            self.cur = *self.words.next()?;
            self.lanes_left = self.per_word;
        }
        let v = (self.cur & self.mask) as u32;
        self.cur >>= self.width;
        self.lanes_left -= 1;
        self.remaining -= 1;
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedCodesIter<'_> {}

/// Packed numeric views of a column, built lazily on first request.
#[derive(Debug, Clone)]
enum Packed {
    /// Every non-null cell is numeric; nulls hold `NaN`.
    F64(Vec<f64>),
    /// Not all-numeric; no packed view exists.
    None,
}

#[derive(Debug, Clone)]
enum PackedInt {
    /// Every non-null cell is an `Int`; nulls hold `0`.
    I64(Vec<i64>),
    None,
}

/// One dictionary-encoded attribute column. See the module docs.
#[derive(Debug, Default)]
pub struct Column {
    /// Per-row dictionary codes.
    codes: Vec<u32>,
    /// Distinct values, first-appearance order. May contain *orphans*
    /// (entries no row references any more) after [`Column::set`];
    /// consumers that care about live values iterate rows, not the dict.
    dict: Vec<Value>,
    /// Intern table: hash → first code, chained through `chain`.
    lookup: HashMap<u64, u32>,
    /// Per-code: next code with the same hash (`NO_CODE` = end).
    chain: Vec<u32>,
    /// Null bitmap, one bit per row (bit set ⇔ cell is `Null`).
    null_words: Vec<u64>,
    n_nulls: usize,
    /// Lazy sorted-run index; invalidated by mutation.
    index: OnceLock<ColumnIndex>,
    /// Lazy row-major compatibility view; invalidated by mutation.
    values: OnceLock<Vec<Value>>,
    /// Lazy packed numeric views; invalidated by mutation.
    packed_f64: OnceLock<Packed>,
    packed_i64: OnceLock<PackedInt>,
    /// Lazy bit-packed code view (`None` inside = dictionary too wide).
    packed_codes: OnceLock<Option<PackedCodes>>,
}

impl Clone for Column {
    fn clone(&self) -> Self {
        // Lazy views are per-instance caches; the clone re-derives them.
        Column {
            codes: self.codes.clone(),
            dict: self.dict.clone(),
            lookup: self.lookup.clone(),
            chain: self.chain.clone(),
            null_words: self.null_words.clone(),
            n_nulls: self.n_nulls,
            index: OnceLock::new(),
            values: OnceLock::new(),
            packed_f64: OnceLock::new(),
            packed_i64: OnceLock::new(),
            packed_codes: OnceLock::new(),
        }
    }
}

impl PartialEq for Column {
    /// Logical, row-wise equality: two columns are equal when they hold the
    /// same cell values in the same order, regardless of dictionary layout
    /// (mutation histories can permute or orphan dictionary entries).
    fn eq(&self, other: &Self) -> bool {
        if self.codes.len() != other.codes.len() {
            return false;
        }
        if self.dict == other.dict {
            return self.codes == other.codes;
        }
        self.codes
            .iter()
            .zip(&other.codes)
            .all(|(&a, &b)| self.dict[a as usize] == other.dict[b as usize])
    }
}

impl Column {
    /// Fresh empty column.
    pub fn new() -> Self {
        Column::default()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The per-row dictionary codes.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Code of one row.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The dictionary (distinct values in first-appearance order; may
    /// contain orphaned entries after mutation).
    #[inline]
    pub fn dict(&self) -> &[Value] {
        &self.dict
    }

    /// Cell value of one row.
    #[inline]
    pub fn value(&self, row: usize) -> &Value {
        &self.dict[self.codes[row] as usize]
    }

    /// Value of a dictionary code.
    #[inline]
    pub fn dict_value(&self, code: u32) -> &Value {
        &self.dict[code as usize]
    }

    /// Is the cell at `row` null?
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.null_words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of null cells.
    #[inline]
    pub fn null_count(&self) -> usize {
        self.n_nulls
    }

    /// The null bitmap words (bit `row % 64` of word `row / 64`).
    #[inline]
    pub fn null_words(&self) -> &[u64] {
        &self.null_words
    }

    fn invalidate(&mut self) {
        self.index.take();
        self.values.take();
        self.packed_f64.take();
        self.packed_i64.take();
        self.packed_codes.take();
    }

    fn find_or_insert(
        &mut self,
        hash: u64,
        matches: impl Fn(&Value) -> bool,
        make: impl FnOnce() -> Value,
    ) -> u32 {
        match self.lookup.entry(hash) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let mut code = *e.get();
                loop {
                    if matches(&self.dict[code as usize]) {
                        return code;
                    }
                    let next = self.chain[code as usize];
                    if next == NO_CODE {
                        break;
                    }
                    code = next;
                }
                let fresh = self.push_dict(make());
                self.chain[code as usize] = fresh;
                fresh
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let fresh = self.dict.len() as u32;
                e.insert(fresh);
                self.dict.push(make());
                self.chain.push(NO_CODE);
                fresh
            }
        }
    }

    fn push_dict(&mut self, v: Value) -> u32 {
        let code = self.dict.len() as u32;
        self.dict.push(v);
        self.chain.push(NO_CODE);
        code
    }

    /// Intern a value, returning its code (existing or fresh).
    pub fn intern(&mut self, v: Value) -> u32 {
        let hash = value_hash(&v);
        // `v` is moved into `make`, so the probe compares against a clone-free
        // borrow first.
        match &v {
            Value::Null => self.find_or_insert(hash, |d| d.is_null(), || Value::Null),
            Value::Int(i) => {
                let i = *i;
                self.find_or_insert(
                    hash,
                    |d| matches!(d, Value::Int(x) if *x == i),
                    move || Value::Int(i),
                )
            }
            Value::Float(f) => {
                let bits = f.get().to_bits();
                self.find_or_insert(
                    hash,
                    |d| matches!(d, Value::Float(x) if x.get().to_bits() == bits),
                    move || Value::float(f64::from_bits(bits)),
                )
            }
            Value::Str(_) => {
                let Value::Str(s) = v else { unreachable!() };
                let probe = s.clone();
                // One clone per *distinct* string would be ideal; entry-based
                // probing needs the text for comparison and the value for
                // insertion. `intern_text` (the parse path) avoids even that.
                self.find_or_insert(
                    hash,
                    |d| d.as_str() == Some(probe.as_str()),
                    move || Value::Str(s),
                )
            }
        }
    }

    /// Intern a borrowed string cell without allocating unless the value is
    /// new to the dictionary — the CSV hot path.
    pub fn intern_str(&mut self, s: &str) -> u32 {
        let hash = str_hash(s);
        self.find_or_insert(hash, |d| d.as_str() == Some(s), || Value::str(s))
    }

    /// Append a cell by value, interning it.
    pub fn push(&mut self, v: Value) {
        let null = v.is_null();
        let code = self.intern(v);
        self.push_code(code, null);
    }

    /// Append a borrowed string cell (never null; empty strings are kept).
    pub fn push_str(&mut self, s: &str) {
        let code = self.intern_str(s);
        self.push_code(code, false);
    }

    fn push_code(&mut self, code: u32, null: bool) {
        let row = self.codes.len();
        self.codes.push(code);
        if row.is_multiple_of(64) {
            self.null_words.push(0);
        }
        if null {
            self.null_words[row / 64] |= 1u64 << (row % 64);
            self.n_nulls += 1;
        }
        self.invalidate();
    }

    /// Overwrite one cell.
    pub fn set(&mut self, row: usize, v: Value) {
        let was_null = self.is_null(row);
        let null = v.is_null();
        let code = self.intern(v);
        self.codes[row] = code;
        match (was_null, null) {
            (false, true) => {
                self.null_words[row / 64] |= 1u64 << (row % 64);
                self.n_nulls += 1;
            }
            (true, false) => {
                self.null_words[row / 64] &= !(1u64 << (row % 64));
                self.n_nulls -= 1;
            }
            _ => {}
        }
        self.invalidate();
    }

    /// The sorted-run index, built on first use.
    pub fn index(&self) -> &ColumnIndex {
        self.index.get_or_init(|| ColumnIndex::build(&self.dict))
    }

    /// Row-major compatibility view: the column as a `Value` slice.
    /// Materialized (cloning every cell) on first use; prefer code-based
    /// access on hot paths.
    pub fn values(&self) -> &[Value] {
        self.values.get_or_init(|| {
            self.codes
                .iter()
                .map(|&c| self.dict[c as usize].clone())
                .collect()
        })
    }

    /// Packed `f64` view: `Some` iff every non-null cell is numeric.
    /// Null rows hold `NaN`; consult [`Column::is_null`] to tell them from
    /// genuine `NaN` cells.
    pub fn packed_f64(&self) -> Option<&[f64]> {
        let packed = self.packed_f64.get_or_init(|| {
            let mut out = Vec::with_capacity(self.codes.len());
            for (row, &code) in self.codes.iter().enumerate() {
                match self.dict[code as usize].as_f64() {
                    Some(x) => out.push(x),
                    None if self.is_null(row) => out.push(f64::NAN),
                    None => return Packed::None,
                }
            }
            Packed::F64(out)
        });
        match packed {
            Packed::F64(v) => Some(v),
            Packed::None => None,
        }
    }

    /// Bit-packed code view: `Some` iff the dictionary fits 16-bit lanes
    /// (≤ [`PACKED_CODES_MAX_DICT`] entries). Built on first use; a pure
    /// re-encoding of [`Column::codes`] in 1/2/4/8/16-bit lanes that cuts
    /// memory bandwidth for narrow dictionaries on grouping/blocking scans.
    pub fn packed_codes(&self) -> Option<&PackedCodes> {
        self.packed_codes
            .get_or_init(|| PackedCodes::build(&self.codes, self.dict.len()))
            .as_ref()
    }

    /// Packed `i64` view: `Some` iff every non-null cell is an `Int`.
    /// Null rows hold `0`; consult [`Column::is_null`].
    pub fn packed_i64(&self) -> Option<&[i64]> {
        let packed = self.packed_i64.get_or_init(|| {
            let mut out = Vec::with_capacity(self.codes.len());
            for (row, &code) in self.codes.iter().enumerate() {
                match &self.dict[code as usize] {
                    Value::Int(i) => out.push(*i),
                    Value::Null if self.is_null(row) => out.push(0),
                    _ => return PackedInt::None,
                }
            }
            PackedInt::I64(out)
        });
        match packed {
            PackedInt::I64(v) => Some(v),
            PackedInt::None => None,
        }
    }

    /// Rough resident footprint in bytes: codes, dictionary (enum + string
    /// heap), intern table and null bitmap. Lazy views are counted only
    /// once built. An estimate, not an allocator measurement — the same
    /// contract as [`crate::StrippedPartition::approx_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        let mut total = (self.codes.len() * std::mem::size_of::<u32>()) as u64;
        total += (self.dict.len() * std::mem::size_of::<Value>()) as u64;
        for v in &self.dict {
            if let Value::Str(s) = v {
                total += s.len() as u64;
            }
        }
        total += (self.chain.len() * std::mem::size_of::<u32>()) as u64;
        // HashMap entry ≈ key + value + control byte, times a load-factor
        // slack of 8/7 rounded up to 2× for growth headroom.
        total += (self.lookup.len() * (std::mem::size_of::<(u64, u32)>() + 1) * 2) as u64;
        total += (self.null_words.len() * std::mem::size_of::<u64>()) as u64;
        if let Some(ix) = self.index.get() {
            total += ((ix.rank.len() + ix.num_rank.len()) * std::mem::size_of::<u32>()) as u64;
        }
        if let Some(vals) = self.values.get() {
            total += (vals.len() * std::mem::size_of::<Value>()) as u64;
            for v in vals {
                if let Value::Str(s) = v {
                    total += s.len() as u64;
                }
            }
        }
        if let Some(Packed::F64(v)) = self.packed_f64.get() {
            total += (v.len() * std::mem::size_of::<f64>()) as u64;
        }
        if let Some(PackedInt::I64(v)) = self.packed_i64.get() {
            total += (v.len() * std::mem::size_of::<i64>()) as u64;
        }
        if let Some(Some(p)) = self.packed_codes.get() {
            total += p.approx_bytes();
        }
        total
    }

    /// A new column holding the cells of `rows` (in the given order),
    /// its dictionary rebuilt in first-appearance order of the selection.
    pub fn select(&self, rows: &[usize]) -> Column {
        let mut out = Column::new();
        let mut remap = vec![NO_CODE; self.dict.len()];
        for &r in rows {
            let old = self.codes[r] as usize;
            let code = if remap[old] != NO_CODE {
                remap[old]
            } else {
                let fresh = out.intern(self.dict[old].clone());
                remap[old] = fresh;
                fresh
            };
            out.push_code(code, self.is_null(r));
        }
        out
    }

    /// Internal consistency check, used by the fault-resilience and
    /// property suites: every code addresses the dictionary, the dictionary
    /// holds no structural duplicates, every intern chain resolves, and the
    /// null bitmap agrees with the cells.
    ///
    /// # Panics
    /// Panics (with a description) on any violated invariant.
    pub fn debug_validate(&self) {
        assert_eq!(self.chain.len(), self.dict.len(), "chain/dict length");
        assert_eq!(
            self.null_words.len(),
            self.codes.len().div_ceil(64),
            "null bitmap sizing"
        );
        for (i, &c) in self.codes.iter().enumerate() {
            assert!((c as usize) < self.dict.len(), "row {i}: dangling code {c}");
            assert_eq!(
                self.is_null(i),
                self.dict[c as usize].is_null(),
                "row {i}: bitmap disagrees with cell"
            );
        }
        let nulls = (0..self.codes.len()).filter(|&r| self.is_null(r)).count();
        assert_eq!(nulls, self.n_nulls, "null count");
        for (i, a) in self.dict.iter().enumerate() {
            for b in &self.dict[i + 1..] {
                assert_ne!(a, b, "duplicate dictionary entry {a:?}");
            }
        }
        for (code, v) in self.dict.iter().enumerate() {
            // Every dictionary entry must be reachable through the intern
            // table (otherwise re-interning the same value would duplicate).
            let mut cur = *self
                .lookup
                .get(&value_hash(v))
                .unwrap_or_else(|| panic!("dict entry {v:?} missing from intern table"));
            loop {
                if cur as usize == code {
                    break;
                }
                cur = self.chain[cur as usize];
                assert_ne!(cur, NO_CODE, "dict entry {v:?} not on its hash chain");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_preserves_order() {
        let mut c = Column::new();
        for v in ["b", "a", "b", "c", "a"] {
            c.push_str(v);
        }
        assert_eq!(c.dict().len(), 3);
        assert_eq!(c.codes(), &[0, 1, 0, 2, 1]);
        assert_eq!(c.value(3), &Value::str("c"));
        c.debug_validate();
    }

    #[test]
    fn int_float_str_never_conflate() {
        let mut c = Column::new();
        c.push(Value::int(10));
        c.push(Value::float(10.0));
        c.push(Value::str("10"));
        c.push(Value::int(10));
        assert_eq!(c.dict().len(), 3);
        assert_eq!(c.code(0), c.code(3));
        assert_ne!(c.code(0), c.code(1));
        c.debug_validate();
    }

    #[test]
    fn null_bitmap_tracks_cells() {
        let mut c = Column::new();
        for i in 0..130 {
            if i % 3 == 0 {
                c.push(Value::Null);
            } else {
                c.push(Value::int(i));
            }
        }
        assert_eq!(c.null_count(), 44);
        assert!(c.is_null(0) && c.is_null(129) && !c.is_null(1));
        c.set(0, Value::int(7));
        assert_eq!(c.null_count(), 43);
        c.set(1, Value::Null);
        assert_eq!(c.null_count(), 44);
        c.debug_validate();
    }

    #[test]
    fn index_ranks_follow_value_order() {
        let mut c = Column::new();
        for v in [
            Value::str("z"),
            Value::int(5),
            Value::Null,
            Value::float(5.0),
            Value::float(2.5),
        ] {
            c.push(v);
        }
        let ix = c.index();
        // Structural order: Null < 2.5 < 5 (< Int first) < 5.0 < "z".
        let rank_of = |row: usize| ix.rank(c.code(row));
        assert!(rank_of(2) < rank_of(4));
        assert!(rank_of(4) < rank_of(1));
        assert!(rank_of(1) < rank_of(3));
        assert!(rank_of(3) < rank_of(0));
        // numeric_cmp collapses Int(5) and Float(5.0).
        assert_eq!(ix.num_rank(c.code(1)), ix.num_rank(c.code(3)));
        assert_ne!(ix.num_rank(c.code(1)), ix.num_rank(c.code(4)));
    }

    #[test]
    fn packed_views_gate_on_content() {
        let mut nums = Column::new();
        nums.push(Value::int(1));
        nums.push(Value::Null);
        nums.push(Value::float(2.5));
        let f = nums.packed_f64().expect("all-numeric");
        assert_eq!(f[0], 1.0);
        assert!(f[1].is_nan() && nums.is_null(1));
        assert_eq!(f[2], 2.5);
        assert!(nums.packed_i64().is_none(), "2.5 is not an Int");

        let mut ints = Column::new();
        ints.push(Value::int(4));
        ints.push(Value::Null);
        assert_eq!(ints.packed_i64().expect("all-int"), &[4, 0]);

        let mut mixed = Column::new();
        mixed.push(Value::int(1));
        mixed.push(Value::str("x"));
        assert!(mixed.packed_f64().is_none());
    }

    #[test]
    fn mutation_invalidates_lazy_views() {
        let mut c = Column::new();
        c.push(Value::int(1));
        c.push(Value::int(2));
        assert_eq!(c.values(), &[Value::int(1), Value::int(2)]);
        let _ = c.index();
        c.set(0, Value::int(9));
        assert_eq!(c.values(), &[Value::int(9), Value::int(2)]);
        let ix = c.index();
        assert!(ix.rank(c.code(0)) > ix.rank(c.code(1)));
    }

    #[test]
    fn logical_equality_survives_dict_permutation() {
        let mut a = Column::new();
        a.push(Value::str("x"));
        a.push(Value::str("y"));
        let mut b = Column::new();
        // Interns "y" first, permuting the dictionary relative to `a`.
        b.push(Value::str("y"));
        b.push(Value::str("x"));
        assert_ne!(a, b, "different cell order");
        b.set(0, Value::str("x"));
        b.set(1, Value::str("y"));
        assert_eq!(a, b, "same cells, different dictionaries");
    }

    #[test]
    fn packed_codes_round_trip_and_widths() {
        let mut c = Column::new();
        for i in 0..300u32 {
            c.push(Value::int(i64::from(i % 3)));
        }
        let p = c.packed_codes().expect("narrow dictionary packs");
        assert_eq!(p.width_bits(), 2, "3 codes fit 2-bit lanes");
        for (row, &code) in c.codes().iter().enumerate() {
            assert_eq!(p.get(row), code);
        }
        let before = c.approx_bytes();
        c.set(0, Value::int(99));
        assert!(c.packed_codes().is_some(), "rebuilt after mutation");
        assert_eq!(c.packed_codes().map(|p| p.get(0)), Some(c.code(0)));
        let _ = before;
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut c = Column::new();
        let empty = c.approx_bytes();
        for i in 0..100 {
            c.push(Value::Str(format!("value-{i}")));
        }
        let full = c.approx_bytes();
        assert!(full > empty + 100 * 4, "codes + dict bytes counted");
        let before_views = full;
        let _ = c.values();
        assert!(
            c.approx_bytes() > before_views,
            "lazy views charged once built"
        );
    }
}
