//! The interaction between record matching and data repairing
//! (Fan et al., the survey's §3.7.4, refs \[38, 41\]): matching identifies
//! tuples denoting the same entity, repairing fixes values under
//! integrity constraints — and each unlocks the other. A repair can make
//! two records similar enough to match; a match can supply the correct
//! value a repair needs.
//!
//! [`interact`] alternates the two to a fixpoint:
//!
//! 1. **Match** — cluster rows with the MDs; inside each cluster,
//!    *identify* the matching attributes (copy the modal value).
//! 2. **Repair** — run the modal FD repair for the FDs.
//!
//! Each pass only rewrites cells toward modal values, so the loop
//! converges; `max_rounds` bounds pathological rule interplay.

use crate::dedup;
use crate::repair;
use deptree_core::{Fd, Md};
use deptree_relation::{Relation, Value};
use std::collections::HashMap;

/// Outcome of the matching/repairing interaction.
#[derive(Debug)]
pub struct InteractionResult {
    /// The final instance.
    pub relation: Relation,
    /// Cells changed by matching (identification), per round.
    pub match_changes: Vec<usize>,
    /// Cells changed by repairing, per round.
    pub repair_changes: Vec<usize>,
}

impl InteractionResult {
    /// Rounds executed.
    pub fn rounds(&self) -> usize {
        self.match_changes.len()
    }

    /// Total cells changed.
    pub fn total_changes(&self) -> usize {
        self.match_changes.iter().sum::<usize>() + self.repair_changes.iter().sum::<usize>()
    }
}

/// One matching pass: cluster with the MDs, then overwrite each cluster's
/// matching attributes with the cluster's modal value. Returns the number
/// of changed cells.
fn match_pass(r: &mut Relation, mds: &[Md]) -> usize {
    let clustering = dedup::cluster(r, mds);
    let mut by_cluster: HashMap<usize, Vec<usize>> = HashMap::new();
    for (row, &rep) in clustering.cluster.iter().enumerate() {
        by_cluster.entry(rep).or_default().push(row);
    }
    let mut changed = 0usize;
    for md in mds {
        for rows in by_cluster.values() {
            if rows.len() < 2 {
                continue;
            }
            for attr in md.rhs().iter() {
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for &row in rows {
                    *counts.entry(r.value(row, attr)).or_default() += 1;
                }
                let Some(modal) = counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                    .map(|(v, _)| v.clone())
                else {
                    continue; // unreachable: the cluster has rows
                };
                for &row in rows {
                    if r.value(row, attr) != &modal {
                        r.set_value(row, attr, modal.clone());
                        changed += 1;
                    }
                }
            }
        }
    }
    changed
}

/// Run the interaction to a fixpoint (or `max_rounds`).
pub fn interact(r: &Relation, mds: &[Md], fds: &[Fd], max_rounds: usize) -> InteractionResult {
    let mut rel = r.clone();
    let mut match_changes = Vec::new();
    let mut repair_changes = Vec::new();
    for _ in 0..max_rounds {
        let m = match_pass(&mut rel, mds);
        let rep = repair::repair_fds(&rel, fds, 5);
        let rc = rep.changes.len();
        rel = rep.relation;
        match_changes.push(m);
        repair_changes.push(rc);
        if m == 0 && rc == 0 {
            break;
        }
    }
    InteractionResult {
        relation: rel,
        match_changes,
        repair_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_metrics::Metric;
    use deptree_relation::{AttrSet, RelationBuilder, ValueType};

    /// The Fan et al. motivating shape: two records of one entity where
    /// (a) a typo'd key blocks the FD repair from seeing them as one
    /// group, and (b) only matching-then-repairing fixes everything.
    ///
    ///   name        phone      city
    ///   "M. Smith"  555-1234   NYC
    ///   "M. Smyth"  555-1234   LA      ← same person, wrong city
    ///   "J. Doe"    555-9999   SF
    ///   "J. Doe"    555-9999   SF
    fn crm() -> Relation {
        RelationBuilder::new()
            .attr("name", ValueType::Text)
            .attr("phone", ValueType::Categorical)
            .attr("city", ValueType::Text)
            .row(vec!["M. Smith".into(), "555-1234".into(), "NYC".into()])
            .row(vec!["M. Smyth".into(), "555-1234".into(), "LA".into()])
            .row(vec!["J. Doe".into(), "555-9999".into(), "SF".into()])
            .row(vec!["J. Doe".into(), "555-9999".into(), "SF".into()])
            .build()
            .unwrap()
    }

    fn rules(r: &Relation) -> (Vec<Md>, Vec<Fd>) {
        let s = r.schema();
        // MD: similar names + equal phones identify the name.
        let md = Md::new(
            s,
            vec![
                (s.id("name"), Metric::Levenshtein, 1.0),
                (s.id("phone"), Metric::Equality, 0.0),
            ],
            AttrSet::single(s.id("name")),
        );
        // FD: name → city.
        let fd = Fd::parse(s, "name -> city").unwrap();
        (vec![md], vec![fd])
    }

    #[test]
    fn interaction_fixes_what_either_alone_misses() {
        let r = crm();
        let (mds, fds) = rules(&r);

        // Repair alone: "M. Smith" and "M. Smyth" are different FD groups,
        // so the wrong city survives.
        let repair_only = repair::repair_fds(&r, &fds, 5);
        let s = r.schema();
        assert_ne!(
            repair_only.relation.value(0, s.id("city")),
            repair_only.relation.value(1, s.id("city")),
            "repair alone cannot unify the cities"
        );

        // Interaction: matching identifies the names; the FD repair then
        // merges the cities.
        let result = interact(&r, &mds, &fds, 5);
        let rel = &result.relation;
        assert_eq!(rel.value(0, s.id("name")), rel.value(1, s.id("name")));
        assert_eq!(rel.value(0, s.id("city")), rel.value(1, s.id("city")));
        for fd in &fds {
            assert!(fd.holds(rel));
        }
        for md in &mds {
            assert!(md.holds(rel));
        }
        assert!(result.rounds() >= 2); // match+repair, then a clean round
        assert!(result.total_changes() >= 2); // one name + one city
    }

    #[test]
    fn clean_data_is_a_one_round_noop() {
        let r = crm();
        let (mds, fds) = rules(&r);
        let fixed = interact(&r, &mds, &fds, 5).relation;
        // Run again on the already-consistent output.
        let second = interact(&fixed, &mds, &fds, 5);
        assert_eq!(second.rounds(), 1);
        assert_eq!(second.total_changes(), 0);
        assert_eq!(second.relation, fixed);
    }

    #[test]
    fn bounded_rounds_respected() {
        let r = crm();
        let (mds, fds) = rules(&r);
        let result = interact(&r, &mds, &fds, 1);
        assert_eq!(result.rounds(), 1);
    }
}
