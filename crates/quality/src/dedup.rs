//! Record matching / deduplication with matching dependencies (Table 3,
//! §3.7.4): MD-similar pairs are merge candidates; transitive closure via
//! union–find yields entity clusters.

use deptree_core::engine::{obs, Exec, Outcome};
use deptree_core::{pairs, Md};
use deptree_relation::pairgen::PairSpec;
use deptree_relation::{AttrSet, Relation, StrippedPartition};

/// Disjoint-set forest over row indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Find with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union by rank; returns true if the sets were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// The result of clustering with a set of matching rules.
#[derive(Debug)]
pub struct Clustering {
    /// `cluster[row]` = canonical representative (smallest row index).
    pub cluster: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Are two rows in the same cluster?
    pub fn same(&self, a: usize, b: usize) -> bool {
        self.cluster[a] == self.cluster[b]
    }
}

/// Cluster rows: any MD-similar pair is merged; clusters are the
/// connected components.
pub fn cluster(r: &Relation, mds: &[Md]) -> Clustering {
    cluster_bounded(r, mds, &Exec::unbounded()).result
}

/// Budgeted [`cluster`]: each MD's scan is charged as row ticks up front
/// (one per candidate pair its index enumerates, or one per row for the
/// partition fast path), and each merge costs a node tick. On exhaustion
/// remaining MDs (or merges) are skipped: every union already performed is
/// witnessed by a genuine MD-similar pair, so a partial clustering only
/// *under*-merges — it never places two rows in the same cluster without
/// evidence (`complete == false` signals possible over-segmentation).
///
/// An MD whose LHS atoms are all plain equality is resolved without pair
/// enumeration at all: its matching pairs are exactly the classes of the
/// LHS partition, and a spanning chain per class (`c − 1` unions instead
/// of `c(c−1)/2`) produces the same connected components. Everything else
/// streams candidates from the most selective
/// [`deptree_core::pairs::best_index`]. Full (unbudgeted) results equal
/// [`cluster_naive`]'s exactly.
pub fn cluster_bounded(r: &Relation, mds: &[Md], exec: &Exec) -> Outcome<Clustering> {
    let mut uf = UnionFind::new(r.n_rows());
    let mut span = exec.span("dedup.rules");
    span.attr("rules", mds.len() as u64);
    'rules: for md in mds {
        if let Some(part) = eq_lhs_partition(r, md) {
            if !exec.tick_rows(r.n_rows() as u64) {
                break 'rules;
            }
            // The partition fast path is blocking too: each LHS class is a
            // block and only within-class pairs are candidates. Publish the
            // same pruning-power counters the index path reports, computed
            // analytically up front so interruption below cannot skew them.
            let candidates: u64 = part
                .classes()
                .iter()
                .map(|c| (c.len() as u64) * (c.len() as u64 - 1) / 2)
                .sum();
            let n = r.n_rows() as u64;
            let naive = n * n.saturating_sub(1) / 2;
            let m = obs::engine_metrics();
            m.pairgen_blocks.add(part.classes().len() as u64);
            m.pairgen_candidate_pairs.add(candidates);
            m.pairgen_pruned_pairs.add(naive.saturating_sub(candidates));
            for class in part.classes() {
                for w in class.windows(2) {
                    if !exec.tick_node() {
                        break 'rules;
                    }
                    uf.union(w[0], w[1]);
                }
            }
            continue;
        }
        let idx = pairs::best_index(r, md.lhs());
        if !exec.tick_rows(idx.n_candidates()) {
            break 'rules;
        }
        let mut exhausted = false;
        idx.for_each_candidate(|i, j| {
            if md.lhs_similar(r, i, j) {
                if !exec.tick_node() {
                    exhausted = true;
                    return false;
                }
                uf.union(i, j);
            }
            true
        });
        if exhausted {
            break 'rules;
        }
    }
    exec.finish(canonicalize(&mut uf, r.n_rows()))
}

/// The LHS partition when every determinant atom is plain structural
/// equality (its pair spec is [`PairSpec::Eq`]); `None` otherwise, or for
/// an empty LHS (which matches *all* pairs, not just within-class ones).
fn eq_lhs_partition(r: &Relation, md: &Md) -> Option<StrippedPartition> {
    if md.lhs().is_empty() {
        return None;
    }
    let mut attrs = AttrSet::empty();
    for (a, m, t) in md.lhs() {
        if !matches!(m.pair_spec(*t), PairSpec::Eq) {
            return None;
        }
        attrs = attrs.insert(*a);
    }
    Some(StrippedPartition::from_attrs(r, attrs))
}

/// Reference clustering over the full `O(n²)` pair scan; kept as the
/// differential-test and benchmark baseline for [`cluster`].
pub fn cluster_naive(r: &Relation, mds: &[Md]) -> Clustering {
    let mut uf = UnionFind::new(r.n_rows());
    for md in mds {
        for (i, j) in md.matching_pairs_naive(r) {
            uf.union(i, j);
        }
    }
    canonicalize(&mut uf, r.n_rows())
}

fn canonicalize(uf: &mut UnionFind, n: usize) -> Clustering {
    let mut canon: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut cluster = vec![0usize; n];
    for (row, slot) in cluster.iter_mut().enumerate() {
        let root = uf.find(row);
        let rep = *canon.entry(root).or_insert(row);
        *slot = rep;
    }
    let n_clusters = canon.len();
    Clustering {
        cluster,
        n_clusters,
    }
}

/// Visit every unordered row pair `(i, j)`, `i < j`, of an `n`-row
/// domain. The single home for the clustering-audit pair loop (scoring
/// and the under-merge checks in tests).
pub fn for_each_row_pair(n: usize, mut f: impl FnMut(usize, usize)) {
    for i in 0..n {
        for j in (i + 1)..n {
            f(i, j);
        }
    }
}

/// Pairwise precision/recall of a clustering against ground truth labels.
pub fn pairwise_score(clustering: &Clustering, truth: &[usize]) -> (f64, f64) {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for_each_row_pair(truth.len(), |i, j| {
        let pred = clustering.same(i, j);
        let real = truth[i] == truth[j];
        match (pred, real) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    });
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_metrics::Metric;
    use deptree_relation::examples::hotels_r1;
    use deptree_relation::AttrSet;
    use deptree_synth::{entities, EntitiesConfig};

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        assert!(uf.union(1, 4));
        assert_eq!(uf.find(0), uf.find(3));
    }

    #[test]
    fn r1_name_variants_cluster_together() {
        // Table 1's pairs ("New Center" / "New Center Hotel", …) share
        // addresses; an MD on address similarity clusters each pair.
        let r = hotels_r1();
        let s = r.schema();
        let md = Md::new(
            s,
            vec![(s.id("address"), Metric::Levenshtein, 4.0)],
            AttrSet::single(s.id("name")),
        );
        let c = cluster(&r, std::slice::from_ref(&md));
        assert!(c.same(0, 1)); // New Center twins
        assert!(c.same(2, 3)); // St. Regis twins
        assert!(c.same(4, 5)); // West Wood twins
        assert!(c.same(6, 7)); // Christina twins (similar addresses)
        assert!(!c.same(0, 2));
        // "#3, West Lake Rd." and "No.7, West Lake Rd." are themselves
        // within edit distance 4, so the St. Regis and Christina groups
        // merge — the over-merging risk of loose thresholds.
        assert!(c.same(2, 6));
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn synthetic_entities_recovered() {
        let cfg = EntitiesConfig {
            n_entities: 50,
            max_duplicates: 3,
            variety: 0.7,
            error_rate: 0.0,
            seed: 61,
        };
        let data = entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        // zip is entity-identifying in the generator; name similarity
        // bridges format variants.
        let md = Md::new(
            s,
            vec![(s.id("zip"), Metric::Equality, 0.0)],
            AttrSet::single(s.id("name")),
        );
        let c = cluster(&data.relation, std::slice::from_ref(&md));
        let (precision, recall) = pairwise_score(&c, &data.cluster);
        assert!(recall >= 0.99, "recall {recall}");
        // Zips can collide across entities (modular arithmetic), so allow
        // slight precision loss.
        assert!(precision >= 0.9, "precision {precision}");
    }

    #[test]
    fn bounded_cluster_only_under_merges() {
        use deptree_core::engine::{Budget, Exec};
        let r = hotels_r1();
        let s = r.schema();
        let md = Md::new(
            s,
            vec![(s.id("address"), Metric::Levenshtein, 4.0)],
            AttrSet::single(s.id("name")),
        );
        let full = cluster(&r, std::slice::from_ref(&md));
        let exec = Exec::new(Budget::default().with_max_nodes(2));
        let partial = cluster_bounded(&r, std::slice::from_ref(&md), &exec);
        assert!(!partial.complete);
        // Every merge in the partial clustering also exists in the full
        // one: budget exhaustion can only over-segment, never over-merge.
        for_each_row_pair(r.n_rows(), |i, j| {
            if partial.result.same(i, j) {
                assert!(full.same(i, j), "spurious merge {i},{j}");
            }
        });
        assert!(partial.result.n_clusters >= full.n_clusters);
    }

    #[test]
    fn indexed_cluster_matches_naive() {
        // Covers the partition fast path (all-equality LHS), the edit
        // distance index, and a multi-rule mix.
        let r = hotels_r1();
        let s = r.schema();
        let eq_md = Md::new(
            s,
            vec![(s.id("region"), Metric::Equality, 0.0)],
            AttrSet::single(s.id("name")),
        );
        let edit_md = Md::new(
            s,
            vec![(s.id("address"), Metric::Levenshtein, 4.0)],
            AttrSet::single(s.id("name")),
        );
        let rule_sets: Vec<Vec<Md>> = vec![
            vec![eq_md.clone()],
            vec![edit_md.clone()],
            vec![eq_md, edit_md],
        ];
        for mds in &rule_sets {
            let fast = cluster(&r, mds);
            let slow = cluster_naive(&r, mds);
            assert_eq!(fast.cluster, slow.cluster);
            assert_eq!(fast.n_clusters, slow.n_clusters);
        }
        let cfg = EntitiesConfig {
            n_entities: 30,
            max_duplicates: 3,
            variety: 0.7,
            error_rate: 0.1,
            seed: 17,
        };
        let data = entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let mds = vec![Md::new(
            s,
            vec![(s.id("zip"), Metric::Equality, 0.0)],
            AttrSet::single(s.id("name")),
        )];
        let fast = cluster(&data.relation, &mds);
        let slow = cluster_naive(&data.relation, &mds);
        assert_eq!(fast.cluster, slow.cluster);
    }

    #[test]
    fn no_rules_no_merges() {
        let r = hotels_r1();
        let c = cluster(&r, &[]);
        assert_eq!(c.n_clusters, r.n_rows());
        let truth = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let (p, rec) = pairwise_score(&c, &truth);
        assert_eq!(p, 1.0); // vacuous precision
        assert_eq!(rec, 0.0);
    }
}
