//! Model fairness via MVDs (Salimi et al., §2.6.4 / Table 3): causal
//! fairness of training data reduces to the MVD `X ↠ Y` — the protected
//! attributes `Y` must be conditionally independent of the rest given the
//! admissible attributes `X` — and enforcing it is a database repair.

use deptree_core::Mvd;
use deptree_relation::{Relation, Value};
use std::collections::HashSet;

/// Measure the fairness violation: the number of missing "interventional"
/// tuples — recombinations `(x, y, z)` the conditional-independence MVD
/// requires but the data lacks. Zero means the dataset is (saturation-)
/// fair w.r.t. the MVD.
pub fn fairness_violation(r: &Relation, mvd: &Mvd) -> usize {
    mvd.spurious_tuples(r)
}

/// Saturation repair: *insert* the missing recombinations so the MVD holds
/// — the tuple-generating repair direction (every per-`X` group becomes
/// the cross product of its `Y` and `Z` projections). Returns the repaired
/// relation and the number of inserted tuples.
pub fn saturate(r: &Relation, mvd: &Mvd) -> (Relation, usize) {
    let z = mvd.z(r);
    let mut rel = r.clone();
    let mut inserted = 0usize;
    for rows in r.group_by(mvd.x()).values() {
        let x_vals = r.project_row(rows[0], mvd.x());
        let ys: HashSet<Vec<Value>> = rows.iter().map(|&t| r.project_row(t, mvd.y())).collect();
        let zs: HashSet<Vec<Value>> = rows.iter().map(|&t| r.project_row(t, z)).collect();
        let present: HashSet<(Vec<Value>, Vec<Value>)> = rows
            .iter()
            .map(|&t| (r.project_row(t, mvd.y()), r.project_row(t, z)))
            .collect();
        for yv in &ys {
            for zv in &zs {
                if present.contains(&(yv.clone(), zv.clone())) {
                    continue;
                }
                // Assemble the full tuple in schema order.
                let mut tuple = vec![Value::Null; r.n_attrs()];
                for (i, a) in mvd.x().iter().enumerate() {
                    tuple[a.index()] = x_vals[i].clone();
                }
                for (i, a) in mvd.y().iter().enumerate() {
                    tuple[a.index()] = yv[i].clone();
                }
                for (i, a) in z.iter().enumerate() {
                    tuple[a.index()] = zv[i].clone();
                }
                if rel.push_row(tuple).is_ok() {
                    inserted += 1;
                }
            }
        }
    }
    (rel, inserted)
}

/// Deletion repair: *remove* tuples until the MVD holds, greedily deleting
/// from the smallest offending `(Y, Z)` blocks — useful when synthetic
/// insertion is unacceptable (e.g. label columns). Returns the repaired
/// relation and the deleted row indices.
pub fn prune(r: &Relation, mvd: &Mvd) -> (Relation, Vec<usize>) {
    // Keep, per X-group, only the tuples of the largest Y-block crossed
    // with the Z values present in that block — a simple sufficient
    // strategy: restrict each group to a single Y value (independence
    // holds trivially when |Y| = 1 per group).
    let mut keep: Vec<usize> = Vec::new();
    let mut deleted: Vec<usize> = Vec::new();
    for rows in r.group_by(mvd.x()).values() {
        let mut blocks: std::collections::HashMap<Vec<Value>, Vec<usize>> =
            std::collections::HashMap::new();
        for &t in rows {
            blocks.entry(r.project_row(t, mvd.y())).or_default().push(t);
        }
        let Some((_, keep_rows)) = blocks
            .iter()
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then_with(|| b.0.cmp(a.0)))
        else {
            continue; // unreachable: every group has at least one row
        };
        let keep_set: HashSet<usize> = keep_rows.iter().copied().collect();
        for &t in rows {
            if keep_set.contains(&t) {
                keep.push(t);
            } else {
                deleted.push(t);
            }
        }
    }
    keep.sort_unstable();
    deleted.sort_unstable();
    (r.select_rows(&keep), deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::{AttrSet, RelationBuilder, ValueType};

    /// Hiring data where gender correlates with outcome given the
    /// admissible attribute (department): the classic Simpson's-paradox
    /// setup Salimi et al. repair.
    fn hiring() -> Relation {
        RelationBuilder::new()
            .attr("dept", ValueType::Categorical)
            .attr("gender", ValueType::Categorical)
            .attr("hired", ValueType::Categorical)
            .row(vec!["eng".into(), "m".into(), "yes".into()])
            .row(vec!["eng".into(), "m".into(), "no".into()])
            .row(vec!["eng".into(), "f".into(), "no".into()])
            .row(vec!["sales".into(), "f".into(), "yes".into()])
            .build()
            .unwrap()
    }

    fn fairness_mvd(r: &Relation) -> Mvd {
        let s = r.schema();
        Mvd::new(
            s,
            AttrSet::single(s.id("dept")),
            AttrSet::single(s.id("gender")),
        )
    }

    #[test]
    fn violation_measured() {
        let r = hiring();
        let mvd = fairness_mvd(&r);
        // eng group: genders {m, f} × outcomes {yes, no} = 4 combos,
        // 3 present → 1 missing (f, yes).
        assert_eq!(fairness_violation(&r, &mvd), 1);
        assert!(!mvd.holds(&r));
    }

    #[test]
    fn saturation_restores_independence() {
        let r = hiring();
        let mvd = fairness_mvd(&r);
        let (fixed, inserted) = saturate(&r, &mvd);
        assert_eq!(inserted, 1);
        assert_eq!(fixed.n_rows(), 5);
        assert!(mvd.holds(&fixed));
        assert_eq!(fairness_violation(&fixed, &mvd), 0);
        // The inserted tuple is the missing (eng, f, yes).
        let s = fixed.schema();
        let last = fixed.n_rows() - 1;
        assert_eq!(fixed.value(last, s.id("dept")), &Value::str("eng"));
        assert_eq!(fixed.value(last, s.id("gender")), &Value::str("f"));
        assert_eq!(fixed.value(last, s.id("hired")), &Value::str("yes"));
    }

    #[test]
    fn pruning_restores_independence_by_deletion() {
        let r = hiring();
        let mvd = fairness_mvd(&r);
        let (fixed, deleted) = prune(&r, &mvd);
        assert!(!deleted.is_empty());
        let mvd2 = fairness_mvd(&fixed);
        assert!(mvd2.holds(&fixed), "{fixed:?}");
        // Deletion keeps the majority gender block in eng: the two m rows.
        assert_eq!(fixed.n_rows(), 3);
    }

    #[test]
    fn already_fair_data_untouched() {
        let r = RelationBuilder::new()
            .attr("dept", ValueType::Categorical)
            .attr("gender", ValueType::Categorical)
            .attr("hired", ValueType::Categorical)
            .row(vec!["eng".into(), "m".into(), "yes".into()])
            .row(vec!["eng".into(), "f".into(), "yes".into()])
            .row(vec!["eng".into(), "m".into(), "no".into()])
            .row(vec!["eng".into(), "f".into(), "no".into()])
            .build()
            .unwrap();
        let mvd = fairness_mvd(&r);
        assert!(mvd.holds(&r));
        let (sat, inserted) = saturate(&r, &mvd);
        assert_eq!(inserted, 0);
        assert_eq!(sat.n_rows(), 4);
    }
}
