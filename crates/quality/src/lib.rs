//! Data-quality applications of the dependency family — the survey's
//! aspect (d) and every column of Table 3:
//!
//! | Module | Table 3 task | Dependencies exercised |
//! |---|---|---|
//! | [`detect`] | Violation detection | any [`deptree_core::Dependency`] |
//! | [`repair`] | Data repairing | FDs/CFDs (equivalence classes), DCs (violation hypergraph), ODs/SDs (order/gap repairs) |
//! | [`dedup`] | Data deduplication | MDs/CDs/DDs with union-find clustering |
//! | [`impute`] | Missing-value imputation | NEDs (P-neighborhood), DDs (similarity neighbors) |
//! | [`interact`] | §3.7.4 matching ⇄ repairing interaction | MDs + FDs/CFDs to a fixpoint |
//! | [`cqa`] | Consistent query answering | FDs/DCs |
//! | [`normalize`] | Schema normalization | FDs (3NF/BCNF), MVDs (4NF), FHDs |
//! | [`optimize`] | Query optimization | SFDs (joint statistics), NUDs (cardinality bounds), ODs (sort-order elimination) |
//! | [`fairness`] | Model fairness | MVDs as conditional-independence repairs |
//! | [`stream`] | §5.3 temporal future work | speed constraints with SCREEN-style repair |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cqa;
pub mod dedup;
pub mod detect;
pub mod fairness;
pub mod impute;
pub mod interact;
pub mod normalize;
pub mod optimize;
pub mod repair;
pub mod stream;
