//! Schema normalization (Table 3): attribute closures, candidate keys,
//! minimal covers, BCNF/3NF with FDs, and 4NF / hierarchical
//! decompositions with MVDs and FHDs — the classical applications the
//! survey's §1 roots the whole family in.

use deptree_core::{Fd, Fhd, Mvd};
use deptree_relation::{AttrSet, Relation, Schema};

/// The closure `X⁺` of an attribute set under a set of FDs (Armstrong).
pub fn closure(x: AttrSet, fds: &[Fd]) -> AttrSet {
    let mut out = x;
    loop {
        let mut grew = false;
        for fd in fds {
            if fd.lhs().is_subset(out) && !fd.rhs().is_subset(out) {
                out = out.union(fd.rhs());
                grew = true;
            }
        }
        if !grew {
            return out;
        }
    }
}

/// Is `X` a superkey of the schema (its closure covers everything)?
pub fn is_superkey(x: AttrSet, all: AttrSet, fds: &[Fd]) -> bool {
    all.is_subset(closure(x, fds))
}

/// Logical implication: does the FD set entail `fd` (Armstrong)?
/// `Σ ⊨ X → Y  ⇔  Y ⊆ X⁺`.
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    fd.rhs().is_subset(closure(fd.lhs(), fds))
}

/// Are two FD sets logically equivalent (each implies all of the other)?
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

/// All candidate keys (minimal superkeys), by breadth-first search over
/// subset sizes. Exponential in the worst case — key-size decision is
/// NP-complete (§1.4.2) — but fine at schema scale.
pub fn candidate_keys(all: AttrSet, fds: &[Fd]) -> Vec<AttrSet> {
    let attrs = all.to_vec();
    let mut keys: Vec<AttrSet> = Vec::new();
    for mask in 0u64..(1 << attrs.len()) {
        let x: AttrSet = attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &a)| a)
            .collect();
        if keys.iter().any(|k| k.is_subset(x)) {
            continue;
        }
        if is_superkey(x, all, fds) {
            keys.retain(|k| !x.is_subset(*k));
            keys.push(x);
        }
    }
    keys.sort();
    keys
}

/// Minimal cover: single-attribute RHS, no extraneous LHS attributes, no
/// redundant FDs.
pub fn minimal_cover(schema: &Schema, fds: &[Fd]) -> Vec<Fd> {
    // 1. Split RHS.
    let mut cover: Vec<Fd> = fds
        .iter()
        .flat_map(|fd| {
            fd.rhs()
                .iter()
                .map(|a| Fd::new(schema, fd.lhs(), AttrSet::single(a)))
                .collect::<Vec<_>>()
        })
        .filter(|fd| !fd.is_trivial())
        .collect();
    // 2. Remove extraneous LHS attributes.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..cover.len() {
            for a in cover[i].lhs().iter() {
                let reduced = cover[i].lhs().remove(a);
                if cover[i].rhs().is_subset(closure(reduced, &cover)) {
                    cover[i] = Fd::new(schema, reduced, cover[i].rhs());
                    changed = true;
                    break;
                }
            }
        }
    }
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover.remove(i);
        if fd.rhs().is_subset(closure(fd.lhs(), &cover)) {
            // redundant — keep it removed, stay at i.
        } else {
            cover.insert(i, fd);
            i += 1;
        }
    }
    cover.sort_by_key(|fd| (fd.lhs(), fd.rhs()));
    cover.dedup();
    cover
}

/// A decomposition step: the resulting sub-schemas as attribute sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Attribute sets of the decomposed relations.
    pub fragments: Vec<AttrSet>,
}

/// BCNF decomposition: repeatedly split on a violating FD `X → Y`
/// (X not a superkey) into `X ∪ Y` and `R − Y`. Lossless by construction.
pub fn bcnf_decompose(all: AttrSet, fds: &[Fd]) -> Decomposition {
    let mut fragments = vec![all];
    let mut done = false;
    while !done {
        done = true;
        'outer: for i in 0..fragments.len() {
            let frag = fragments[i];
            for fd in fds {
                let lhs = fd.lhs().intersect(frag);
                // Project the FD onto the fragment via closures.
                let rhs = closure(lhs, fds).intersect(frag).difference(lhs);
                if lhs.is_empty() || rhs.is_empty() {
                    continue;
                }
                if !frag.is_subset(closure(lhs, fds)) {
                    // lhs → rhs violates BCNF within frag.
                    fragments[i] = lhs.union(rhs);
                    fragments.push(frag.difference(rhs));
                    done = false;
                    break 'outer;
                }
            }
        }
    }
    fragments.sort();
    fragments.dedup();
    // Remove fragments contained in others.
    let snapshot = fragments.clone();
    fragments.retain(|f| !snapshot.iter().any(|g| f != g && f.is_subset(*g)));
    Decomposition { fragments }
}

/// 3NF synthesis from a minimal cover: one fragment per distinct LHS
/// (merging same-LHS FDs) plus a key fragment if no fragment contains one.
pub fn synthesize_3nf(schema: &Schema, all: AttrSet, fds: &[Fd]) -> Decomposition {
    let cover = minimal_cover(schema, fds);
    let mut fragments: Vec<AttrSet> = Vec::new();
    for fd in &cover {
        let frag = fd.lhs().union(fd.rhs());
        if let Some(existing) = fragments.iter_mut().find(|f| {
            // merge same-LHS fragments
            cover
                .iter()
                .any(|g| g.lhs() == fd.lhs() && g.lhs().union(g.rhs()).is_subset(**f))
        }) {
            *existing = existing.union(frag);
        } else {
            fragments.push(frag);
        }
    }
    let keys = candidate_keys(all, &cover);
    if !fragments
        .iter()
        .any(|f| keys.iter().any(|k| k.is_subset(*f)))
    {
        if let Some(k) = keys.first() {
            fragments.push(*k);
        }
    }
    // Attributes in no FD still need a home.
    let covered = fragments.iter().fold(AttrSet::empty(), |a, f| a.union(*f));
    let loose = all.difference(covered);
    if !loose.is_empty() {
        fragments.push(loose.union(keys.first().copied().unwrap_or_default()));
    }
    let snapshot = fragments.clone();
    fragments.retain(|f| !snapshot.iter().any(|g| f != g && f.is_proper_subset(*g)));
    fragments.sort();
    fragments.dedup();
    Decomposition { fragments }
}

/// Is the decomposition of `r` along `fragments` lossless (the join of the
/// projections reproduces exactly the original tuples)? Verified
/// instance-level by counting: join size == distinct tuple count.
pub fn is_lossless(r: &Relation, fragments: &[AttrSet]) -> bool {
    // Fold pairwise joins via the MVD/FHD spurious-tuple counters when the
    // fragments share a common intersection chain; for the general case we
    // materialize the join on the instance (fine at test scale).
    let mut joined: Vec<Vec<deptree_relation::Value>> = vec![vec![]];
    let mut joined_attrs = AttrSet::empty();
    for &frag in fragments {
        let proj: std::collections::HashSet<Vec<deptree_relation::Value>> = (0..r.n_rows())
            .map(|row| r.project_row(row, frag))
            .collect();
        let common = joined_attrs.intersect(frag);
        let mut next = Vec::new();
        for j in &joined {
            for p in &proj {
                // Check agreement on common attributes.
                let agree = common.iter().all(|a| {
                    // `common` is the intersection, so both positions hit.
                    let (Some(ji), Some(pi)) = (
                        joined_attrs.iter().position(|x| x == a),
                        frag.iter().position(|x| x == a),
                    ) else {
                        return false;
                    };
                    j.get(ji) == p.get(pi)
                });
                if agree {
                    // Merge tuples.
                    let mut merged = j.clone();
                    for (pi, a) in frag.iter().enumerate() {
                        if !joined_attrs.contains(a) {
                            merged.push(p[pi].clone());
                        }
                    }
                    next.push(merged);
                }
            }
        }
        // Reorder columns: new attrs appended in frag order — track order.
        joined = next;
        joined_attrs = joined_attrs.union(frag);
    }
    // Compare against the original distinct tuples projected to
    // joined_attrs (== all attrs when fragments cover the schema).
    let original: std::collections::HashSet<Vec<deptree_relation::Value>> = (0..r.n_rows())
        .map(|row| r.project_row(row, joined_attrs))
        .collect();
    // The join column order may differ from schema order; normalize by
    // sorting each tuple's (attr, value) pairs. Build attr order of join:
    let mut join_order: Vec<deptree_relation::AttrId> = Vec::new();
    for &frag in fragments {
        for a in frag.iter() {
            if !join_order.contains(&a) {
                join_order.push(a);
            }
        }
    }
    let reorder = |tuple: &[deptree_relation::Value]| -> Vec<deptree_relation::Value> {
        let mut pairs: Vec<(deptree_relation::AttrId, deptree_relation::Value)> = join_order
            .iter()
            .zip(tuple)
            .map(|(&a, v)| (a, v.clone()))
            .collect();
        pairs.sort_by_key(|(a, _)| *a);
        pairs.into_iter().map(|(_, v)| v).collect()
    };
    let joined_set: std::collections::HashSet<Vec<deptree_relation::Value>> =
        joined.iter().map(|t| reorder(t)).collect();
    joined_set == original
}

/// 4NF check: does any given MVD violate 4NF in the full schema
/// (nontrivial MVD whose LHS is not a superkey)?
pub fn violates_4nf(all: AttrSet, mvd: &Mvd, fds: &[Fd]) -> bool {
    !mvd.y().is_empty()
        && !mvd.x().union(mvd.y()).is_subset(mvd.x())
        && !is_superkey(mvd.x(), all, fds)
}

/// 4NF decomposition along one violating MVD: `X ∪ Y` and `X ∪ Z`.
pub fn decompose_mvd(all: AttrSet, mvd: &Mvd) -> Decomposition {
    let z = all.difference(mvd.x()).difference(mvd.y());
    Decomposition {
        fragments: vec![mvd.x().union(mvd.y()), mvd.x().union(z)],
    }
}

/// Hierarchical decomposition along an FHD: `X ∪ Y₁`, …, `X ∪ Yₖ`,
/// `X ∪ rest`.
pub fn decompose_fhd(r: &Relation, fhd: &Fhd) -> Decomposition {
    let mut fragments: Vec<AttrSet> = fhd.ys().iter().map(|&y| fhd.x().union(y)).collect();
    let rest = fhd.rest(r);
    if !rest.is_empty() {
        fragments.push(fhd.x().union(rest));
    }
    Decomposition { fragments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r5;
    use deptree_relation::{RelationBuilder, ValueType};

    fn schema_abcd() -> Schema {
        Schema::from_attrs([
            ("A", ValueType::Categorical),
            ("B", ValueType::Categorical),
            ("C", ValueType::Categorical),
            ("D", ValueType::Categorical),
        ])
    }

    #[test]
    fn closure_and_keys_textbook() {
        // A → B, B → C over {A, B, C, D}: key is {A, D}.
        let s = schema_abcd();
        let fds = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "B -> C").unwrap(),
        ];
        let a = AttrSet::single(s.id("A"));
        assert_eq!(
            closure(a, &fds),
            AttrSet::from_ids([s.id("A"), s.id("B"), s.id("C")])
        );
        let all = AttrSet::full(4);
        let keys = candidate_keys(all, &fds);
        assert_eq!(keys, vec![AttrSet::from_ids([s.id("A"), s.id("D")])]);
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        // {A → B, B → C, A → C}: A → C is redundant.
        let s = schema_abcd();
        let fds = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "B -> C").unwrap(),
            Fd::parse(&s, "A -> C").unwrap(),
        ];
        let cover = minimal_cover(&s, &fds);
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|fd| fd.to_string() != "FD: A -> C"));
        // Extraneous LHS: {A, B} → C reduces to B → C given B → C… test
        // the reduction path with AB → C alone plus A → B.
        let fds2 = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "A, B -> C").unwrap(),
        ];
        let cover2 = minimal_cover(&s, &fds2);
        assert!(cover2
            .iter()
            .any(|fd| fd.lhs().len() == 1 && fd.rhs() == AttrSet::single(s.id("C"))));
    }

    #[test]
    fn bcnf_splits_on_violation() {
        // A → B with key {A, C}… actually A → B violates BCNF in
        // {A, B, C} when A is not a superkey.
        let s = Schema::from_attrs([
            ("A", ValueType::Categorical),
            ("B", ValueType::Categorical),
            ("C", ValueType::Categorical),
        ]);
        let fds = vec![Fd::parse(&s, "A -> B").unwrap()];
        let d = bcnf_decompose(AttrSet::full(3), &fds);
        assert_eq!(d.fragments.len(), 2);
        assert!(d
            .fragments
            .contains(&AttrSet::from_ids([s.id("A"), s.id("B")])));
        assert!(d
            .fragments
            .contains(&AttrSet::from_ids([s.id("A"), s.id("C")])));
    }

    #[test]
    fn bcnf_decomposition_is_lossless_on_instance() {
        let r = hotels_r5();
        let s = r.schema();
        // Decompose along address → name (holds on r5: every address has
        // the single name "Hyatt").
        let fd = Fd::parse(s, "address -> name").unwrap();
        assert!(fd.holds(&r));
        let d = bcnf_decompose(r.all_attrs(), std::slice::from_ref(&fd));
        assert!(d.fragments.len() >= 2, "{d:?}");
        assert!(is_lossless(&r, &d.fragments), "{d:?}");
    }

    #[test]
    fn lossy_decomposition_detected() {
        // Splitting r5 into {name, region} and {address, rate} loses the
        // association (no shared attributes → cross product).
        let r = hotels_r5();
        let s = r.schema();
        let frags = vec![
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            AttrSet::from_ids([s.id("address"), s.id("rate")]),
        ];
        assert!(!is_lossless(&r, &frags));
    }

    #[test]
    fn synthesize_3nf_covers_all_attributes() {
        let s = schema_abcd();
        let fds = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "B -> C").unwrap(),
        ];
        let d = synthesize_3nf(&s, AttrSet::full(4), &fds);
        let union = d
            .fragments
            .iter()
            .fold(AttrSet::empty(), |a, f| a.union(*f));
        assert_eq!(union, AttrSet::full(4));
        // A key fragment {A, D} must exist.
        assert!(d
            .fragments
            .iter()
            .any(|f| AttrSet::from_ids([s.id("A"), s.id("D")]).is_subset(*f)));
    }

    #[test]
    fn fourth_normal_form_flow() {
        // course ↠ teacher in {course, teacher, book} with no FDs: 4NF
        // violation; decomposition is lossless on a product instance.
        let r = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "ann".into(), "date".into()])
            .row(vec!["db".into(), "bob".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "date".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let mvd = Mvd::new(
            s,
            AttrSet::single(s.id("course")),
            AttrSet::single(s.id("teacher")),
        );
        assert!(mvd.holds(&r));
        assert!(violates_4nf(r.all_attrs(), &mvd, &[]));
        let d = decompose_mvd(r.all_attrs(), &mvd);
        assert_eq!(d.fragments.len(), 2);
        assert!(is_lossless(&r, &d.fragments));
    }

    #[test]
    fn armstrong_axioms_through_implication() {
        let s = schema_abcd();
        let ab = AttrSet::from_ids([s.id("A"), s.id("B")]);
        // Reflexivity: AB → A.
        assert!(implies(&[], &Fd::new(&s, ab, AttrSet::single(s.id("A")))));
        let fds = vec![Fd::parse(&s, "A -> B").unwrap()];
        // Augmentation: A → B entails AC → BC.
        let ac = AttrSet::from_ids([s.id("A"), s.id("C")]);
        let bc = AttrSet::from_ids([s.id("B"), s.id("C")]);
        assert!(implies(&fds, &Fd::new(&s, ac, bc)));
        // Transitivity: A → B, B → C entails A → C.
        let fds2 = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "B -> C").unwrap(),
        ];
        assert!(implies(&fds2, &Fd::parse(&s, "A -> C").unwrap()));
        // Non-entailment.
        assert!(!implies(&fds2, &Fd::parse(&s, "C -> A").unwrap()));
    }

    #[test]
    fn minimal_cover_is_equivalent_to_input() {
        let s = schema_abcd();
        let fds = vec![
            Fd::parse(&s, "A -> B").unwrap(),
            Fd::parse(&s, "B -> C").unwrap(),
            Fd::parse(&s, "A -> C").unwrap(),
            Fd::parse(&s, "A, B -> D").unwrap(),
        ];
        let cover = minimal_cover(&s, &fds);
        assert!(equivalent(&fds, &cover));
        assert!(cover.len() < fds.len() + 1);
    }

    #[test]
    fn fhd_decomposition_lossless() {
        let r = RelationBuilder::new()
            .attr("emp", ValueType::Categorical)
            .attr("project", ValueType::Categorical)
            .attr("skill", ValueType::Categorical)
            .row(vec!["e1".into(), "p1".into(), "s1".into()])
            .row(vec!["e1".into(), "p1".into(), "s2".into()])
            .row(vec!["e1".into(), "p2".into(), "s1".into()])
            .row(vec!["e1".into(), "p2".into(), "s2".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let fhd = Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![
                AttrSet::single(s.id("project")),
                AttrSet::single(s.id("skill")),
            ],
        );
        assert!(fhd.holds(&r));
        let d = decompose_fhd(&r, &fhd);
        assert_eq!(d.fragments.len(), 2);
        assert!(is_lossless(&r, &d.fragments));
    }
}
