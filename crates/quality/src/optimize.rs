//! Query-optimization applications (Table 3): SFD joint statistics for
//! selectivity estimation (§2.1.4), NUD cardinality bounds (§2.4.3), and
//! OD sort-order/index elimination (§4.2.4).

use deptree_core::{Dependency, Nud, Od};
use deptree_relation::{AttrId, AttrSet, Relation, Value};

/// Estimate the selectivity of `σ_{a = va ∧ b = vb}` two ways:
///
/// * `independent` — the textbook attribute-value-independence estimate
///   `sel(a) × sel(b)`;
/// * `joint` — using the joint distinct statistics an optimizer would
///   collect for columns CORDS flags as soft-FD-correlated: the actual
///   fraction of rows matching both.
///
/// The gap between them on correlated columns is exactly the estimation
/// error SFDs exist to eliminate (§2.1.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityEstimate {
    /// Independence-assumption estimate.
    pub independent: f64,
    /// Joint-statistics estimate (exact on the instance).
    pub joint: f64,
}

/// Compute both estimates for a conjunctive equality predicate.
pub fn conjunctive_selectivity(
    r: &Relation,
    a: AttrId,
    va: &Value,
    b: AttrId,
    vb: &Value,
) -> SelectivityEstimate {
    let n = r.n_rows() as f64;
    if n == 0.0 {
        return SelectivityEstimate {
            independent: 0.0,
            joint: 0.0,
        };
    }
    let sel =
        |attr: AttrId, v: &Value| r.column(attr).iter().filter(|x| *x == v).count() as f64 / n;
    let both = (0..r.n_rows())
        .filter(|&row| r.value(row, a) == va && r.value(row, b) == vb)
        .count() as f64
        / n;
    SelectivityEstimate {
        independent: sel(a, va) * sel(b, vb),
        joint: both,
    }
}

/// NUD-based projection-size bound (§2.4.3): if `X →ₖ Y` holds, then
/// `|π_{X∪Y}(r)| ≤ k · |π_X(r)|`. Returns `(bound, actual)` so callers
/// can check tightness.
pub fn projection_size_bound(r: &Relation, nud: &Nud) -> (usize, usize) {
    let dist_x = r.distinct_count(nud.lhs());
    let actual = r.distinct_count(nud.lhs().union(nud.rhs()));
    (nud.k() * dist_x, actual)
}

/// NUD-based aggregate-view cardinality bound: a `GROUP BY X` view joined
/// with its `Y` associations has at most `k · |π_X|` rows.
pub fn aggregate_view_bound(r: &Relation, nud: &Nud) -> usize {
    nud.k() * r.distinct_count(nud.lhs())
}

/// OD sort-order elimination (§4.2.4): data sorted on the OD's LHS is
/// already sorted on its RHS, so a sort (or secondary index) on the RHS
/// can be elided. Returns true when the optimization is sound on this
/// instance — i.e. the OD holds.
pub fn can_elide_sort(r: &Relation, od: &Od) -> bool {
    od.holds(r)
}

/// Verify the elision concretely: sort by the OD's LHS and check the RHS
/// sequence is ordered in its marked direction (ties broken arbitrarily).
pub fn verify_elided_order(r: &Relation, od: &Od) -> bool {
    let lhs_attrs: AttrSet = od.lhs().iter().map(|(a, _)| *a).collect();
    let order = r.sorted_rows(lhs_attrs);
    for w in order.windows(2) {
        for &(attr, dir) in od.rhs() {
            let ord = r.value(w[0], attr).numeric_cmp(r.value(w[1], attr));
            let ok = match dir {
                deptree_core::Direction::Asc => ord != std::cmp::Ordering::Greater,
                deptree_core::Direction::Desc => ord != std::cmp::Ordering::Less,
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Direction;
    use deptree_relation::examples::hotels_r7;
    use deptree_synth::{categorical, CategoricalConfig};

    #[test]
    fn correlated_columns_break_independence() {
        // K0 determines D0: the joint selectivity of a consistent (k, d)
        // pair is sel(k), but independence predicts sel(k)·sel(d) — an
        // underestimate by ~domain size.
        let cfg = CategoricalConfig {
            n_rows: 2000,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 20,
            error_rate: 0.0,
            seed: 91,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let k = AttrId(0);
        let d = AttrId(1);
        let vk = r.value(0, k).clone();
        let vd = r.value(0, d).clone();
        let est = conjunctive_selectivity(r, k, &vk, d, &vd);
        // Joint ≈ sel(k) ≈ 1/20; independent ≈ 1/400.
        assert!(est.joint > est.independent * 5.0, "{est:?}");
    }

    #[test]
    fn independent_columns_agree() {
        let cfg = CategoricalConfig {
            n_rows: 4000,
            n_key_attrs: 2,
            n_dep_attrs: 0,
            domain: 10,
            error_rate: 0.0,
            seed: 92,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let vk = r.value(0, AttrId(0)).clone();
        let vd = r.value(0, AttrId(1)).clone();
        let est = conjunctive_selectivity(r, AttrId(0), &vk, AttrId(1), &vd);
        // Within 3× of each other on genuinely independent columns.
        assert!(est.joint <= est.independent * 3.0 + 0.01, "{est:?}");
        assert!(est.independent <= est.joint * 3.0 + 0.01, "{est:?}");
    }

    #[test]
    fn nud_bounds_hold_and_are_tight_for_planted_data() {
        use deptree_relation::examples::hotels_r5;
        let r = hotels_r5();
        let s = r.schema();
        let nud = Nud::new(
            s,
            AttrSet::single(s.id("address")),
            AttrSet::single(s.id("region")),
            2,
        );
        assert!(nud.holds(&r));
        let (bound, actual) = projection_size_bound(&r, &nud);
        assert!(actual <= bound);
        assert_eq!(bound, 4); // 2 addresses × k=2
        assert_eq!(actual, 3);
        assert_eq!(aggregate_view_bound(&r, &nud), 4);
    }

    #[test]
    fn od_sort_elision_on_r7() {
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("subtotal"), Direction::Asc)],
        );
        assert!(can_elide_sort(&r, &od));
        assert!(verify_elided_order(&r, &od));
        // Break it.
        let mut r2 = r.clone();
        r2.set_value(0, s.id("subtotal"), 9999.into());
        let od2 = Od::new(
            r2.schema(),
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("subtotal"), Direction::Asc)],
        );
        assert!(!can_elide_sort(&r2, &od2));
        assert!(!verify_elided_order(&r2, &od2));
    }
}
