//! Missing-value imputation (Table 3): the P-neighborhood method of NEDs
//! (§3.2.4), DD-based candidate enrichment (§3.3.4), and QPIAD-style AFD
//! distributions over possible values (§2.3.4).

use deptree_core::{Afd, Dd, Ned};
use deptree_relation::{AttrId, Relation, Value};
use std::collections::HashMap;

/// Predict the value of `target` for `row` by the *P-neighborhood* method
/// (Bassée–Wijsen): among rows agreeing with `row` on the NED's left-hand
/// predicate, take the most frequent `target` value. Returns `None` when
/// the row has no neighbors with a known value.
pub fn p_neighborhood_predict(
    r: &Relation,
    ned: &Ned,
    row: usize,
    target: AttrId,
) -> Option<Value> {
    let mut counts: HashMap<&Value, usize> = HashMap::new();
    for other in 0..r.n_rows() {
        if other == row {
            continue;
        }
        let pair_ok = ned.lhs().iter().all(|atom| atom.agrees(r, row, other));
        if pair_ok {
            let v = r.value(other, target);
            if !v.is_null() {
                *counts.entry(v).or_default() += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(v, _)| v.clone())
}

/// DD-based candidate enrichment (Song et al.): for a null cell, collect
/// the values of `target` from all rows compatible with the DD's LHS —
/// these are the *imputation candidates* the similarity rule licenses,
/// ranked by frequency.
pub fn dd_candidates(r: &Relation, dd: &Dd, row: usize, target: AttrId) -> Vec<(Value, usize)> {
    let mut counts: HashMap<Value, usize> = HashMap::new();
    for other in 0..r.n_rows() {
        if other == row {
            continue;
        }
        if dd.lhs_compatible(r, row, other) {
            let v = r.value(other, target);
            if !v.is_null() {
                *counts.entry(v.clone()).or_default() += 1;
            }
        }
    }
    let mut out: Vec<(Value, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// QPIAD-style value distribution (Wolf et al., §2.3.4): given an AFD
/// `X →ε A` mined from the data, the probability distribution over the
/// possible values of a null `A`-cell is the empirical distribution of
/// `A` among the rows sharing the tuple's `X`-values. Sorted by
/// probability (descending), probabilities sum to 1; empty when the tuple
/// has no informative neighbors.
pub fn afd_value_distribution(r: &Relation, afd: &Afd, row: usize) -> Vec<(Value, f64)> {
    let lhs = afd.embedded().lhs();
    let Some(target) = afd.embedded().rhs().min() else {
        return Vec::new(); // no dependent attribute, nothing to impute
    };
    let mut counts: HashMap<&Value, usize> = HashMap::new();
    let mut total = 0usize;
    for other in 0..r.n_rows() {
        if other == row || !r.rows_agree(row, other, lhs) {
            continue;
        }
        let v = r.value(other, target);
        if !v.is_null() {
            *counts.entry(v).or_default() += 1;
            total += 1;
        }
    }
    let mut out: Vec<(Value, f64)> = counts
        .into_iter()
        .map(|(v, c)| (v.clone(), c as f64 / total as f64))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Fill every null in `target` using the P-neighborhood prediction.
/// Returns the number of cells filled (cells with no neighbors stay null).
pub fn impute_column(r: &mut Relation, ned: &Ned, target: AttrId) -> usize {
    let nulls: Vec<usize> = (0..r.n_rows())
        .filter(|&row| r.value(row, target).is_null())
        .collect();
    let mut filled = 0usize;
    for row in nulls {
        if let Some(v) = p_neighborhood_predict(r, ned, row, target) {
            r.set_value(row, target, v);
            filled += 1;
        }
    }
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{DiffAtom, NedAtom};
    use deptree_metrics::Metric;
    use deptree_relation::examples::hotels_r6;
    use deptree_synth::{entities, EntitiesConfig};

    fn region_ned(r: &Relation) -> Ned {
        // Neighbors on street similarity predict the region.
        let s = r.schema();
        Ned::new(
            s,
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 2.0)],
            vec![NedAtom::new(s.id("region"), Metric::Equality, 0.0)],
        )
    }

    #[test]
    fn predicts_region_from_street_neighbors() {
        let mut r = hotels_r6();
        let s = r.schema().clone();
        let region = s.id("region");
        // Erase t6's region; its street neighbors t2, t5 are San Jose.
        r.set_value(5, region, Value::Null);
        let ned = region_ned(&r);
        let predicted = p_neighborhood_predict(&r, &ned, 5, region);
        assert_eq!(predicted, Some(Value::str("San Jose")));
        let filled = impute_column(&mut r, &ned, region);
        assert_eq!(filled, 1);
        assert_eq!(r.value(5, region), &Value::str("San Jose"));
    }

    #[test]
    fn no_neighbors_no_prediction() {
        let mut r = hotels_r6();
        let s = r.schema().clone();
        let region = s.id("region");
        // t4 ("61st St.") has no street within distance 2.
        r.set_value(3, region, Value::Null);
        let ned = region_ned(&r);
        assert_eq!(p_neighborhood_predict(&r, &ned, 3, region), None);
        let filled = impute_column(&mut r, &ned, region);
        assert_eq!(filled, 0);
        assert!(r.value(3, region).is_null());
    }

    #[test]
    fn dd_candidates_ranked_by_frequency() {
        let mut r = hotels_r6();
        let s = r.schema().clone();
        let zip = s.id("zip");
        r.set_value(5, zip, Value::Null);
        let dd = Dd::new(
            &s,
            vec![DiffAtom::at_most(s.id("region"), Metric::Levenshtein, 0.0)],
            vec![DiffAtom::at_most(zip, Metric::Equality, 0.0)],
        );
        let candidates = dd_candidates(&r, &dd, 5, zip);
        // Both San Jose rows vote 95102.
        assert_eq!(candidates.first(), Some(&(Value::str("95102"), 2)));
    }

    #[test]
    fn afd_distribution_reflects_group_frequencies() {
        use deptree_core::Fd;
        use deptree_relation::{RelationBuilder, ValueType};
        // A Gateway Boulevard group with a 2-vs-1 region split and one
        // null to impute: distribution 2/3 vs 1/3.
        let r = RelationBuilder::new()
            .attr("address", ValueType::Text)
            .attr("region", ValueType::Text)
            .row(vec!["6030 Gateway".into(), "El Paso".into()])
            .row(vec!["6030 Gateway".into(), "El Paso".into()])
            .row(vec!["6030 Gateway".into(), "El Paso, TX".into()])
            .row(vec!["6030 Gateway".into(), Value::Null])
            .row(vec!["elsewhere".into(), "Boston".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let afd = Afd::new(Fd::parse(s, "address -> region").unwrap(), 0.5);
        let dist = afd_value_distribution(&r, &afd, 3);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].0, Value::str("El Paso"));
        assert!((dist[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist.iter().map(|(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-12);
        // A row with no group-mates gets no distribution.
        let lonely = afd_value_distribution(&r, &afd, 4);
        assert!(lonely.is_empty());
    }

    #[test]
    fn afd_distribution_point_mass_under_exact_fd() {
        use deptree_core::Fd;
        let r = hotels_r6();
        let s = r.schema();
        // street → zip holds exactly on r6: any row's distribution over
        // zip is a point mass.
        let afd = Afd::new(Fd::parse(s, "street -> zip").unwrap(), 0.0);
        let dist = afd_value_distribution(&r, &afd, 1); // t2, street 12th St.
        assert_eq!(dist, vec![(Value::str("95102"), 1.0)]);
    }

    #[test]
    fn imputation_accuracy_on_synthetic_entities() {
        // Exact-name neighborhoods: entity names are unique, so every
        // neighbor is a true duplicate — filled values must all be correct,
        // and rows with a surviving duplicate must get filled.
        let cfg = EntitiesConfig {
            n_entities: 60,
            max_duplicates: 3,
            variety: 0.0,
            error_rate: 0.0,
            seed: 71,
        };
        let mut data = entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema().clone();
        let zip = s.id("zip");
        // Blank out every third zip; remember the truth.
        let mut truth = Vec::new();
        for row in (0..data.relation.n_rows()).step_by(3) {
            truth.push((row, data.relation.value(row, zip).clone()));
            data.relation.set_value(row, zip, Value::Null);
        }
        let ned = Ned::new(
            &s,
            vec![NedAtom::new(s.id("name"), Metric::Levenshtein, 0.0)],
            vec![NedAtom::new(zip, Metric::Equality, 0.0)],
        );
        let filled = impute_column(&mut data.relation, &ned, zip);
        // Every filled value is correct.
        for (row, v) in &truth {
            let got = data.relation.value(*row, zip);
            assert!(got.is_null() || got == v, "wrong fill at {row}");
        }
        // Rows whose entity has a surviving (un-blanked) duplicate with
        // the zip intact get filled: count those.
        let fillable = truth
            .iter()
            .filter(|(row, _)| {
                (0..data.relation.n_rows()).any(|other| {
                    other != *row
                        && data.cluster[other] == data.cluster[*row]
                        && !data.relation.value(other, zip).is_null()
                })
            })
            .count();
        assert_eq!(filled, fillable, "all fillable rows filled");
        assert!(fillable > 0);
    }
}
