//! Speed constraints over timestamped streams — the survey's §5.3 future
//! direction (Song et al.'s SCREEN, reference \[97\]): where SDs bound the
//! *gap* between consecutive positions, speed constraints bound the *rate*
//! `(y_j − y_i) / (t_j − t_i)`, which is the natural form for sensor data
//! with irregular timestamps.

use deptree_relation::{AttrId, AttrSet, Relation, Value};

/// A speed constraint `s = (s_min, s_max)`: for consecutive readings
/// (ordered by timestamp), the rate of change must fall in
/// `[s_min, s_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedConstraint {
    /// Minimum rate (may be negative or `-∞`).
    pub min: f64,
    /// Maximum rate.
    pub max: f64,
}

impl SpeedConstraint {
    /// Build a constraint.
    ///
    /// # Panics
    /// Panics if `min > max` or either bound is NaN.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(!min.is_nan() && !max.is_nan(), "NaN speed bound");
        assert!(min <= max, "invalid speed constraint [{min}, {max}]");
        SpeedConstraint { min, max }
    }

    /// Symmetric constraint `[-s, s]` — the common "value cannot change
    /// faster than s per time unit" form.
    pub fn symmetric(s: f64) -> Self {
        assert!(s >= 0.0, "symmetric speed must be non-negative");
        SpeedConstraint { min: -s, max: s }
    }
}

/// The readings of `(t_attr, y_attr)` ordered by timestamp, with rows
/// carrying non-numeric cells skipped. Ties on the timestamp keep the
/// first reading only (a sensor cannot report twice at the same instant;
/// later duplicates are treated as noise and ignored for rate purposes).
fn series(r: &Relation, t_attr: AttrId, y_attr: AttrId) -> Vec<(usize, f64, f64)> {
    let order = r.sorted_rows(AttrSet::single(t_attr));
    let mut out: Vec<(usize, f64, f64)> = Vec::new();
    for &row in &order {
        let (Some(t), Some(y)) = (r.value(row, t_attr).as_f64(), r.value(row, y_attr).as_f64())
        else {
            continue;
        };
        if out.last().is_some_and(|&(_, lt, _)| lt == t) {
            continue;
        }
        out.push((row, t, y));
    }
    out
}

/// Consecutive-pair speed violations: `(row_i, row_j, rate)` outside the
/// constraint.
pub fn speed_violations(
    r: &Relation,
    t_attr: AttrId,
    y_attr: AttrId,
    sc: SpeedConstraint,
) -> Vec<(usize, usize, f64)> {
    let pts = series(r, t_attr, y_attr);
    pts.windows(2)
        .filter_map(|w| {
            let (ri, ti, yi) = w[0];
            let (rj, tj, yj) = w[1];
            let rate = (yj - yi) / (tj - ti);
            (!(sc.min..=sc.max).contains(&rate)).then_some((ri, rj, rate))
        })
        .collect()
}

/// SCREEN-style streaming repair: process readings in timestamp order;
/// each value is clamped into the window its (repaired) predecessor
/// admits, `[y'ᵢ₋₁ + s_min·Δt, y'ᵢ₋₁ + s_max·Δt]` — the minimum-change
/// online repair under speed constraints. Returns the repaired relation
/// and the changed rows.
pub fn screen_repair(
    r: &Relation,
    t_attr: AttrId,
    y_attr: AttrId,
    sc: SpeedConstraint,
) -> (Relation, Vec<usize>) {
    let pts = series(r, t_attr, y_attr);
    let mut rel = r.clone();
    let mut changed = Vec::new();
    let mut prev: Option<(f64, f64)> = None; // (t, repaired y)
    for (row, t, y) in pts {
        let fixed = match prev {
            None => y,
            Some((pt, py)) => {
                let dt = t - pt;
                let lo = py + sc.min * dt;
                let hi = py + sc.max * dt;
                let mut v = y.clamp(lo, hi);
                // Guard against rounding pushing the stored rate outside
                // the bound.
                while (v - py) / dt > sc.max {
                    v = f64::next_down(v);
                }
                while (v - py) / dt < sc.min {
                    v = f64::next_up(v);
                }
                v
            }
        };
        if fixed != y {
            rel.set_value(row, y_attr, Value::float(fixed));
            changed.push(row);
        }
        prev = Some((t, fixed));
    }
    (rel, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::{RelationBuilder, ValueType};

    /// Irregularly sampled temperature-like series with one spike.
    fn sensor() -> Relation {
        RelationBuilder::new()
            .attr("ts", ValueType::Numeric)
            .attr("temp", ValueType::Numeric)
            .row(vec![0.into(), 20.0.into()])
            .row(vec![2.into(), 21.0.into()]) // rate 0.5
            .row(vec![3.into(), 90.0.into()]) // rate 69 — spike
            .row(vec![7.into(), 23.0.into()]) // rate −16.75 from the spike
            .row(vec![10.into(), 24.0.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn violations_located_with_rates() {
        let r = sensor();
        let s = r.schema();
        let sc = SpeedConstraint::symmetric(2.0);
        let v = speed_violations(&r, s.id("ts"), s.id("temp"), sc);
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].0, v[0].1), (1, 2));
        assert!((v[0].2 - 69.0).abs() < 1e-9);
        assert_eq!((v[1].0, v[1].1), (2, 3));
    }

    #[test]
    fn screen_repair_fixes_the_spike_only() {
        let r = sensor();
        let s = r.schema();
        let sc = SpeedConstraint::symmetric(2.0);
        let (fixed, changed) = screen_repair(&r, s.id("ts"), s.id("temp"), sc);
        assert!(speed_violations(&fixed, s.id("ts"), s.id("temp"), sc).is_empty());
        // Only the spike row needs to change: 90 → 21 + 2·1 = 23, and the
        // following reading (23 at t=7) is then reachable (rate 0).
        assert_eq!(changed, vec![2]);
        assert_eq!(fixed.value(2, s.id("temp")).as_f64(), Some(23.0));
        // Untouched values stay identical.
        assert_eq!(fixed.value(0, s.id("temp")), r.value(0, s.id("temp")));
        assert_eq!(fixed.value(4, s.id("temp")), r.value(4, s.id("temp")));
    }

    #[test]
    fn irregular_timestamps_scale_the_window() {
        // A big jump is legal when the time gap is large enough.
        let r = RelationBuilder::new()
            .attr("ts", ValueType::Numeric)
            .attr("v", ValueType::Numeric)
            .row(vec![0.into(), 0.into()])
            .row(vec![100.into(), 150.into()]) // rate 1.5 ≤ 2
            .build()
            .unwrap();
        let s = r.schema();
        let sc = SpeedConstraint::symmetric(2.0);
        assert!(speed_violations(&r, s.id("ts"), s.id("v"), sc).is_empty());
        let (_, changed) = screen_repair(&r, s.id("ts"), s.id("v"), sc);
        assert!(changed.is_empty());
    }

    #[test]
    fn asymmetric_constraint() {
        // Monotone non-decreasing with rate ≤ 1 (e.g. a counter).
        let r = RelationBuilder::new()
            .attr("ts", ValueType::Numeric)
            .attr("count", ValueType::Numeric)
            .row(vec![0.into(), 0.into()])
            .row(vec![1.into(), 1.into()])
            .row(vec![2.into(), 0.into()]) // decreases: violation
            .build()
            .unwrap();
        let s = r.schema();
        let sc = SpeedConstraint::new(0.0, 1.0);
        let v = speed_violations(&r, s.id("ts"), s.id("count"), sc);
        assert_eq!(v.len(), 1);
        let (fixed, _) = screen_repair(&r, s.id("ts"), s.id("count"), sc);
        assert!(speed_violations(&fixed, s.id("ts"), s.id("count"), sc).is_empty());
        // The decreased reading is lifted back to the window floor (1.0).
        assert_eq!(fixed.value(2, s.id("count")).as_f64(), Some(1.0));
    }

    #[test]
    fn duplicate_timestamps_skipped() {
        let r = RelationBuilder::new()
            .attr("ts", ValueType::Numeric)
            .attr("v", ValueType::Numeric)
            .row(vec![0.into(), 0.into()])
            .row(vec![0.into(), 999.into()]) // same instant: ignored
            .row(vec![1.into(), 1.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let sc = SpeedConstraint::symmetric(2.0);
        assert!(speed_violations(&r, s.id("ts"), s.id("v"), sc).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid speed constraint")]
    fn inverted_bounds_rejected() {
        SpeedConstraint::new(2.0, 1.0);
    }
}
