//! Violation detection: evaluate a rule set against an instance and score
//! the result against ground truth — the engine behind the survey's
//! precision/recall discussion of §2.7 (approximate rules raise recall but
//! drag precision; conditional rules have high precision but bounded
//! recall).

use deptree_core::{Dependency, Violation};
use deptree_relation::{AttrId, Relation};
use std::collections::HashSet;

/// A violation attributed to the rule that raised it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Index of the rule in the rule set.
    pub rule: usize,
    /// The witness.
    pub violation: Violation,
}

/// The result of running a rule set over an instance.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, rule by rule.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Distinct `(row, attr)` cells implicated by any finding.
    pub fn flagged_cells(&self) -> HashSet<(usize, AttrId)> {
        let mut out = HashSet::new();
        for f in &self.findings {
            for &row in &f.violation.rows {
                for attr in f.violation.attrs.iter() {
                    out.insert((row, attr));
                }
            }
        }
        out
    }

    /// Distinct rows implicated.
    pub fn flagged_rows(&self) -> HashSet<usize> {
        self.findings
            .iter()
            .flat_map(|f| f.violation.rows.iter().copied())
            .collect()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// No findings?
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every rule against the instance.
///
/// Each rule's [`Dependency::violations`] does its own candidate
/// generation: the MD/NED/DD implementations enumerate from blocking or
/// similarity indexes and the OD check is sorted, so detection inherits
/// the sub-quadratic paths without any work here.
pub fn run(r: &Relation, rules: &[Box<dyn Dependency>]) -> Report {
    let mut findings = Vec::new();
    for (idx, rule) in rules.iter().enumerate() {
        for violation in rule.violations(r) {
            findings.push(Finding {
                rule: idx,
                violation,
            });
        }
    }
    Report { findings }
}

/// Precision/recall of flagged cells against ground-truth dirty cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of flagged cells that are truly dirty.
    pub precision: f64,
    /// Fraction of dirty cells that were flagged.
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Score a report at cell granularity. A flagged cell counts as a true
/// positive when its `(row, attr)` is in the ground truth; because a
/// pairwise witness implicates both rows while only one is usually dirty,
/// cell-level precision naturally sits below 1 even for perfect rules —
/// matching the survey's framing.
pub fn score_cells(report: &Report, truth: &[(usize, AttrId)]) -> PrecisionRecall {
    let truth: HashSet<(usize, AttrId)> = truth.iter().copied().collect();
    let flagged = report.flagged_cells();
    let tp = flagged.intersection(&truth).count() as f64;
    let precision = if flagged.is_empty() {
        1.0
    } else {
        tp / flagged.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp / truth.len() as f64
    };
    PrecisionRecall { precision, recall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{Fd, Md};
    use deptree_metrics::Metric;
    use deptree_relation::examples::hotels_r1;
    use deptree_relation::AttrSet;
    use deptree_synth::{categorical, CategoricalConfig};

    /// §1.2's narrative as a measurable experiment: on r1, the strict FD
    /// has a false positive (t5/t6) and a false negative (t7/t8); the MD
    /// with similarity on address fixes both.
    #[test]
    fn fd_vs_md_precision_recall_on_r1() {
        let r = hotels_r1();
        let s = r.schema();
        let region = s.id("region");
        // Ground truth: the t3/t4 error and the t7/t8 error (one dirty
        // region cell each; we mark both rows' region cells as candidates).
        let truth = vec![(3usize, region), (7usize, region)];

        let fd: Box<dyn Dependency> = Box::new(Fd::parse(s, "address -> region").unwrap());
        let fd_report = run(&r, std::slice::from_ref(&fd));
        let fd_score = score_cells(&fd_report, &truth);

        let md: Box<dyn Dependency> = Box::new(Md::new(
            s,
            vec![(s.id("address"), Metric::Levenshtein, 4.0)],
            AttrSet::single(region),
        ));
        let md_report = run(&r, std::slice::from_ref(&md));
        let md_score = score_cells(&md_report, &truth);

        // The FD misses t7/t8 entirely: recall ≤ 1/2.
        assert!(fd_score.recall <= 0.5, "{fd_score:?}");
        // The MD finds both errors: strictly better recall.
        assert!(
            md_score.recall > fd_score.recall,
            "{md_score:?} vs {fd_score:?}"
        );
        assert!(md_score.f1() > fd_score.f1());
    }

    #[test]
    fn clean_data_produces_empty_report() {
        let cfg = CategoricalConfig {
            n_rows: 200,
            error_rate: 0.0,
            ..Default::default()
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let rules: Vec<Box<dyn Dependency>> = data
            .planted_fds
            .iter()
            .map(|&(l, rh)| {
                Box::new(Fd::new(
                    data.relation.schema(),
                    AttrSet::single(l),
                    AttrSet::single(rh),
                )) as Box<dyn Dependency>
            })
            .collect();
        let report = run(&data.relation, &rules);
        assert!(report.is_empty());
        let score = score_cells(&report, &[]);
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 1.0);
    }

    #[test]
    fn planted_errors_recalled() {
        let cfg = CategoricalConfig {
            n_rows: 400,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 20,
            error_rate: 0.03,
            seed: 77,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let rules: Vec<Box<dyn Dependency>> = data
            .planted_fds
            .iter()
            .map(|&(l, rh)| {
                Box::new(Fd::new(
                    data.relation.schema(),
                    AttrSet::single(l),
                    AttrSet::single(rh),
                )) as Box<dyn Dependency>
            })
            .collect();
        let report = run(&data.relation, &rules);
        let score = score_cells(&report, &data.dirty_cells);
        // With domain 20 and 400 rows each key value recurs ~20×, so a
        // dirty cell almost surely conflicts with a clean sibling.
        assert!(score.recall >= 0.9, "{score:?}");
    }

    #[test]
    fn report_flagging_helpers() {
        let r = hotels_r1();
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        let report = run(&r, std::slice::from_ref(&fd));
        assert_eq!(report.len(), 2);
        assert_eq!(report.flagged_rows(), HashSet::from([2, 3, 4, 5]));
        assert!(report
            .flagged_cells()
            .iter()
            .all(|&(_, a)| a == r.schema().id("region")));
    }
}
