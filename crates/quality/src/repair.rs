//! Data repairing (Table 3, column 2): restore consistency by modifying
//! values or deleting tuples.
//!
//! Three repair families from the survey's citations:
//!
//! * [`repair_fds`] — value-modification repair for FDs/CFDs in the
//!   Bohannon/Cong style: merge equal-LHS groups onto their modal RHS
//!   (a cost-greedy heuristic for the NP-hard optimal repair);
//! * [`deletion_repair`] — minimal-deletion repair for *any* rule set
//!   (Lopatenko–Bravo): greedy vertex cover over the violation graph,
//!   a 2-approximation of the optimum;
//! * [`repair_sequence`] — numeric stream repair under gap constraints
//!   (the SCREEN-style speed-constraint repair of Song et al.): clamp each
//!   value into the window its predecessor admits.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dependency, Fd, Interval, Sd};
use deptree_relation::{Relation, Value};
use std::collections::HashMap;

/// Outcome of a value-modification repair.
#[derive(Debug)]
pub struct RepairResult {
    /// The repaired instance.
    pub relation: Relation,
    /// Cells changed, as `(row, attr, old value)`.
    pub changes: Vec<(usize, deptree_relation::AttrId, Value)>,
    /// Repair iterations used.
    pub iterations: usize,
}

/// Value-modification repair for a set of FDs: iteratively, for every
/// equal-LHS group disagreeing on the RHS, overwrite the minority RHS
/// values with the group's modal value (ties broken by value order, so
/// repairs are deterministic). Iterates to a fixpoint because each pass
/// only reduces the number of distinct RHS values per group; `max_iters`
/// bounds pathological rule interactions.
pub fn repair_fds(r: &Relation, fds: &[Fd], max_iters: usize) -> RepairResult {
    repair_fds_bounded(r, fds, max_iters, &Exec::unbounded()).result
}

/// Budgeted [`repair_fds`]: one node tick per equal-LHS group examined,
/// row ticks for the grouping scan. On exhaustion the repair stops
/// mid-fixpoint; every change already applied is a legitimate
/// modal-overwrite step of the greedy trajectory, so the partial instance
/// is a valid intermediate repair state — only full consistency
/// (`complete == true`) is forfeit.
pub fn repair_fds_bounded(
    r: &Relation,
    fds: &[Fd],
    max_iters: usize,
    exec: &Exec,
) -> Outcome<RepairResult> {
    let mut rel = r.clone();
    let mut changes = Vec::new();
    let mut iterations = 0;
    'search: for _ in 0..max_iters {
        iterations += 1;
        let mut changed = false;
        for fd in fds {
            if !exec.tick_rows(rel.n_rows() as u64) {
                break 'search;
            }
            for rows in rel.group_by(fd.lhs()).values() {
                if !exec.tick_node() {
                    break 'search;
                }
                if rows.len() < 2 {
                    continue;
                }
                // Modal RHS tuple of the group.
                let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
                for &row in rows {
                    *counts.entry(rel.project_row(row, fd.rhs())).or_default() += 1;
                }
                if counts.len() <= 1 {
                    continue;
                }
                let Some((modal, _)) = counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                else {
                    continue;
                };
                for &row in rows {
                    for (attr, target) in fd.rhs().iter().zip(&modal) {
                        if rel.value(row, attr) != target {
                            changes.push((row, attr, rel.value(row, attr).clone()));
                            rel.set_value(row, attr, target.clone());
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    exec.finish(RepairResult {
        relation: rel,
        changes,
        iterations,
    })
}

/// Outcome of a deletion repair.
#[derive(Debug)]
pub struct DeletionRepair {
    /// The surviving instance.
    pub relation: Relation,
    /// Deleted row indices (in the original numbering), sorted.
    pub deleted: Vec<usize>,
}

/// Greedy minimal-deletion repair: delete the tuple involved in the most
/// violation witnesses, recompute, repeat — the classic 2-approximate
/// vertex cover on the conflict graph, generalized to hyperedges from any
/// dependency's witnesses.
pub fn deletion_repair(r: &Relation, rules: &[Box<dyn Dependency>]) -> DeletionRepair {
    deletion_repair_bounded(r, rules, &Exec::unbounded()).result
}

/// Budgeted [`deletion_repair`]: one node tick per deletion round, row
/// ticks for each violation recomputation. On exhaustion the greedy loop
/// stops early: every deletion already made targeted a genuine
/// max-degree conflict tuple, so the partial result is a valid prefix of
/// the greedy 2-approximation — the surviving instance may simply still
/// contain violations (`complete == false`).
pub fn deletion_repair_bounded(
    r: &Relation,
    rules: &[Box<dyn Dependency>],
    exec: &Exec,
) -> Outcome<DeletionRepair> {
    let mut alive: Vec<usize> = (0..r.n_rows()).collect();
    let mut deleted = Vec::new();
    loop {
        let current = r.select_rows(&alive);
        let scan = (alive.len() as u64).saturating_mul(rules.len() as u64);
        if !exec.tick_node() || !exec.tick_rows(scan) {
            return exec.finish(DeletionRepair {
                relation: current,
                deleted,
            });
        }
        let mut degree: HashMap<usize, usize> = HashMap::new();
        for rule in rules {
            for v in rule.violations(&current) {
                for &local in &v.rows {
                    *degree.entry(local).or_default() += 1;
                }
            }
        }
        let Some((&victim_local, _)) = degree.iter().max_by_key(|(local, d)| (**d, **local)) else {
            return exec.finish(DeletionRepair {
                relation: current,
                deleted,
            });
        };
        deleted.push(alive.remove(victim_local));
        deleted.sort_unstable();
        let _ = victim_local;
    }
}

/// Repair a numeric sequence so consecutive gaps satisfy the SD: a single
/// forward pass clamps each value into `[prev + lo, prev + hi]` — the
/// minimum-change greedy of stream cleaning under speed constraints.
/// Returns the repaired instance and the number of changed cells.
pub fn repair_sequence(r: &Relation, sd: &Sd) -> (Relation, usize) {
    repair_sequence_bounded(r, sd, &Exec::unbounded()).result
}

/// Budgeted [`repair_sequence`]: one row tick per sequence position. On
/// exhaustion the forward pass stops: the processed prefix satisfies the
/// speed constraint between every consecutive processed pair (each clamp
/// is final), while the unvisited suffix is returned untouched
/// (`complete == false`).
pub fn repair_sequence_bounded(r: &Relation, sd: &Sd, exec: &Exec) -> Outcome<(Relation, usize)> {
    let mut rel = r.clone();
    let order = rel.sorted_rows(deptree_relation::AttrSet::single(sd.on()));
    let gap: Interval = sd.gap();
    let mut changes = 0usize;
    let mut prev: Option<f64> = None;
    'scan: for &row in &order {
        if !exec.tick_rows(1) {
            break 'scan;
        }
        let Some(y) = rel.value(row, sd.target()).as_f64() else {
            continue;
        };
        match prev {
            None => prev = Some(y),
            Some(p) => {
                let lo = p + gap.lo();
                let hi = p + gap.hi();
                let mut fixed = y.clamp(lo, hi);
                // `p + hi − p` can round just outside the interval; nudge
                // until the *stored* gap really satisfies the constraint.
                while fixed - p > gap.hi() {
                    fixed = f64::next_down(fixed);
                }
                while fixed - p < gap.lo() {
                    fixed = f64::next_up(fixed);
                }
                if fixed != y {
                    rel.set_value(row, sd.target(), Value::float(fixed));
                    changes += 1;
                }
                prev = Some(fixed);
            }
        }
    }
    exec.finish((rel, changes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::{Md, Violation};
    use deptree_metrics::Metric;
    use deptree_relation::examples::{hotels_r1, hotels_r5};
    use deptree_relation::AttrSet;
    use deptree_synth::{categorical, numerical, CategoricalConfig, SequenceConfig};

    #[test]
    fn fd_repair_restores_consistency_on_r5() {
        let r = hotels_r5();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        assert!(!fd.holds(&r));
        let result = repair_fds(&r, std::slice::from_ref(&fd), 10);
        assert!(fd.holds(&result.relation));
        // Exactly one of t3/t4's regions changed.
        assert_eq!(result.changes.len(), 1);
        assert!(result.iterations <= 3);
    }

    #[test]
    fn fd_repair_prefers_majority() {
        let cfg = CategoricalConfig {
            n_rows: 300,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 10,
            error_rate: 0.05,
            seed: 13,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let fd = Fd::new(
            data.relation.schema(),
            AttrSet::single(deptree_relation::AttrId(0)),
            AttrSet::single(deptree_relation::AttrId(1)),
        );
        let result = repair_fds(&data.relation, std::slice::from_ref(&fd), 10);
        assert!(fd.holds(&result.relation));
        // Majority voting should mostly rewrite the *dirty* cells: at
        // least 80% of changes are ground-truth dirty.
        let dirty: std::collections::HashSet<(usize, deptree_relation::AttrId)> =
            data.dirty_cells.iter().copied().collect();
        let hits = result
            .changes
            .iter()
            .filter(|(row, attr, _)| dirty.contains(&(*row, *attr)))
            .count();
        assert!(
            hits as f64 >= 0.8 * result.changes.len() as f64,
            "{hits}/{}",
            result.changes.len()
        );
    }

    #[test]
    fn deletion_repair_removes_min_tuples_on_r5() {
        // g3(address → region) = 1/4: one deletion suffices.
        let r = hotels_r5();
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        let result = deletion_repair(&r, std::slice::from_ref(&fd));
        assert_eq!(result.deleted.len(), 1);
        assert!(fd.holds(&result.relation));
    }

    #[test]
    fn deletion_repair_with_md_rules_on_r1() {
        let r = hotels_r1();
        let s = r.schema();
        let rules: Vec<Box<dyn Dependency>> = vec![
            Box::new(Fd::parse(s, "address -> region").unwrap()),
            Box::new(Md::new(
                s,
                vec![(s.id("address"), Metric::Levenshtein, 4.0)],
                AttrSet::single(s.id("region")),
            )),
        ];
        let result = deletion_repair(&r, &rules);
        for rule in &rules {
            assert!(rule.holds(&result.relation), "{rule}");
        }
        // The MD also links the St. Regis and Christina groups (their
        // "West Lake Rd." addresses are similar), so the conflict graph
        // needs up to 4 deletions.
        assert!(result.deleted.len() <= 4, "{:?}", result.deleted);
    }

    #[test]
    fn sequence_repair_fixes_spikes() {
        let cfg = SequenceConfig {
            n_rows: 150,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.05,
            seed: 51,
        };
        let data = numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
        assert!(!sd.holds(&data.relation));
        let (repaired, changes) = repair_sequence(&data.relation, &sd);
        assert!(
            sd.holds(&repaired),
            "sequence repair must reach consistency"
        );
        assert!(changes >= data.spike_steps.len());
    }

    #[test]
    fn sequence_repair_noop_on_clean_data() {
        let cfg = SequenceConfig {
            n_rows: 100,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.0,
            seed: 52,
        };
        let data = numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
        let (repaired, changes) = repair_sequence(&data.relation, &sd);
        assert_eq!(changes, 0);
        assert_eq!(repaired, data.relation);
    }

    #[test]
    fn deletion_repair_empty_rules() {
        let r = hotels_r5();
        let result = deletion_repair(&r, &[]);
        assert!(result.deleted.is_empty());
        assert_eq!(result.relation.n_rows(), r.n_rows());
    }

    #[test]
    fn bounded_repair_stops_in_valid_intermediate_state() {
        use deptree_core::engine::{Budget, Exec};
        let cfg = CategoricalConfig {
            n_rows: 200,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 10,
            error_rate: 0.1,
            seed: 17,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let fd = Fd::new(
            data.relation.schema(),
            AttrSet::single(deptree_relation::AttrId(0)),
            AttrSet::single(deptree_relation::AttrId(1)),
        );
        let exec = Exec::new(Budget::default().with_max_nodes(3));
        let out = repair_fds_bounded(&data.relation, std::slice::from_ref(&fd), 10, &exec);
        assert!(!out.complete);
        // Every recorded change really differs from the original value and
        // the old value is faithfully preserved.
        for (row, attr, old) in &out.result.changes {
            assert_eq!(data.relation.value(*row, *attr), old);
            assert_ne!(out.result.relation.value(*row, *attr), old);
        }
        // Unbounded run from the same input reaches consistency.
        let full = repair_fds(&data.relation, std::slice::from_ref(&fd), 10);
        assert!(fd.holds(&full.relation));
    }

    #[test]
    fn bounded_deletion_repair_prefix_is_sound() {
        use deptree_core::engine::{Budget, Exec};
        let r = hotels_r1();
        let s = r.schema();
        let rules: Vec<Box<dyn Dependency>> = vec![
            Box::new(Fd::parse(s, "address -> region").unwrap()),
            Box::new(Md::new(
                s,
                vec![(s.id("address"), Metric::Levenshtein, 4.0)],
                AttrSet::single(s.id("region")),
            )),
        ];
        let exec = Exec::new(Budget::default().with_max_nodes(2));
        let out = deletion_repair_bounded(&r, &rules, &exec);
        assert!(!out.complete);
        // Deleted rows are a subset of what the unbounded greedy deletes.
        let full = deletion_repair(&r, &rules);
        for d in &out.result.deleted {
            assert!(full.deleted.contains(d), "{d} not in {:?}", full.deleted);
        }
    }

    /// A rule set whose only violation names a single row: deletion repair
    /// must remove exactly that row.
    #[test]
    fn deletion_repair_single_row_witnesses() {
        struct BadRow(usize);
        impl std::fmt::Display for BadRow {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "BadRow({})", self.0)
            }
        }
        impl Dependency for BadRow {
            fn kind(&self) -> deptree_core::DepKind {
                deptree_core::DepKind::Dc
            }
            fn holds(&self, r: &Relation) -> bool {
                r.n_rows() <= self.0
            }
            fn violations(&self, r: &Relation) -> Vec<Violation> {
                if r.n_rows() > self.0 {
                    vec![Violation::row(self.0, AttrSet::empty())]
                } else {
                    vec![]
                }
            }
        }
        let r = hotels_r5();
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(BadRow(3))];
        let result = deletion_repair(&r, &rules);
        assert_eq!(result.deleted, vec![3]);
        assert_eq!(result.relation.n_rows(), 3);
    }
}
