//! Consistent query answering (Arenas–Bertossi–Chomicki; Table 3): an
//! answer is *consistent* when it holds in every minimal repair of the
//! inconsistent database.
//!
//! For deletion-based repairs of equality/similarity rules whose witnesses
//! are tuple sets, a sound approximation is: a tuple participates in some
//! repair-divergence iff it appears in a violation witness, so answers
//! built only from *unconflicted* tuples are consistent. This module
//! implements that approximation plus an exact check for the common case
//! of a single FD (where minimal repairs keep, per conflicting group, a
//! maximal agreeing subset).

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dependency, Fd};
use deptree_relation::{Relation, Value};
use std::collections::HashSet;

/// Rows not involved in any violation witness — the *core* every
/// deletion-minimal repair retains (sound, possibly incomplete).
pub fn consistent_rows(r: &Relation, rules: &[Box<dyn Dependency>]) -> Vec<usize> {
    consistent_rows_bounded(r, rules, &Exec::unbounded()).result
}

/// Budgeted [`consistent_rows`]: one node tick plus a full-relation row
/// tick per rule checked. A row can only be *certified* consistent once
/// every rule has been checked against it — an unprocessed rule could
/// conflict any row — so on exhaustion the sound answer is the empty set:
/// no row is certified, and `complete == false` tells the caller why.
pub fn consistent_rows_bounded(
    r: &Relation,
    rules: &[Box<dyn Dependency>],
    exec: &Exec,
) -> Outcome<Vec<usize>> {
    let mut conflicted: HashSet<usize> = HashSet::new();
    for rule in rules {
        if !exec.tick_node() || !exec.tick_rows(r.n_rows() as u64) {
            // Certification requires all rules; nothing can be claimed.
            return exec.finish(Vec::new());
        }
        for v in rule.violations(r) {
            conflicted.extend(v.rows.iter().copied());
        }
    }
    exec.finish(
        (0..r.n_rows())
            .filter(|row| !conflicted.contains(row))
            .collect(),
    )
}

/// A selection query `σ_{attr = value}` projected onto `output`.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    /// Selection attribute.
    pub attr: deptree_relation::AttrId,
    /// Selection constant.
    pub value: Value,
    /// Output attribute.
    pub output: deptree_relation::AttrId,
}

impl SelectQuery {
    fn answers_from(&self, r: &Relation, rows: &[usize]) -> HashSet<Value> {
        rows.iter()
            .filter(|&&row| r.value(row, self.attr) == &self.value)
            .map(|&row| r.value(row, self.output).clone())
            .collect()
    }
}

/// Consistent answers under the core approximation: evaluate the query on
/// the unconflicted rows only.
pub fn consistent_answers(
    r: &Relation,
    rules: &[Box<dyn Dependency>],
    q: &SelectQuery,
) -> HashSet<Value> {
    consistent_answers_bounded(r, rules, q, &Exec::unbounded()).result
}

/// Budgeted [`consistent_answers`]: inherits the certification semantics
/// of [`consistent_rows_bounded`] — on exhaustion the answer set is empty
/// (the empty set is always a sound under-approximation of the certain
/// answers) and `complete == false`.
pub fn consistent_answers_bounded(
    r: &Relation,
    rules: &[Box<dyn Dependency>],
    q: &SelectQuery,
    exec: &Exec,
) -> Outcome<HashSet<Value>> {
    let rows = consistent_rows_bounded(r, rules, exec);
    let answers = q.answers_from(r, &rows.result);
    exec.finish(answers)
}

/// Exact consistent answers for a *single FD*: the minimal repairs keep,
/// per equal-LHS group, exactly one maximal RHS-agreeing subset. An answer
/// is consistent iff it appears in every choice — i.e. it comes from an
/// unconflicted tuple, or from a group where *all* maximal subsets produce
/// it (impossible when subsets disagree on the queried output unless the
/// output attribute is outside the FD's RHS and constant across the
/// group's candidates).
pub fn consistent_answers_fd(r: &Relation, fd: &Fd, q: &SelectQuery) -> HashSet<Value> {
    // Enumerate repairs group-wise: each conflicted group contributes its
    // alternative "keep" subsets; the cross product of choices is the
    // repair space. Intersecting per-group is equivalent and avoids the
    // exponential cross product.
    let groups = r.group_by(fd.lhs());
    let mut base_rows: Vec<usize> = Vec::new();
    let mut alternatives: Vec<Vec<Vec<usize>>> = Vec::new();
    for rows in groups.values() {
        let mut by_rhs: std::collections::HashMap<Vec<Value>, Vec<usize>> =
            std::collections::HashMap::new();
        for &row in rows {
            by_rhs
                .entry(r.project_row(row, fd.rhs()))
                .or_default()
                .push(row);
        }
        if by_rhs.len() <= 1 {
            base_rows.extend(rows.iter().copied());
        } else {
            // Minimal repairs keep one maximum-cardinality subset; all
            // tied maxima are alternatives.
            let max = by_rhs.values().map(Vec::len).max().unwrap_or(0);
            let alts: Vec<Vec<usize>> = by_rhs.into_values().filter(|v| v.len() == max).collect();
            alternatives.push(alts);
        }
    }
    // Base answers present in every repair.
    let base = q.answers_from(r, &base_rows);
    // Per conflicted group: answers contributed by *every* alternative.
    let mut certain = base;
    for alts in alternatives {
        let mut group_certain: Option<HashSet<Value>> = None;
        for alt in alts {
            let a = q.answers_from(r, &alt);
            group_certain = Some(match group_certain {
                None => a,
                Some(prev) => prev.intersection(&a).cloned().collect(),
            });
        }
        if let Some(gc) = group_certain {
            certain.extend(gc);
        }
    }
    certain
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;

    fn q(r: &Relation, attr: &str, value: &str, output: &str) -> SelectQuery {
        let s = r.schema();
        SelectQuery {
            attr: s.id(attr),
            value: value.into(),
            output: s.id(output),
        }
    }

    #[test]
    fn unconflicted_answers_survive() {
        // Query: regions at address "175 North Jackson Street" — t1, t2
        // are unconflicted w.r.t. address → region; answer "Jackson" is
        // consistent.
        let r = hotels_r5();
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        let query = q(&r, "address", "175 North Jackson Street", "region");
        let answers = consistent_answers(&r, std::slice::from_ref(&fd), &query);
        assert_eq!(answers, HashSet::from([Value::str("Jackson")]));
    }

    #[test]
    fn conflicted_answers_dropped() {
        // Regions at "6030 Gateway Boulevard E": t3 says El Paso, t4 says
        // El Paso, TX — neither is in every repair.
        let r = hotels_r5();
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        let query = q(&r, "address", "6030 Gateway Boulevard E", "region");
        let answers = consistent_answers(&r, std::slice::from_ref(&fd), &query);
        assert!(answers.is_empty());
        // The exact FD version agrees here (two tied maximal subsets that
        // disagree on the output).
        let fd2 = Fd::parse(r.schema(), "address -> region").unwrap();
        let exact = consistent_answers_fd(&r, &fd2, &query);
        assert!(exact.is_empty());
    }

    #[test]
    fn exact_fd_version_recovers_majority_certain_answers() {
        // Make the El Paso group 2-vs-1: the majority subset is the unique
        // minimal repair, so its answer becomes certain — the core
        // approximation still (soundly) misses it.
        let mut r = hotels_r5();
        let s = r.schema().clone();
        r.push_row(vec![
            "Hyatt".into(),
            "6030 Gateway Boulevard E".into(),
            "El Paso".into(),
            199.into(),
        ])
        .unwrap();
        let fd = Fd::parse(&s, "address -> region").unwrap();
        let query = q(&r, "address", "6030 Gateway Boulevard E", "region");
        let exact = consistent_answers_fd(&r, &fd, &query);
        assert_eq!(exact, HashSet::from([Value::str("El Paso")]));
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd)];
        let approx = consistent_answers(&r, &rules, &query);
        assert!(approx.is_subset(&exact)); // sound but incomplete
    }

    #[test]
    fn bounded_cqa_certifies_nothing_on_exhaustion() {
        use deptree_core::engine::{Budget, Exec};
        let r = hotels_r5();
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        // Zero-node budget: the single rule cannot be checked.
        let exec = Exec::new(Budget::default().with_max_nodes(0));
        let rows = consistent_rows_bounded(&r, std::slice::from_ref(&fd), &exec);
        assert!(!rows.complete);
        assert!(rows.result.is_empty());
        let query = q(&r, "address", "175 North Jackson Street", "region");
        let exec2 = Exec::new(Budget::default().with_max_nodes(0));
        let answers = consistent_answers_bounded(&r, std::slice::from_ref(&fd), &query, &exec2);
        assert!(!answers.complete);
        assert!(answers.result.is_empty());
    }

    #[test]
    fn consistent_rows_shrink_with_rules() {
        let r = hotels_r5();
        assert_eq!(consistent_rows(&r, &[]).len(), 4);
        let fd: Box<dyn Dependency> = Box::new(Fd::parse(r.schema(), "address -> region").unwrap());
        let rows = consistent_rows(&r, std::slice::from_ref(&fd));
        assert_eq!(rows, vec![0, 1]);
    }
}
