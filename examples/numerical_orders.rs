//! Numerical-data workflows (survey §4): order dependencies and denial
//! constraints on the hotel-rates relation, the network-polling sequential
//! dependency, CSD tableau discovery on regime-switching data, and
//! gap-constrained stream repair.
//!
//! ```sh
//! cargo run --example numerical_orders
//! ```

use deptree::core::{CmpOp, Dc, Dependency, Direction, Interval, Od, Predicate, Sd};
use deptree::discovery::{od as od_discovery, sd as sd_discovery};
use deptree::quality::repair;
use deptree::relation::examples::hotels_r7;
use deptree::synth::{numerical, SequenceConfig};

fn main() {
    rates();
    polling();
    regimes_and_repair();
}

fn rates() {
    let r = hotels_r7();
    println!("=== Hotel rates (Table 7) ===\n{}", r.to_ascii_table());
    let s = r.schema();

    // od1: the longer you stay, the cheaper the night.
    let od1 = Od::new(
        s,
        vec![(s.id("nights"), Direction::Asc)],
        vec![(s.id("avg/night"), Direction::Desc)],
    );
    println!("{od1} holds: {}", od1.holds(&r));

    // dc1: a lower subtotal never pays more taxes.
    let dc1 = Dc::new(
        s,
        vec![
            Predicate::across(s.id("subtotal"), CmpOp::Lt, s.id("subtotal")),
            Predicate::across(s.id("taxes"), CmpOp::Gt, s.id("taxes")),
        ],
    );
    println!("{dc1} holds: {}", dc1.holds(&r));

    // sd1: subtotal rises 100–200 per extra night.
    let sd1 = Sd::new(
        s,
        s.id("nights"),
        s.id("subtotal"),
        Interval::new(100.0, 200.0),
    );
    println!("{sd1} holds: {}", sd1.holds(&r));

    // Discover all single-attribute ODs.
    let found = od_discovery::discover(&r, &od_discovery::OdConfig::default());
    println!("discovered {} ODs, e.g.:", found.len());
    for od in found.iter().take(4) {
        println!("  {od}");
    }
    println!();
}

/// §4.4.4: auditing a collector that should poll every ~10 seconds.
fn polling() {
    let cfg = SequenceConfig {
        n_rows: 500,
        regimes: vec![(9.0, 11.0)],
        spike_rate: 0.02,
        seed: 99,
    };
    let data = numerical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let s = data.relation.schema();
    let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
    let violations = sd.violations(&data.relation);
    println!("=== Polling audit (SD: pollnum →[9,11] time) ===");
    println!(
        "{} polls, {} gap violations (planted: {}), confidence {:.3}",
        data.relation.n_rows(),
        violations.len(),
        data.spike_steps.len(),
        sd.confidence(&data.relation)
    );
    println!();
}

/// Regime-switching data: a single SD cannot describe both periods; the
/// CSD tableau DP carves out where each gap band holds. Then repair the
/// out-of-band spikes.
fn regimes_and_repair() {
    let cfg = SequenceConfig {
        n_rows: 400,
        regimes: vec![(1.0, 2.0), (10.0, 12.0)],
        spike_rate: 0.03,
        seed: 123,
    };
    let data = numerical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let s = data.relation.schema();
    println!("=== Regime-switching sequence: CSD tableau ===");
    for (band, name) in [
        (Interval::new(1.0, 2.0), "slow regime"),
        (Interval::new(10.0, 12.0), "fast regime"),
    ] {
        let csd = sd_discovery::csd_tableau(&data.relation, s.id("seq"), s.id("y"), band, 0.9);
        let covered = sd_discovery::tableau_covered_steps(&data.relation, &csd);
        println!(
            "gap {band} ({name}): tableau rows={} covered steps={covered}",
            csd.tableau().len()
        );
    }

    // Repair the fast regime's stream under its gap constraint.
    let fast_rows: Vec<usize> = (200..400).collect();
    let fast = data.relation.select_rows(&fast_rows);
    let sd = Sd::new(
        fast.schema(),
        s.id("seq"),
        s.id("y"),
        Interval::new(10.0, 12.0),
    );
    let before = sd.violations(&fast).len();
    let (repaired, changes) = repair::repair_sequence(&fast, &sd);
    println!(
        "fast-regime repair: {before} violations before, {} after, {changes} cells changed",
        sd.violations(&repaired).len()
    );
}
