//! The survey's own artifacts: the family tree of extensions (Fig. 1A)
//! with empirical verification of every edge, the publication bar chart
//! (Fig. 1B), the timeline (Fig. 2) and the discovery-complexity landscape
//! (Fig. 3).
//!
//! ```sh
//! cargo run --example family_tree
//! ```

use deptree::core::familytree::{registry, verify_all_edges, ExtensionGraph};

fn main() {
    let graph = ExtensionGraph::survey();

    println!("=== Fig. 1A: the family tree of extensions ===");
    print!("{}", graph.to_ascii());

    println!("\n=== Edge verification (special ⇒/⇔ general on example instances) ===");
    let reports = verify_all_edges();
    let mut ok = 0;
    for rep in &reports {
        if rep.ok() {
            ok += 1;
        } else {
            println!(
                "  FAILED {:?}: {}/{} instances",
                rep.edge, rep.agreed, rep.instances
            );
        }
    }
    println!("{ok}/{} edges verified empirically", reports.len());

    println!("\n=== Fig. 1B: publications using each notation ===");
    let mut infos: Vec<_> = registry::REGISTRY.iter().collect();
    infos.sort_by_key(|n| std::cmp::Reverse(n.publications));
    for info in infos
        .iter()
        .filter(|n| n.kind != deptree::core::DepKind::Fd)
    {
        let bar = "█".repeat((info.publications / 12).max(1) as usize);
        println!("{:6} {:5} {}", info.kind.acronym(), info.publications, bar);
    }

    println!("\n=== Fig. 2: timeline of proposals ===");
    for (year, kind) in registry::timeline() {
        println!("{year}  {}", kind.acronym());
    }

    println!("\n=== Fig. 3: discovery-problem difficulty ===");
    for info in &registry::REGISTRY {
        println!(
            "{:6} {:20} — {}",
            info.kind.acronym(),
            info.discovery.to_string(),
            info.complexity_note
        );
    }

    println!("\n=== GraphViz (pipe into `dot -Tsvg`) ===");
    println!("{}", graph.to_dot());
}
