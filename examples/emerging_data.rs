//! The survey's §5 "future directions", implemented: FDs over uncertain
//! data (possible-worlds and or-set readings) and speed constraints over
//! timestamped sensor streams.
//!
//! ```sh
//! cargo run --example emerging_data
//! ```

use deptree::core::uncertain::{
    holds_in_all_worlds, holds_in_some_world, holds_vertically, UncertainRelation,
};
use deptree::core::Fd;
use deptree::quality::stream::{screen_repair, speed_violations, SpeedConstraint};
use deptree::relation::{RelationBuilder, Schema, ValueType};

fn main() {
    uncertain();
    streams();
}

/// §5.1: an uncertain hotel relation where one region is ambiguous between
/// the two representation formats — fd1 becomes *possible* but not
/// *certain*.
fn uncertain() {
    println!("=== §5.1 Uncertain data: horizontal & vertical FDs ===");
    let schema = Schema::from_attrs([("address", ValueType::Text), ("region", ValueType::Text)]);
    let mut u = UncertainRelation::new(schema);
    u.push_row(vec![
        vec!["6030 Gateway Boulevard E".into()],
        vec!["El Paso".into()],
    ])
    .unwrap();
    u.push_row(vec![
        vec!["6030 Gateway Boulevard E".into()],
        vec!["El Paso".into(), "El Paso, TX".into()],
    ])
    .unwrap();
    let fd = Fd::parse(u.schema(), "address -> region").unwrap();
    println!("{} possible worlds", u.n_worlds());
    println!(
        "certain  (holds in all worlds): {}",
        holds_in_all_worlds(&u, &fd, 64)
    );
    println!(
        "possible (holds in some world): {}",
        holds_in_some_world(&u, &fd, 64)
    );
    println!(
        "vertical (or-sets as values):   {}",
        holds_vertically(&u, &fd)
    );
    println!();
}

/// §5.3: a sensor stream with irregular timestamps and one spike; a speed
/// constraint localizes it and the SCREEN-style repair fixes it with one
/// cell change.
fn streams() {
    println!("=== §5.3 Temporal data: speed constraints ===");
    let r = RelationBuilder::new()
        .attr("ts", ValueType::Numeric)
        .attr("temp", ValueType::Numeric)
        .row(vec![0.into(), 20.0.into()])
        .row(vec![2.into(), 21.0.into()])
        .row(vec![3.into(), 90.0.into()]) // spike
        .row(vec![7.into(), 23.0.into()])
        .row(vec![10.into(), 24.0.into()])
        .build()
        .unwrap();
    let s = r.schema();
    let sc = SpeedConstraint::symmetric(2.0);
    println!("speed constraint: |d(temp)/d(ts)| ≤ 2");
    for (i, j, rate) in speed_violations(&r, s.id("ts"), s.id("temp"), sc) {
        println!("  rows {i}→{j}: rate {rate:.2} out of bounds");
    }
    let (fixed, changed) = screen_repair(&r, s.id("ts"), s.id("temp"), sc);
    println!(
        "repair changed {} cell(s); remaining violations: {}",
        changed.len(),
        speed_violations(&fixed, s.id("ts"), s.id("temp"), sc).len()
    );
    for row in 0..fixed.n_rows() {
        println!(
            "  ts={} temp {} -> {}",
            fixed.value(row, s.id("ts")),
            r.value(row, s.id("temp")),
            fixed.value(row, s.id("temp"))
        );
    }
}
