//! Quickstart: declare rules, check them, find violations, discover rules
//! from data — five minutes with the deptree API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use deptree::core::{Dependency, Fd, Md};
use deptree::discovery::tane::{self, TaneConfig};
use deptree::metrics::Metric;
use deptree::quality::repair;
use deptree::relation::examples::hotels_r1;
use deptree::relation::AttrSet;

fn main() {
    // 1. A relation instance: Table 1 of the survey.
    let hotels = hotels_r1();
    println!("The hotel relation (Table 1):\n{}", hotels.to_ascii_table());

    // 2. Declare the paper's fd1: address → region, and check it.
    let fd1 = Fd::parse(hotels.schema(), "address -> region").expect("attrs exist");
    println!("{fd1} holds: {}", fd1.holds(&hotels));
    for v in fd1.violations(&hotels) {
        println!(
            "  violated by tuples t{} and t{}",
            v.rows[0] + 1,
            v.rows[1] + 1
        );
    }

    // 3. The equality trap: "Chicago" vs "Chicago, IL" is variety, not an
    //    error. A matching dependency with similarity on address also
    //    catches the t7/t8 error fd1 misses.
    let s = hotels.schema();
    let md = Md::new(
        s,
        vec![(s.id("address"), Metric::Levenshtein, 4.0)],
        AttrSet::single(s.id("region")),
    );
    println!("\n{md}");
    for v in md.violations(&hotels) {
        println!("  flags t{} / t{}", v.rows[0] + 1, v.rows[1] + 1);
    }

    // 4. Repair: modal-value merging restores consistency.
    let result = repair::repair_fds(&hotels, std::slice::from_ref(&fd1), 5);
    println!(
        "\nRepaired with {} change(s); fd1 now holds: {}",
        result.changes.len(),
        fd1.holds(&result.relation)
    );

    // 5. Discovery: what minimal FDs hold in the (repaired) data?
    let found = tane::discover(&result.relation, &TaneConfig::default());
    println!("\nTANE finds {} minimal FDs, e.g.:", found.fds.len());
    for fd in found.fds.iter().take(5) {
        println!("  {fd}");
    }
}
