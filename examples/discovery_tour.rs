//! A tour of every discovery algorithm in the toolkit, run on the paper's
//! example instances and small synthetic data — one section per Table 2
//! discovery column entry.
//!
//! ```sh
//! cargo run --example discovery_tour
//! ```

use deptree::core::NedAtom;
use deptree::discovery::*;
use deptree::metrics::Metric;
use deptree::relation::examples::{hotels_r1, hotels_r5, hotels_r6, hotels_r7};
use deptree::relation::AttrSet;
use deptree::synth::{categorical, CategoricalConfig};

fn main() {
    let r5 = hotels_r5();
    let r6 = hotels_r6();
    let r7 = hotels_r7();

    println!("== TANE (exact FDs, r6) ==");
    let t = tane::discover(&r6, &tane::TaneConfig::default());
    println!(
        "{} FDs, {} lattice nodes, {} partition products",
        t.fds.len(),
        t.stats.nodes_visited,
        t.stats.partition_products
    );

    println!("\n== TANE approximate mode (AFDs with g3 ≤ 0.25, r5) ==");
    let a = tane::discover(
        &r5,
        &tane::TaneConfig {
            max_lhs: 2,
            max_error: 0.25,
        },
    );
    for fd in a.fds.iter().take(4) {
        println!("  {fd}  (g3 = {:.2})", fd.g3(&r5));
    }

    println!("\n== FastFD (difference sets, r1) ==");
    let r1 = hotels_r1();
    let f = fastfd::discover(&r1);
    println!(
        "{} FDs from {} difference sets",
        f.fds.len(),
        f.stats.difference_sets
    );

    println!("\n== CORDS (sampled SFDs on synthetic 10k rows) ==");
    let cfg = CategoricalConfig {
        n_rows: 10_000,
        n_key_attrs: 2,
        n_dep_attrs: 2,
        domain: 50,
        error_rate: 0.001,
        seed: 3,
    };
    let big = categorical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let c = cords::discover(&big.relation, &cords::CordsConfig::default());
    println!("sampled {} rows; {} soft FDs", c.sampled_rows, c.sfds.len());

    println!("\n== PFD discovery (r5) ==");
    for p in pfd::discover(
        &r5,
        &pfd::PfdConfig {
            min_probability: 0.7,
            max_lhs: 1,
        },
    ) {
        println!("  {p}  (P = {:.2})", p.probability(&r5));
    }

    println!("\n== CFDMiner + CTANE + greedy tableau (r6) ==");
    let constant = cfd::cfdminer(&r6, &cfd::CfdConfig::default());
    let general = cfd::ctane(&r6, &cfd::CfdConfig::default());
    println!(
        "{} constant CFDs, {} general CFDs; e.g.:",
        constant.len(),
        general.len()
    );
    for c in general.iter().take(3) {
        println!("  {c}");
    }
    let fd = deptree::core::Fd::parse(r5.schema(), "address -> region").unwrap();
    let tableau = cfd::greedy_tableau(&r5, &fd, 1.0);
    println!(
        "greedy tableau for `{fd}`: {} row(s), coverage {:.0}%",
        tableau.len(),
        100.0 * cfd::tableau_coverage(&r5, &tableau)
    );

    println!("\n== MVD discovery (r5) ==");
    for m in mvd::discover(&r5, &mvd::MvdConfig::default())
        .iter()
        .take(4)
    {
        println!("  {m}");
    }

    println!("\n== MFD threshold discovery (r1, region under edit distance) ==");
    let s1 = r1.schema();
    let delta = mfd::minimal_delta(
        &r1,
        AttrSet::single(s1.id("address")),
        s1.id("region"),
        &Metric::Levenshtein,
    );
    println!("minimal δ for address →^δ region: {delta}");

    println!("\n== DD discovery with data-driven thresholds (r6) ==");
    for d in dd::discover(
        &r6,
        &dd::DdConfig {
            max_lhs: 1,
            ..Default::default()
        },
    )
    .iter()
    .take(4)
    {
        println!("  {d}");
    }

    println!("\n== MD discovery (r6, identify zip) ==");
    let s6 = r6.schema();
    for smd in md::discover(&r6, AttrSet::single(s6.id("zip")), &md::MdConfig::default())
        .iter()
        .take(3)
    {
        println!(
            "  {} (supp {:.3}, conf {:.2})",
            smd.md, smd.support, smd.confidence
        );
    }

    println!("\n== NED discovery (r6, target: street closeness) ==");
    let target = vec![NedAtom::new(s6.id("street"), Metric::Levenshtein, 5.0)];
    if let Some(n) = ned::discover_lhs(&r6, target, &ned::NedConfig::default()) {
        println!("  {n}");
    }

    println!("\n== FFD mining (r6) ==");
    for f in ffd::discover(&r6, &ffd::FfdConfig::default())
        .iter()
        .take(4)
    {
        println!("  {f}");
    }

    println!("\n== FASTOD-lite (r7) ==");
    for od in od::discover(&r7, &od::OdConfig::default()).iter().take(5) {
        println!("  {od}");
    }

    println!("\n== FASTDC (r7) ==");
    let d = dc::discover(&r7, &dc::DcConfig::default());
    println!(
        "{} predicates, {} evidence sets, {} minimal DCs; e.g.:",
        d.stats.n_predicates,
        d.stats.n_evidence_sets,
        d.dcs.len()
    );
    for dc_rule in d.dcs.iter().take(3) {
        println!("  {dc_rule}");
    }

    println!("\n== SD suggestion + CSD tableau DP (r7) ==");
    let s7 = r7.schema();
    if let Some(sd_rule) = sd::discover_sd(&r7, s7.id("nights"), s7.id("subtotal"), 0.9) {
        println!("  {sd_rule} (confidence {:.2})", sd_rule.confidence(&r7));
    }

    println!("\n== NUD minimal-weight fitting (r5) ==");
    for n in nud::discover(&r5, &nud::NudConfig::default())
        .iter()
        .take(3)
    {
        println!("  {n}");
    }

    println!("\n== eCFD condition mining (r5) ==");
    for e in ecfd::discover(&r5, &ecfd::ECfdConfig::default())
        .iter()
        .take(3)
    {
        println!("  {e}");
    }

    println!("\n== CDD / CMD discovery over frequent conditions (r6) ==");
    for c in conditional::discover_cdds(&r6, &conditional::ConditionalConfig::default())
        .iter()
        .take(2)
    {
        println!("  {c}");
    }
    for c in conditional::discover_cmds(
        &r6,
        AttrSet::single(s6.id("zip")),
        &conditional::ConditionalConfig::default(),
    )
    .iter()
    .take(2)
    {
        println!("  {c}");
    }

    println!("\n== Pay-as-you-go CD discovery (dataspace) ==");
    let ds = deptree::relation::examples::dataspace_cd();
    let dss = ds.schema();
    let known = vec![deptree::core::SimFn::new(
        dss.id("region"),
        dss.id("city"),
        Metric::Levenshtein,
        5.0,
        5.0,
        5.0,
    )];
    let newly = deptree::core::SimFn::new(
        dss.id("addr"),
        dss.id("post"),
        Metric::Levenshtein,
        7.0,
        9.0,
        6.0,
    );
    for c in cd::discover_incremental(&ds, &known, &newly, &cd::CdConfig::default())
        .iter()
        .take(2)
    {
        println!("  {c}");
    }

    println!("\n== PAC-Man template instantiation (r6) ==");
    let template = pacman::PacTemplate {
        lhs: vec![s6.id("price")],
        rhs: vec![s6.id("tax")],
    };
    if let Some(p) = pacman::instantiate(&r6, &template, &pacman::PacManConfig::default()) {
        println!("  fitted: {p}; alarms now: {}", pacman::alarm(&r6, &p));
    }

    println!("\n== FHD / AMVD / OFD scheme discovery (r7) ==");
    for o in schemes::discover_ofds(&r7).iter().take(3) {
        println!("  {o}");
    }
}
