//! Heterogeneous-data workflows (survey §3): comparable dependencies over
//! a dataspace with synonym attributes, and MD-driven deduplication with
//! discovered matching keys.
//!
//! ```sh
//! cargo run --example dataspace_dedup
//! ```

use deptree::core::{Cd, Dependency, SimFn};
use deptree::discovery::md::{self, MdConfig};
use deptree::metrics::Metric;
use deptree::quality::dedup;
use deptree::relation::examples::dataspace_cd;
use deptree::relation::AttrSet;
use deptree::synth::{entities, EntitiesConfig};

fn main() {
    dataspace();
    dedup_at_scale();
}

/// §3.4's three-tuple dataspace: `region`/`city` and `addr`/`post` are
/// synonym attributes from different sources; cd1 bridges them.
fn dataspace() {
    let r = dataspace_cd();
    println!("=== Dataspace (§3.4) ===\n{}", r.to_ascii_table());
    let s = r.schema();
    let cd = Cd::new(
        s,
        vec![SimFn::new(
            s.id("region"),
            s.id("city"),
            Metric::Levenshtein,
            5.0,
            5.0,
            5.0,
        )],
        SimFn::new(
            s.id("addr"),
            s.id("post"),
            Metric::Levenshtein,
            7.0,
            9.0,
            6.0,
        ),
    );
    println!("{cd}");
    println!("holds: {}", cd.holds(&r));
    for (i, j) in r.row_pairs() {
        if cd.lhs_similar(&r, i, j) {
            println!(
                "  t{} ≈ t{} on θ(region, city) → addresses comparable",
                i + 1,
                j + 1
            );
        }
    }
    println!();
}

/// Discover matching keys on generated duplicate-laden data, pick a
/// concise key set, cluster, and score against ground truth.
fn dedup_at_scale() {
    let cfg = EntitiesConfig {
        n_entities: 200,
        max_duplicates: 3,
        variety: 0.7,
        error_rate: 0.0,
        seed: 7,
    };
    let data = entities::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;
    let s = r.schema();
    println!(
        "=== Deduplication: {} rows denoting {} entities ===",
        r.n_rows(),
        cfg.n_entities
    );

    // Discover MDs identifying the zip (the generator's entity key).
    let candidates = md::discover(
        r,
        AttrSet::single(s.id("zip")),
        &MdConfig {
            min_support: 0.0005,
            min_confidence: 0.9,
            thresholds_per_attr: 3,
            max_lhs: 1,
        },
    );
    println!(
        "discovered {} candidate matching rules; top 3:",
        candidates.len()
    );
    for smd in candidates.iter().take(3) {
        println!(
            "  {} (support {:.4}, confidence {:.2})",
            smd.md, smd.support, smd.confidence
        );
    }

    // Concise matching keys reaching 90% recall of true duplicate pairs.
    let cluster_truth = data.cluster.clone();
    let same = move |i: usize, j: usize| cluster_truth[i] == cluster_truth[j];
    let keys = md::concise_matching_keys(r, &candidates, &same, 0.9);
    println!("concise key set: {} rule(s)", keys.len());

    // Cluster with the keys and score.
    let mds: Vec<_> = keys.iter().map(|k| k.md.clone()).collect();
    let clustering = dedup::cluster(r, &mds);
    let (precision, recall) = dedup::pairwise_score(&clustering, &data.cluster);
    println!(
        "clusters: {} (true: {}); pairwise precision={precision:.3} recall={recall:.3}",
        clustering.n_clusters, cfg.n_entities
    );
}
