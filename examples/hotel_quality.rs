//! The survey's §1 motivation as a measurable experiment: on dirty hotel
//! data with representation variety, equality-based FDs both over- and
//! under-report; similarity-based rules fix both failure modes.
//!
//! ```sh
//! cargo run --example hotel_quality
//! ```

use deptree::core::{Dependency, Fd, Md, Mfd};
use deptree::metrics::Metric;
use deptree::quality::detect;
use deptree::relation::examples::hotels_r1;
use deptree::relation::AttrSet;
use deptree::synth::{entities, EntitiesConfig};

fn main() {
    paper_example();
    at_scale();
}

/// Exactly Table 1: two real errors (t3/t4 and t7/t8), one spurious
/// difference (t5/t6).
fn paper_example() {
    let r = hotels_r1();
    let s = r.schema();
    let region = s.id("region");
    let truth = vec![(3usize, region), (7usize, region)];

    let fd: Box<dyn Dependency> = Box::new(Fd::parse(s, "address -> region").unwrap());
    let mfd: Box<dyn Dependency> = Box::new(Mfd::new(
        s,
        AttrSet::single(s.id("address")),
        vec![(region, Metric::Levenshtein, 4.0)],
    ));
    let md: Box<dyn Dependency> = Box::new(Md::new(
        s,
        vec![(s.id("address"), Metric::Levenshtein, 4.0)],
        AttrSet::single(region),
    ));

    println!("=== Table 1 (8 tuples, 2 planted errors) ===");
    for (name, rule) in [
        ("FD (strict equality)", &fd),
        ("MFD (δ=4 on region)", &mfd),
        ("MD (≈ on address)", &md),
    ] {
        let report = detect::run(&r, std::slice::from_ref(rule));
        let score = detect::score_cells(&report, &truth);
        println!(
            "{name:24} findings={} precision={:.2} recall={:.2} f1={:.2}",
            report.len(),
            score.precision,
            score.recall,
            score.f1()
        );
    }
    println!();
}

/// The same comparison on 300 generated entities with format variety and
/// injected price errors.
fn at_scale() {
    let cfg = EntitiesConfig {
        n_entities: 300,
        max_duplicates: 3,
        variety: 0.6,
        error_rate: 0.05,
        seed: 2024,
    };
    let data = entities::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;
    let s = r.schema();
    let price = s.id("price");
    let truth: Vec<(usize, deptree::relation::AttrId)> =
        data.dirty_rows.iter().map(|&row| (row, price)).collect();

    // Strict FD: zip → price (true entity-wise, broken by variety? zips
    // are clean here; price errors violate it).
    let fd: Box<dyn Dependency> = Box::new(Fd::parse(s, "zip -> price").unwrap());
    // Metric FD: same rule but tolerant to small price differences.
    let mfd: Box<dyn Dependency> = Box::new(Mfd::new(
        s,
        AttrSet::single(s.id("zip")),
        vec![(price, Metric::AbsDiff, 50.0)],
    ));
    // MD: name similarity identifies duplicates; prices must then match.
    let md: Box<dyn Dependency> = Box::new(Md::new(
        s,
        vec![(s.id("name"), Metric::Levenshtein, 6.0)],
        AttrSet::single(price),
    ));

    println!(
        "=== Synthetic entities: {} rows, {} dirty prices ===",
        r.n_rows(),
        data.dirty_rows.len()
    );
    for (name, rule) in [
        ("FD zip→price", &fd),
        ("MFD zip→price (δ=50)", &mfd),
        ("MD name≈→price", &md),
    ] {
        let report = detect::run(r, std::slice::from_ref(rule));
        let score = detect::score_cells(&report, &truth);
        println!(
            "{name:24} findings={:5} precision={:.2} recall={:.2} f1={:.2}",
            report.len(),
            score.precision,
            score.recall,
            score.f1()
        );
    }
}
