#!/usr/bin/env bash
# Local CI gate: formatting, lint hygiene, and the tier-1 test suite.
#
#   scripts/ci.sh
#
# Mirrors what the repository expects before a merge:
#   1. `cargo fmt --check`        — no unformatted code;
#   2. `cargo clippy` twice       — libraries *and binaries* with
#      `unwrap`/`expect` denied (fallible paths must return
#      `DeptreeError`, not abort), then every target (tests, examples,
#      benches) with `-D warnings`;
#   3. tier-1: release build + the root test binaries, run twice — once
#      serial (DEPTREE_THREADS=1) and once on an 8-worker pool
#      (DEPTREE_THREADS=8) — so the thread-count-independence contract of
#      the parallel miners is exercised on every gate; then the serial
#      suite once more back-to-back, so a test that only passes on a
#      fresh process (ordering or leftover-state luck) is caught here
#      and not on a busy CI box;
#   4. pairwise_scaling --smoke — tiny-size run of the blocking/index
#      benchmark that asserts indexed candidate generation reproduces the
#      naive pair scans exactly (MD discovery, DC evidence, dedup);
#   5. columnar_scaling --smoke + the columnar_equivalence suite at
#      DEPTREE_THREADS=1 and =8 — the dictionary-encoded relation core
#      must be byte-identical to the frozen row-major reference paths on
#      every task, and the interning CSV parse must allocate less than a
#      row-materializing one;
#   6. serve_loadgen --smoke — boot the three-phase keep-alive benchmark
#      at a reduced size and require that connection reuse beats
#      close-per-request, the response cache actually hits, and a cached
#      replay is byte-identical to the reply that populated it;
#   7. serve smoke — boot `deptree serve` on an ephemeral port, round-trip
#      `deptree query` calls (the discover reply must be byte-identical to
#      the pre-columnar recorded snapshot), scrape /metrics and require
#      every load-bearing series (including the response-cache counters),
#      SIGTERM it, and require a graceful
#      exit 0;
#   8. gateway smoke — boot `deptree gateway` with two sharded workers,
#      round-trip a merged discover, `kill -9` one worker and require the
#      fan-out to *heal* (full, byte-identical answers via failover
#      re-sharding) before the supervisor's respawn, require the
#      self-healing metric series in the aggregated /metrics, then
#      SIGTERM-drain the whole fleet to exit 0;
#   9. rolling-restart smoke — boot a three-worker sharded gateway, keep
#      a continuous `deptree query` loop running, trigger
#      `deptree query reload`, and require zero dropped requests while
#      every worker restarts exactly once.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy (libraries + binaries; unwrap/expect denied) =="
cargo clippy --workspace --lib --bins --quiet -- \
    -D warnings \
    -D clippy::unwrap_used \
    -D clippy::expect_used

echo "== clippy (all targets) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== tier-1: build =="
cargo build --release --quiet

echo "== tier-1: tests (serial, DEPTREE_THREADS=1) =="
DEPTREE_THREADS=1 cargo test -q

echo "== tier-1: tests (parallel, DEPTREE_THREADS=8) =="
DEPTREE_THREADS=8 cargo test -q

echo "== tier-1: tests (repeat run, flake gate) =="
DEPTREE_THREADS=1 cargo test -q

echo "== pairwise_scaling smoke (indexed ≡ naive) =="
cargo run --release --quiet --bin pairwise_scaling -- --smoke

echo "== columnar_scaling smoke (columnar ≡ row-major, interned parse allocates less) =="
cargo run --release --quiet --bin columnar_scaling -- --smoke

echo "== columnar equivalence suite (serial + 8-thread pools) =="
DEPTREE_THREADS=1 cargo test -q --test columnar_equivalence
DEPTREE_THREADS=8 cargo test -q --test columnar_equivalence

echo "== serve_loadgen smoke (keep-alive beats close, cache hits, byte-identical replay) =="
cargo run --release --quiet --bin serve_loadgen -- --smoke

echo "== serve smoke (boot, query round trip, drain to exit 0) =="
serve_log="$(mktemp)"
trap 'rm -f "$serve_log"' EXIT
target/release/deptree serve --data hotels=data/hotels.csv:t,t,t,n,n \
    --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve never reported its address"; cat "$serve_log"; exit 1; }
target/release/deptree query datasets --addr "$addr"
target/release/deptree query detect --addr "$addr" --dataset hotels \
    --rule "address -> region" >/dev/null
# A discover round trip moves the engine counters (partition-cache
# hits/misses), so the scrape below checks real numbers, not zeros.
# Its reply is also the columnar regression gate: byte-identical to the
# reply recorded before the columnar relation core landed.
discover_reply="$(target/release/deptree query discover --addr "$addr" \
    --dataset hotels --max-lhs 2)"
if ! diff <(printf '%s\n' "$discover_reply") \
        tests/snapshots/discover_hotels_maxlhs2.txt; then
    echo "discover reply drifted from the pre-columnar snapshot"
    exit 1
fi

echo "== metrics scrape (required series present) =="
metrics="$(target/release/deptree query metrics --addr "$addr")"
for series in \
    'deptree_requests_total{route="/v1/discover",status="200"}' \
    deptree_shed_total \
    deptree_request_duration_seconds_bucket \
    deptree_inflight_requests \
    'deptree_dataset_bytes{dataset="hotels"}' \
    deptree_cache_hits_total \
    deptree_response_cache_hits_total \
    deptree_response_cache_misses_total \
    deptree_response_cache_evictions_total \
    deptree_partition_product_radix_total \
    deptree_partition_product_hash_total \
    deptree_pairgen_distinct_gram_hits_total; do
    if ! grep -qF "$series" <<<"$metrics"; then
        echo "missing required metrics series: $series"
        echo "$metrics"
        exit 1
    fi
done

kill -TERM "$serve_pid"
wait "$serve_pid"   # set -e: non-zero (ungraceful) drain fails the gate

echo "== gateway smoke (shard fan-out, worker kill → re-shard heal, respawn, drain) =="
gw_log="$(mktemp)"
trap 'rm -f "$serve_log" "$gw_log"' EXIT
# A wide respawn window so the healed answers below are provably the
# work of failover re-sharding, not of the supervisor's respawn.
target/release/deptree gateway --data hotels=data/hotels.csv:t,t,t,n,n \
    --shard hotels --workers 2 --respawn-base-ms 3000 \
    --addr 127.0.0.1:0 >"$gw_log" 2>&1 &
gw_pid=$!
gw_addr=""
for _ in $(seq 1 100); do
    gw_addr="$(sed -n 's/^listening on //p' "$gw_log")"
    [ -n "$gw_addr" ] && break
    kill -0 "$gw_pid" 2>/dev/null || { cat "$gw_log"; exit 1; }
    sleep 0.1
done
[ -n "$gw_addr" ] || { echo "gateway never reported its address"; cat "$gw_log"; exit 1; }
for _ in $(seq 1 100); do
    [ "$(grep -c ') up at ' "$gw_log")" -ge 2 ] && break
    sleep 0.1
done
[ "$(grep -c ') up at ' "$gw_log")" -ge 2 ] || {
    echo "gateway workers never came up"; cat "$gw_log"; exit 1; }

# A healthy merged fan-out first — the baseline the healed answers
# must reproduce byte-for-byte.
gw_baseline="$(target/release/deptree query discover --addr "$gw_addr" \
    --dataset hotels --max-lhs 2)"

# kill -9 one worker: within the re-shard budget (and well before the
# 3s respawn backoff) the fan-out must be whole again — the dead
# worker's slice re-homed onto the survivor. A sound degraded partial
# (exit 6) is tolerated only inside the brief re-home window; any
# other exit code is a dropped request and fails the gate.
victim="$(sed -n 's/^gateway: worker 0 (pid \([0-9]*\)) up at.*/\1/p' "$gw_log" | head -n 1)"
[ -n "$victim" ] || { echo "no worker 0 pid in gateway log"; cat "$gw_log"; exit 1; }
kill -9 "$victim"
healed=""
healed_reply=""
for _ in $(seq 1 50); do
    set +e
    healed_reply="$(target/release/deptree query discover --addr "$gw_addr" \
        --dataset hotels --max-lhs 2 2>/dev/null)"
    healed_rc=$?
    set -e
    if [ "$healed_rc" -eq 0 ]; then healed=yes; break; fi
    [ "$healed_rc" -eq 6 ] || {
        echo "expected healed (0) or sound partial (6) after the kill, got $healed_rc"
        echo "$healed_reply"; cat "$gw_log"; exit 1; }
    sleep 0.05
done
[ -n "$healed" ] || {
    echo "fan-out never healed inside the re-shard budget"; cat "$gw_log"; exit 1; }
[ "$healed_reply" = "$gw_baseline" ] || {
    echo "re-sharded reply drifted from the healthy baseline:"
    diff <(printf '%s\n' "$gw_baseline") <(printf '%s\n' "$healed_reply") || true
    exit 1; }
gw_metrics="$(target/release/deptree query metrics --addr "$gw_addr")"
grep -Eq '^deptree_reshard_total [1-9]' <<<"$gw_metrics" || {
    echo "healed answers without a re-shard on the books"; echo "$gw_metrics"; exit 1; }
grep -Fq 'deptree_gateway_worker_restarts_total{worker="0"} 0' <<<"$gw_metrics" || {
    echo "heal arrived only after the respawn — that is not re-sharding"
    echo "$gw_metrics"; cat "$gw_log"; exit 1; }

echo "== gateway metrics scrape (self-healing series present) =="
for series in \
    deptree_worker_slot_state \
    deptree_reshard_total \
    deptree_hedged_reads_total \
    deptree_worker_force_kill_total; do
    if ! grep -qF "$series" <<<"$gw_metrics"; then
        echo "missing required gateway metrics series: $series"
        echo "$gw_metrics"
        exit 1
    fi
done

# The supervisor still respawns the worker, visible in the aggregated
# scrape; once it settles, the replane loop re-absorbs the slice.
restarted=""
for _ in $(seq 1 150); do
    if target/release/deptree query metrics --addr "$gw_addr" \
        | grep -Eq 'deptree_gateway_worker_restarts_total\{worker="0"\} [1-9]'; then
        restarted=yes
        break
    fi
    sleep 0.2
done
[ -n "$restarted" ] || { echo "worker 0 never respawned"; cat "$gw_log"; exit 1; }

kill -TERM "$gw_pid"
wait "$gw_pid"   # set -e: a fleet that does not drain to 0 fails the gate

echo "== gateway rolling-restart smoke (3 workers, zero dropped requests) =="
gw2_log="$(mktemp)"
reload_fail_log="$(mktemp)"
reload_keep="$(mktemp)"
trap 'rm -f "$serve_log" "$gw_log" "$gw2_log" "$reload_fail_log" "$reload_keep"' EXIT
target/release/deptree gateway --data hotels=data/hotels.csv:t,t,t,n,n \
    --shard hotels --workers 3 --addr 127.0.0.1:0 >"$gw2_log" 2>&1 &
gw2_pid=$!
gw2_addr=""
for _ in $(seq 1 100); do
    gw2_addr="$(sed -n 's/^listening on //p' "$gw2_log")"
    [ -n "$gw2_addr" ] && break
    kill -0 "$gw2_pid" 2>/dev/null || { cat "$gw2_log"; exit 1; }
    sleep 0.1
done
[ -n "$gw2_addr" ] || { echo "gateway never reported its address"; cat "$gw2_log"; exit 1; }
for _ in $(seq 1 100); do
    [ "$(grep -c ') up at ' "$gw2_log")" -ge 3 ] && break
    sleep 0.1
done
[ "$(grep -c ') up at ' "$gw2_log")" -ge 3 ] || {
    echo "gateway workers never came up"; cat "$gw2_log"; exit 1; }

# Continuous query pressure across the whole rolling restart. Every
# request must land a full exit-0 answer: a degraded partial (6) or a
# transport failure both count as dropped and fail the gate.
(
    while [ -f "$reload_keep" ]; do
        target/release/deptree query discover --addr "$gw2_addr" \
            --dataset hotels --max-lhs 2 >/dev/null 2>&1 \
            || echo "dropped request during rolling restart" >>"$reload_fail_log"
        sleep 0.05
    done
) &
reload_loop_pid=$!

target/release/deptree query reload --addr "$gw2_addr"
rolled=""
reload_metrics=""
for _ in $(seq 1 300); do
    reload_metrics="$(target/release/deptree query metrics --addr "$gw2_addr")"
    if grep -Fq 'deptree_gateway_worker_restarts_total{worker="0"} 1' <<<"$reload_metrics" \
        && grep -Fq 'deptree_gateway_worker_restarts_total{worker="1"} 1' <<<"$reload_metrics" \
        && grep -Fq 'deptree_gateway_worker_restarts_total{worker="2"} 1' <<<"$reload_metrics"; then
        rolled=yes
        break
    fi
    sleep 0.2
done
[ -n "$rolled" ] || {
    echo "rolling restart never cycled every worker"; echo "$reload_metrics"
    cat "$gw2_log"; exit 1; }
# Let the loop observe the settled fleet once more, then stop it.
sleep 0.5
rm -f "$reload_keep"
wait "$reload_loop_pid"
if [ -s "$reload_fail_log" ]; then
    echo "dropped requests during the rolling restart:"
    cat "$reload_fail_log"; cat "$gw2_log"; exit 1
fi
# Exactly once each — a second restart would mean a crash mid-reload.
reload_metrics="$(target/release/deptree query metrics --addr "$gw2_addr")"
for w in 0 1 2; do
    grep -Fq "deptree_gateway_worker_restarts_total{worker=\"$w\"} 1" <<<"$reload_metrics" || {
        echo "worker $w did not restart exactly once"; echo "$reload_metrics"; exit 1; }
done

kill -TERM "$gw2_pid"
wait "$gw2_pid"   # set -e: a fleet that does not drain to 0 fails the gate

echo "ci: all green"
