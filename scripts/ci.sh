#!/usr/bin/env bash
# Local CI gate: formatting, lint hygiene, and the tier-1 test suite.
#
#   scripts/ci.sh
#
# Mirrors what the repository expects before a merge:
#   1. `cargo fmt --check`        — no unformatted code;
#   2. `cargo clippy` on library  — panicking escape hatches (`unwrap`,
#      crates with `-D warnings`    `expect`) are denied in library code:
#      plus unwrap/expect denied    fallible paths must return
#                                   `DeptreeError`, not abort;
#   3. tier-1: release build + the root test binaries, run twice — once
#      serial (DEPTREE_THREADS=1) and once on an 8-worker pool
#      (DEPTREE_THREADS=8) — so the thread-count-independence contract of
#      the parallel miners is exercised on every gate;
#   4. pairwise_scaling --smoke — tiny-size run of the blocking/index
#      benchmark that asserts indexed candidate generation reproduces the
#      naive pair scans exactly (MD discovery, DC evidence, dedup).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy (libraries; unwrap/expect denied) =="
cargo clippy --workspace --lib --quiet -- \
    -D warnings \
    -D clippy::unwrap_used \
    -D clippy::expect_used

echo "== tier-1: build =="
cargo build --release --quiet

echo "== tier-1: tests (serial, DEPTREE_THREADS=1) =="
DEPTREE_THREADS=1 cargo test -q

echo "== tier-1: tests (parallel, DEPTREE_THREADS=8) =="
DEPTREE_THREADS=8 cargo test -q

echo "== pairwise_scaling smoke (indexed ≡ naive) =="
cargo run --release --quiet --bin pairwise_scaling -- --smoke

echo "ci: all green"
