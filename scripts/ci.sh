#!/usr/bin/env bash
# Local CI gate: formatting, lint hygiene, and the tier-1 test suite.
#
#   scripts/ci.sh
#
# Mirrors what the repository expects before a merge:
#   1. `cargo fmt --check`        — no unformatted code;
#   2. `cargo clippy` twice       — libraries *and binaries* with
#      `unwrap`/`expect` denied (fallible paths must return
#      `DeptreeError`, not abort), then every target (tests, examples,
#      benches) with `-D warnings`;
#   3. tier-1: release build + the root test binaries, run twice — once
#      serial (DEPTREE_THREADS=1) and once on an 8-worker pool
#      (DEPTREE_THREADS=8) — so the thread-count-independence contract of
#      the parallel miners is exercised on every gate; then the serial
#      suite once more back-to-back, so a test that only passes on a
#      fresh process (ordering or leftover-state luck) is caught here
#      and not on a busy CI box;
#   4. pairwise_scaling --smoke — tiny-size run of the blocking/index
#      benchmark that asserts indexed candidate generation reproduces the
#      naive pair scans exactly (MD discovery, DC evidence, dedup);
#   5. serve smoke — boot `deptree serve` on an ephemeral port, round-trip
#      `deptree query` calls, scrape /metrics and require every load-
#      bearing series, SIGTERM it, and require a graceful exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy (libraries + binaries; unwrap/expect denied) =="
cargo clippy --workspace --lib --bins --quiet -- \
    -D warnings \
    -D clippy::unwrap_used \
    -D clippy::expect_used

echo "== clippy (all targets) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== tier-1: build =="
cargo build --release --quiet

echo "== tier-1: tests (serial, DEPTREE_THREADS=1) =="
DEPTREE_THREADS=1 cargo test -q

echo "== tier-1: tests (parallel, DEPTREE_THREADS=8) =="
DEPTREE_THREADS=8 cargo test -q

echo "== tier-1: tests (repeat run, flake gate) =="
DEPTREE_THREADS=1 cargo test -q

echo "== pairwise_scaling smoke (indexed ≡ naive) =="
cargo run --release --quiet --bin pairwise_scaling -- --smoke

echo "== serve smoke (boot, query round trip, drain to exit 0) =="
serve_log="$(mktemp)"
trap 'rm -f "$serve_log"' EXIT
target/release/deptree serve --data hotels=data/hotels.csv:t,t,t,n,n \
    --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve never reported its address"; cat "$serve_log"; exit 1; }
target/release/deptree query datasets --addr "$addr"
target/release/deptree query detect --addr "$addr" --dataset hotels \
    --rule "address -> region" >/dev/null
# A discover round trip moves the engine counters (partition-cache
# hits/misses), so the scrape below checks real numbers, not zeros.
target/release/deptree query discover --addr "$addr" --dataset hotels \
    --max-lhs 2 >/dev/null

echo "== metrics scrape (required series present) =="
metrics="$(target/release/deptree query metrics --addr "$addr")"
for series in \
    'deptree_requests_total{route="/v1/discover",status="200"}' \
    deptree_shed_total \
    deptree_request_duration_seconds_bucket \
    deptree_inflight_requests \
    deptree_cache_hits_total; do
    if ! grep -qF "$series" <<<"$metrics"; then
        echo "missing required metrics series: $series"
        echo "$metrics"
        exit 1
    fi
done

kill -TERM "$serve_pid"
wait "$serve_pid"   # set -e: non-zero (ungraceful) drain fails the gate

echo "ci: all green"
