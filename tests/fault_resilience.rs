//! Fault-injection resilience suite: every registered dependency class
//! must degrade gracefully — no panics, sound partial output — on every
//! corruption scenario the [`deptree::synth::fault`] harness produces.
//!
//! The matrix is `FaultPlan::scenarios` (cell corruption, null storms,
//! row duplication, garbled encodings, schema drift) × `DepKind::ALL`
//! (all 24 notations of the survey). Each class is exercised through its
//! discovery algorithm and/or a representative constructed dependency;
//! heavy searches run under a node budget, which doubles as coverage of
//! the anytime paths on dirty data.

mod common;

use deptree::core::engine::{Budget, Exec};
use deptree::core::{DepKind, Dependency, Fd, Interval, Md, NedAtom, SimFn};
use deptree::discovery::{
    cd, cfd, conditional, cords, dc, dd, ecfd, fastfd, ffd, md, mfd, mvd, ned, nud, od, pacman,
    pfd, schemes, sd, tane,
};
use deptree::metrics::Metric;
use deptree::quality::{cqa, dedup, repair, stream};
use deptree::relation::{parse_csv_lossy, to_csv, AttrId, AttrSet, Relation, ValueType};
use deptree::synth::fault::{FaultPlan, FAULT_CLASSES};
use deptree::synth::Rng;

/// Node budget for the expensive lattice/evidence searches so the whole
/// matrix stays fast; exhaustion is fine — the point is no panics and
/// sound partials.
const NODES: u64 = 2_000;

fn exec() -> Exec {
    Exec::new(Budget::default().with_max_nodes(NODES))
}

/// Exercise one dependency class on a (possibly corrupted) relation.
/// Returning without panicking is the property under test; cheap
/// soundness assertions ride along where a validity check is total.
fn exercise(kind: DepKind, r: &Relation) {
    let attrs: Vec<AttrId> = r.schema().ids().collect();
    let (a0, a1) = (attrs[0], attrs[attrs.len() - 1]);
    let metric0 = Metric::default_for(r.schema().ty(a0));
    let metric1 = Metric::default_for(r.schema().ty(a1));
    match kind {
        DepKind::Fd => {
            let out = tane::discover_bounded(
                r,
                &tane::TaneConfig {
                    max_lhs: 2,
                    max_error: 0.0,
                },
                &exec(),
            );
            for fd in &out.result.fds {
                assert!(fd.holds(r), "unsound FD {fd} from corrupted input");
            }
            let _ = fastfd::discover_bounded(r, &exec());
        }
        DepKind::Afd => {
            let _ = tane::discover_bounded(
                r,
                &tane::TaneConfig {
                    max_lhs: 2,
                    max_error: 0.2,
                },
                &exec(),
            );
        }
        DepKind::Sfd => {
            let _ = cords::discover(r, &cords::CordsConfig::default());
        }
        DepKind::Pfd => {
            let _ = pfd::discover_bounded(r, &pfd::PfdConfig::default(), &exec());
        }
        DepKind::Nud => {
            let _ = nud::discover_bounded(r, &nud::NudConfig::default(), &exec());
        }
        DepKind::Cfd => {
            let _ = cfd::ctane_bounded(r, &cfd::CfdConfig::default(), &exec());
        }
        DepKind::ECfd => {
            let _ = ecfd::discover_bounded(r, &ecfd::ECfdConfig::default(), &exec());
        }
        DepKind::Mvd => {
            let _ = mvd::discover_bounded(r, &mvd::MvdConfig::default(), &exec());
        }
        DepKind::Fhd => {
            let _ = schemes::discover_fhds(r, &schemes::SchemeConfig::default());
        }
        DepKind::Amvd => {
            let _ = schemes::discover_amvds(r, &schemes::SchemeConfig::default());
        }
        DepKind::Mfd => {
            let _ = mfd::discover_bounded(r, &mfd::MfdConfig::default(), &exec());
        }
        DepKind::Ned => {
            let rhs = vec![NedAtom::new(a1, metric1, 1.0)];
            let _ = ned::discover_lhs_bounded(r, rhs, &ned::NedConfig::default(), &exec());
        }
        DepKind::Dd => {
            let _ = dd::discover_bounded(r, &dd::DdConfig::default(), &exec());
        }
        DepKind::Cdd => {
            let _ = conditional::discover_cdds(r, &conditional::ConditionalConfig::default());
        }
        DepKind::Cd => {
            let known = [SimFn::single(a0, metric0, 1.0)];
            let new = SimFn::single(a1, metric1, 1.0);
            let _ = cd::discover_incremental(r, &known, &new, &cd::CdConfig::default());
        }
        DepKind::Pac => {
            let template = pacman::PacTemplate {
                lhs: vec![a0],
                rhs: vec![a1],
            };
            if let Some(pac) = pacman::instantiate(r, &template, &pacman::PacManConfig::default()) {
                let _ = pacman::alarm(r, &pac);
            }
        }
        DepKind::Ffd => {
            let _ = ffd::discover_bounded(r, &ffd::FfdConfig::default(), &exec());
        }
        DepKind::Md => {
            let out =
                md::discover_bounded(r, AttrSet::single(a1), &md::MdConfig::default(), &exec());
            // MDs drive downstream dedup — run the budgeted clustering too.
            let mds: Vec<Md> = out.result.into_iter().map(|s| s.md).collect();
            let _ = dedup::cluster_bounded(r, &mds, &exec());
        }
        DepKind::Cmd => {
            let _ = conditional::discover_cmds(
                r,
                AttrSet::single(a1),
                &conditional::ConditionalConfig::default(),
            );
        }
        DepKind::Ofd => {
            let _ = schemes::discover_ofds(r);
        }
        DepKind::Od => {
            let out = od::discover_bounded(r, &od::OdConfig::default(), &exec());
            for o in &out.result {
                assert!(o.holds(r), "unsound OD {o} from corrupted input");
            }
        }
        DepKind::Dc => {
            let _ = dc::discover_bounded(r, &dc::DcConfig::default(), &exec());
        }
        DepKind::Sd => {
            let _ = sd::discover_sd(r, a0, a1, 0.8);
        }
        DepKind::Csd => {
            let _ = sd::csd_tableau_bounded(r, a0, a1, Interval::new(-5.0, 5.0), 0.8, &exec());
        }
    }
}

/// Quality pipelines must also survive every scenario: detect → repair →
/// cqa on a representative FD.
fn exercise_quality(r: &Relation) {
    if r.n_attrs() < 2 || r.n_rows() == 0 {
        return;
    }
    let attrs: Vec<AttrId> = r.schema().ids().collect();
    let fd = Fd::new(
        r.schema(),
        AttrSet::single(attrs[0]),
        AttrSet::single(attrs[attrs.len() - 1]),
    );
    let repaired = repair::repair_fds_bounded(r, std::slice::from_ref(&fd), 5, &exec());
    if repaired.complete {
        assert!(
            fd.holds(&repaired.result.relation),
            "complete repair must restore {fd}"
        );
    }
    let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd.clone())];
    let _ = repair::deletion_repair_bounded(r, &rules, &exec());
    let _ = cqa::consistent_rows_bounded(r, &rules, &exec());

    // Streaming speed constraints (SCREEN) must be total on faulted data
    // too: nulls, mixed-type cells and duplicate timestamps all flow
    // through `series`, never panic, and repair deterministically.
    let numeric: Vec<AttrId> = r
        .schema()
        .iter()
        .filter(|(_, a)| a.ty == ValueType::Numeric)
        .map(|(id, _)| id)
        .collect();
    if let (Some(&t), Some(&y)) = (numeric.first(), numeric.last()) {
        let sc = stream::SpeedConstraint::symmetric(1.5);
        let v1 = stream::speed_violations(r, t, y, sc);
        let v2 = stream::speed_violations(r, t, y, sc);
        assert_eq!(v1, v2, "speed_violations must be deterministic");
        let (repaired, changed) = stream::screen_repair(r, t, y, sc);
        let (repaired2, changed2) = stream::screen_repair(r, t, y, sc);
        assert_eq!(changed, changed2, "screen_repair must be deterministic");
        assert_eq!(repaired, repaired2, "screen_repair must be deterministic");
        assert_eq!(repaired.n_rows(), r.n_rows(), "repair must not drop rows");
        assert!(changed.iter().all(|&row| row < r.n_rows()));
    }
}

/// The full matrix: every fault scenario × every registered dependency
/// class, plus the quality pipelines, at two corruption rates.
#[test]
fn every_class_survives_every_fault_scenario() {
    let mut rng = Rng::seed_from_u64(0xFA17);
    for rate in [0.1, 0.5] {
        let base = common::mixed_relation(&mut rng);
        // One scenario per fault class plus the everything-at-once combo.
        let scenarios = FaultPlan::scenarios(0xBAD5EED, rate);
        assert_eq!(scenarios.len(), FAULT_CLASSES.len() + 1);
        for (name, plan) in scenarios {
            let report = plan.apply(&base);
            let r = &report.relation;
            // Corruption mutates cells in place; the columnar invariants
            // (dense codes, duplicate-free dictionaries, consistent null
            // bitmaps, intact intern chains) must survive every scenario.
            r.debug_validate();
            for kind in DepKind::ALL {
                exercise(kind, r);
            }
            exercise_quality(r);
            // Determinism: re-applying the identical plan reproduces the
            // corruption bit-for-bit.
            assert_eq!(
                report.relation,
                plan.apply(&base).relation,
                "scenario {name} must be deterministic"
            );
        }
    }
}

/// Text-level faults (BOM, CRLF, ragged rows, mojibake) flow through the
/// lossy parser and then the full class matrix.
#[test]
fn csv_faults_flow_through_lossy_parse_into_every_class() {
    let mut rng = Rng::seed_from_u64(0xC57);
    let base = common::mixed_relation(&mut rng);
    if base.n_rows() == 0 {
        return;
    }
    let clean = to_csv(&base);
    let types: Vec<ValueType> = base.schema().iter().map(|(_, a)| a.ty).collect();
    for (name, plan) in FaultPlan::scenarios(0x7E57, 0.3) {
        let dirty = plan.apply_csv(&clean);
        let parsed = parse_csv_lossy(&dirty, &types)
            .unwrap_or_else(|e| panic!("lossy parse died on {name}: {e}"));
        // The interning parse must emit a structurally valid columnar
        // relation no matter how garbled the text was.
        parsed.relation.debug_validate();
        for kind in DepKind::ALL {
            exercise(kind, &parsed.relation);
        }
    }
}

/// The same matrix with the frozen row-major reference paths forced via
/// `compat`: every class on every scenario, no panics, sound partials —
/// corrupted data must not be able to tell the two storage modes apart.
#[test]
fn every_class_survives_every_fault_scenario_in_row_major_mode() {
    use deptree::relation::compat;
    let _guard = compat::force_row_major();
    let mut rng = Rng::seed_from_u64(0xFA18);
    let base = common::mixed_relation(&mut rng);
    for (name, plan) in FaultPlan::scenarios(0xBAD5EED, 0.4) {
        let report = plan.apply(&base);
        let r = &report.relation;
        r.debug_validate();
        for kind in DepKind::ALL {
            exercise(kind, r);
        }
        exercise_quality(r);
        assert_eq!(
            report.relation,
            plan.apply(&base).relation,
            "scenario {name} must be deterministic in row-major mode"
        );
    }
}

/// Sanity: a clean relation through an empty plan is untouched, and the
/// exercisers accept it too (the matrix isn't vacuous).
#[test]
fn empty_plan_is_identity() {
    let mut rng = Rng::seed_from_u64(0x1D);
    let base = common::mixed_relation(&mut rng);
    let report = FaultPlan::new(9).apply(&base);
    assert_eq!(report.relation, base);
    assert!(report.corrupted_cells.is_empty());
    assert!(report.nulled_cells.is_empty());
    for kind in DepKind::ALL {
        exercise(kind, &report.relation);
    }
}

/// SCREEN on a planted time series: spikes are real violations before the
/// repair and gone after it — and the repaired stream survives the whole
/// fault matrix without panicking.
#[test]
fn screen_repair_enforces_the_speed_constraint() {
    use deptree::relation::{RelationBuilder, Value};

    // A sensor ramp (slope 1) with two planted spikes at rows 4 and 9.
    let mut b = RelationBuilder::new()
        .attr("t", ValueType::Numeric)
        .attr("y", ValueType::Numeric);
    for i in 0..16i64 {
        let y = match i {
            4 => 100.0,
            9 => -80.0,
            _ => i as f64,
        };
        b = b.row(vec![Value::int(i), Value::float(y)]);
    }
    let r = b.build().unwrap_or_else(|e| panic!("builder: {e}"));
    let schema = r.schema();
    let (t, y) = (schema.id("t"), schema.id("y"));
    let sc = stream::SpeedConstraint::symmetric(1.5);

    let before = stream::speed_violations(&r, t, y, sc);
    assert!(!before.is_empty(), "planted spikes must violate the bound");

    let (repaired, changed) = stream::screen_repair(&r, t, y, sc);
    assert!(
        stream::speed_violations(&repaired, t, y, sc).is_empty(),
        "SCREEN must leave no residual speed violations"
    );
    assert!(changed.contains(&4) && changed.contains(&9), "{changed:?}");
    // Rows inside the bound keep their original values.
    for row in 0..r.n_rows() {
        if !changed.contains(&row) {
            assert_eq!(repaired.value(row, y), r.value(row, y), "row {row}");
        }
    }

    // The repaired series through every fault scenario: still total.
    for (name, plan) in FaultPlan::scenarios(0x5C4EE7, 0.4) {
        let faulted = plan.apply(&repaired).relation;
        let _ = stream::speed_violations(&faulted, t, y, sc);
        let (again, _) = stream::screen_repair(&faulted, t, y, sc);
        assert_eq!(again.n_rows(), faulted.n_rows(), "scenario {name}");
    }
}
