//! Columnar ↔ row-major differential harness.
//!
//! The columnar relation core keeps the pre-columnar row-oriented
//! algorithms alive behind [`compat::force_row_major`] as a frozen
//! reference. This suite is the gate on that design: every discovery and
//! quality task must render **byte-identical** output on the fast
//! columnar paths and on the row-major reference — at 1/2/8 threads,
//! under tight node and row budgets (sound partials included), across
//! the paper's worked examples, seeded synthetics and
//! fault-plan-corrupted CSVs. Deadline budgets cut at a
//! timing-dependent point, so they are checked for soundness instead of
//! bytes.
//!
//! The mode flag is process-global; sections that force row-major hold a
//! lock so two tests never fight over the flag. The contract that makes
//! a race harmless anyway — both paths produce identical bytes — is
//! exactly what this suite proves.

mod common;

use deptree::core::engine::{Budget, Exec};
use deptree::core::{Dependency, NedAtom};
use deptree::discovery::{dc, dd, fastfd, md, ned, od, tane};
use deptree::metrics::Metric;
use deptree::relation::examples::{dataspace_cd, hotels_r1, hotels_r5, hotels_r6, hotels_r7};
use deptree::relation::{compat, parse_csv_lossy, to_csv, AttrSet, Relation, ValueType};
use deptree::serve::tasks::{self, ProfileOpts};
use deptree::synth::fault::FaultPlan;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

const THREADS: [usize; 3] = [1, 2, 8];

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the row-major reference paths forced on, serialized so
/// concurrent tests in this binary don't toggle the flag mid-run.
fn row_major<T>(f: impl FnOnce() -> T) -> T {
    let _lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _mode = compat::force_row_major();
    f()
}

/// The core assertion: `render` must produce the same bytes on the
/// columnar paths and the row-major reference, at every thread count.
fn assert_equiv(label: &str, budget: &Budget, render: &dyn Fn(&Exec) -> String) {
    let base = render(&Exec::new(budget.clone()).with_threads(1));
    for threads in THREADS {
        let exec = Exec::new(budget.clone()).with_threads(threads);
        assert_eq!(
            render(&exec),
            base,
            "{label}: columnar output drifts at {threads} thread(s)"
        );
        let slow = row_major(|| render(&Exec::new(budget.clone()).with_threads(threads)));
        assert_eq!(
            slow, base,
            "{label}: row-major reference differs at {threads} thread(s)"
        );
    }
}

// ---------------------------------------------------------------------
// Renderers: one string per task family, exact bytes (scores rendered
// via to_bits where floats are involved).
// ---------------------------------------------------------------------

/// The serve `profile` task: TANE (exact + approximate), CORDS soft FDs
/// and — on numeric schemas — OD and DC discovery, all through the one
/// rendering path the CLI and the server share.
fn render_profile(r: &Relation, opts: &ProfileOpts, exec: &Exec) -> String {
    let report = tasks::profile(r, opts, exec);
    format!(
        "{}|exhausted={:?}|fds={:?}",
        report.text, report.exhausted, report.fds
    )
}

/// The direct miners the profile doesn't reach: FastFD, MD, DD, NED, OD,
/// DC discovery, rendered with bit-exact scores.
fn render_miners(r: &Relation, exec: &Exec) -> String {
    let mut out = String::new();
    let ffd = fastfd::discover_bounded(r, exec);
    let _ = writeln!(out, "fastfd: {:?}", render_deps(&ffd.result.fds));
    if r.n_attrs() >= 2 {
        let s = r.schema();
        let attrs: Vec<_> = s.ids().collect();
        let rhs_attr = attrs[attrs.len() - 1];
        let cfg = md::MdConfig {
            min_support: 0.0,
            min_confidence: 0.5,
            thresholds_per_attr: 2,
            max_lhs: 2,
        };
        let mds = md::discover_bounded(r, AttrSet::single(rhs_attr), &cfg, exec);
        for m in &mds.result {
            let _ = writeln!(
                out,
                "md: {} s={:016x} c={:016x}",
                m.md,
                m.support.to_bits(),
                m.confidence.to_bits()
            );
        }
        let dds = dd::discover_bounded(
            r,
            &dd::DdConfig {
                thresholds_per_attr: 2,
                min_support: 2,
                max_lhs: 1,
            },
            exec,
        );
        let _ = writeln!(out, "dd: {:?}", render_deps(&dds.result));
        let m1 = Metric::default_for(s.ty(rhs_attr));
        let neds = ned::discover_lhs_bounded(
            r,
            vec![NedAtom::new(rhs_attr, m1, 1.0)],
            &ned::NedConfig::default(),
            exec,
        );
        let _ = writeln!(out, "ned: {:?}", neds.result.map(|n| n.to_string()));
    }
    let ods = od::discover_bounded(r, &od::OdConfig { max_lhs: 2 }, exec);
    let _ = writeln!(out, "od: {:?}", render_deps(&ods.result));
    let dcs = dc::discover_bounded(r, &dc::DcConfig::default(), exec);
    let _ = writeln!(out, "dc: {:?}", render_deps(&dcs.result.dcs));
    out
}

fn render_deps<D: std::fmt::Display>(v: &[D]) -> Vec<String> {
    v.iter().map(|d| d.to_string()).collect()
}

/// The quality tasks: validate, detect, repair (report + repaired CSV)
/// and dedup on a representative rule over the first/last attributes.
fn render_quality(r: &Relation, exec: &Exec) -> String {
    if r.n_attrs() < 2 || r.n_rows() == 0 {
        return String::from("degenerate");
    }
    let s = r.schema();
    let attrs: Vec<_> = s.ids().collect();
    let rule = format!("{} -> {}", s.name(attrs[0]), s.name(attrs[attrs.len() - 1]));
    let mut out = String::new();
    match tasks::validate(r, &rule) {
        Ok(rep) => out.push_str(&rep.text),
        Err(e) => {
            let _ = writeln!(out, "validate error: {e}");
        }
    }
    match tasks::detect(r, &rule) {
        Ok(rep) => out.push_str(&rep.text),
        Err(e) => {
            let _ = writeln!(out, "detect error: {e}");
        }
    }
    match tasks::repair(r, &rule, exec) {
        Ok((rep, fixed)) => {
            out.push_str(&rep.text);
            out.push_str(&to_csv(&fixed));
        }
        Err(e) => {
            let _ = writeln!(out, "repair error: {e}");
        }
    }
    match tasks::dedup(r, &[s.name(attrs[0]).to_string()], exec) {
        Ok(rep) => out.push_str(&rep.text),
        Err(e) => {
            let _ = writeln!(out, "dedup error: {e}");
        }
    }
    out
}

// ---------------------------------------------------------------------
// Datasets.
// ---------------------------------------------------------------------

fn paper_tables() -> Vec<(String, Relation)> {
    vec![
        ("r1".into(), hotels_r1()),
        ("r5".into(), hotels_r5()),
        ("r6".into(), hotels_r6()),
        ("r7".into(), hotels_r7()),
        ("dataspace".into(), dataspace_cd()),
    ]
}

fn seeded_synthetics() -> Vec<(String, Relation)> {
    let mut rng = deptree::synth::rng(0xC01A);
    let mut out = Vec::new();
    for case in 0..4 {
        out.push((format!("small #{case}"), common::small_relation(&mut rng)));
    }
    for case in 0..3 {
        out.push((
            format!("numeric #{case}"),
            common::numeric_relation(&mut rng),
        ));
    }
    for case in 0..3 {
        out.push((format!("mixed #{case}"), common::mixed_relation(&mut rng)));
    }
    for case in 0..3 {
        out.push((
            format!("arbitrary #{case}"),
            common::arbitrary_relation(&mut rng),
        ));
    }
    out
}

/// Every fault scenario, applied at the CSV text level and re-ingested
/// through the lossy parser — the relations the service actually sees on
/// dirty uploads.
fn corrupted_relations() -> Vec<(String, Relation)> {
    let mut rng = deptree::synth::rng(0xFA0C7);
    let base = common::mixed_relation(&mut rng);
    let clean = to_csv(&base);
    let types: Vec<ValueType> = base.schema().iter().map(|(_, a)| a.ty).collect();
    FaultPlan::scenarios(0xC0DEC, 0.3)
        .into_iter()
        .map(|(name, plan)| {
            let dirty = plan.apply_csv(&clean);
            let parsed = parse_csv_lossy(&dirty, &types)
                .unwrap_or_else(|e| panic!("lossy parse died on {name}: {e}"));
            parsed.relation.debug_validate();
            (format!("fault {name}"), parsed.relation)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Byte-identity: unbounded runs.
// ---------------------------------------------------------------------

#[test]
fn profile_is_byte_identical_on_paper_tables() {
    for (label, r) in paper_tables() {
        for opts in [
            ProfileOpts {
                max_lhs: 2,
                error: 0.0,
            },
            ProfileOpts {
                max_lhs: 2,
                error: 0.1,
            },
        ] {
            assert_equiv(
                &format!("profile {label} ε={}", opts.error),
                &Budget::default(),
                &|exec| render_profile(&r, &opts, exec),
            );
        }
    }
}

#[test]
fn profile_is_byte_identical_on_synthetics_and_corrupted_csvs() {
    let opts = ProfileOpts {
        max_lhs: 2,
        error: 0.0,
    };
    for (label, r) in seeded_synthetics().into_iter().chain(corrupted_relations()) {
        assert_equiv(&format!("profile {label}"), &Budget::default(), &|exec| {
            render_profile(&r, &opts, exec)
        });
    }
}

#[test]
fn miners_are_byte_identical_on_paper_tables() {
    for (label, r) in paper_tables() {
        assert_equiv(&format!("miners {label}"), &Budget::default(), &|exec| {
            render_miners(&r, exec)
        });
    }
}

#[test]
fn miners_are_byte_identical_on_synthetics_and_corrupted_csvs() {
    for (label, r) in seeded_synthetics().into_iter().chain(corrupted_relations()) {
        assert_equiv(&format!("miners {label}"), &Budget::default(), &|exec| {
            render_miners(&r, exec)
        });
    }
}

#[test]
fn quality_tasks_are_byte_identical_everywhere() {
    let all = paper_tables()
        .into_iter()
        .chain(seeded_synthetics())
        .chain(corrupted_relations());
    for (label, r) in all {
        assert_equiv(&format!("quality {label}"), &Budget::default(), &|exec| {
            render_quality(&r, exec)
        });
    }
}

// ---------------------------------------------------------------------
// Byte-identity: budget-truncated partials. Node and row budgets are
// deterministic by the engine's reservation contract, so the *partial*
// output must also match byte-for-byte across modes and thread counts.
// ---------------------------------------------------------------------

#[test]
fn budget_truncated_partials_are_byte_identical() {
    let opts = ProfileOpts {
        max_lhs: 3,
        error: 0.0,
    };
    let budgets = [
        ("nodes=5", Budget::default().with_max_nodes(5)),
        ("nodes=40", Budget::default().with_max_nodes(40)),
        ("rows=300", Budget::default().with_max_rows(300)),
        ("rows=2000", Budget::default().with_max_rows(2000)),
    ];
    let datasets = [
        ("r6".to_string(), hotels_r6()),
        ("r7".to_string(), hotels_r7()),
        seeded_synthetics().swap_remove(0),
    ];
    for (dlabel, r) in &datasets {
        for (blabel, budget) in &budgets {
            assert_equiv(
                &format!("partial profile {dlabel} {blabel}"),
                budget,
                &|exec| render_profile(r, &opts, exec),
            );
            assert_equiv(
                &format!("partial miners {dlabel} {blabel}"),
                budget,
                &|exec| render_miners(r, exec),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Deadline budgets cut at a timing-dependent point: only soundness is
// required, in both modes.
// ---------------------------------------------------------------------

#[test]
fn deadline_partials_are_sound_in_both_modes() {
    let r = hotels_r6();
    let check = || {
        for deadline_ms in [0u64, 1, 5] {
            let budget = Budget::default().with_deadline(Duration::from_millis(deadline_ms));
            let out = tane::discover_bounded(
                &r,
                &tane::TaneConfig {
                    max_lhs: 3,
                    max_error: 0.0,
                },
                &Exec::new(budget.clone()),
            );
            for fd in &out.result.fds {
                assert!(fd.holds(&r), "unsound FD {fd} from a deadline partial");
            }
            let ods = od::discover_bounded(&r, &od::OdConfig { max_lhs: 2 }, &Exec::new(budget));
            for o in &ods.result {
                assert!(o.holds(&r), "unsound OD {o} from a deadline partial");
            }
        }
    };
    check();
    row_major(check);
}

// ---------------------------------------------------------------------
// The compatibility contract itself: flipping the mode mid-stream never
// changes what a consumer computes, only which code computed it.
// ---------------------------------------------------------------------

#[test]
fn mode_flag_is_invisible_to_results() {
    let mut rng = deptree::synth::rng(0x5EED);
    for _ in 0..8 {
        let r = common::mixed_relation(&mut rng);
        r.debug_validate();
        let fast = render_miners(&r, &Exec::unbounded());
        let slow = row_major(|| render_miners(&r, &Exec::unbounded()));
        assert_eq!(fast, slow);
    }
}
