//! Compliance suite: every worked example in the survey's text, checked
//! end-to-end through the public façade. One module per paper section.

use deptree::core::*;
use deptree::metrics::{DistRange, Metric, Resemblance};
use deptree::relation::examples::*;
use deptree::relation::{AttrSet, Relation};

mod section_1_fds {
    use super::*;

    #[test]
    fn fd1_detects_t3_t4_and_narrative() {
        let r = hotels_r1();
        let fd1 = Fd::parse(r.schema(), "address -> region").unwrap();
        // t1, t2 satisfy; t3, t4 violate.
        assert!(!fd1.pair_violates(&r, 0, 1));
        assert!(fd1.pair_violates(&r, 2, 3));
        // §1.2: t5, t6 spurious violation; t7, t8 missed.
        assert!(fd1.pair_violates(&r, 4, 5));
        assert!(!fd1.pair_violates(&r, 6, 7));
    }
}

mod section_2_categorical {
    use super::*;

    #[test]
    fn sfd_strengths() {
        // S(address → region, r5) = 2/3; S(name → address, r5) = 1/2.
        let r = hotels_r5();
        let s1 = Sfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.5);
        assert!((s1.strength(&r) - 2.0 / 3.0).abs() < 1e-12);
        let s2 = Sfd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.5);
        assert!((s2.strength(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pfd_probabilities() {
        // P(address → region, r5) = 3/4; P(name → address, r5) = 1/2.
        let r = hotels_r5();
        let p1 = Pfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.5);
        assert!((p1.probability(&r) - 0.75).abs() < 1e-12);
        let p2 = Pfd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.5);
        assert!((p2.probability(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn afd_g3_errors() {
        // g3(address → region, r5) = 1/4; g3(name → address, r5) = 1/2.
        let r = hotels_r5();
        assert!((Fd::parse(r.schema(), "address -> region").unwrap().g3(&r) - 0.25).abs() < 1e-12);
        assert!((Fd::parse(r.schema(), "name -> address").unwrap().g3(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nud1_k2() {
        let r = hotels_r5();
        let s = r.schema();
        let nud = Nud::new(
            s,
            AttrSet::single(s.id("address")),
            AttrSet::single(s.id("region")),
            2,
        );
        assert!(nud.holds(&r));
    }

    #[test]
    fn cfd1_jackson() {
        let r = hotels_r5();
        let s = r.schema();
        let lhs = AttrSet::from_ids([s.id("region"), s.id("name")]);
        let rhs = AttrSet::single(s.id("address"));
        let cfd = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::all_any(lhs.union(rhs)).with_const(s.id("region"), "Jackson"),
        );
        assert!(cfd.holds(&r));
    }

    #[test]
    fn ecfd1_rate_leq_200() {
        let r = hotels_r5();
        let s = r.schema();
        let ecfd = ECfd::new(
            s,
            AttrSet::from_ids([s.id("rate"), s.id("name")]),
            AttrSet::single(s.id("address")),
            vec![(s.id("rate"), PatternOp::Cmp(CmpOp::Leq, 200.into()))],
        );
        assert!(ecfd.holds(&r));
    }

    #[test]
    fn mvd1_address_rate() {
        let r = hotels_r5();
        let s = r.schema();
        let mvd = Mvd::new(
            s,
            AttrSet::from_ids([s.id("address"), s.id("rate")]),
            AttrSet::single(s.id("region")),
        );
        assert!(mvd.holds(&r));
    }
}

mod section_3_heterogeneous {
    use super::*;

    #[test]
    fn mfd1_name_region_price() {
        let r = hotels_r6();
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            vec![(s.id("price"), Metric::AbsDiff, 500.0)],
        );
        assert!(mfd.holds(&r));
    }

    #[test]
    fn ned1_name_address_street() {
        let r = hotels_r6();
        let s = r.schema();
        let ned = Ned::new(
            s,
            vec![
                NedAtom::new(s.id("name"), Metric::Levenshtein, 1.0),
                NedAtom::new(s.id("address"), Metric::Levenshtein, 5.0),
            ],
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
        );
        assert!(ned.lhs_agrees(&r, 1, 5)); // t2 / t6 as in the paper
        assert!(ned.holds(&r));
    }

    #[test]
    fn dd1_and_dd2() {
        let r = hotels_r6();
        let s = r.schema();
        let dd1 = Dd::new(
            s,
            vec![
                DiffAtom::at_most(s.id("name"), Metric::Levenshtein, 1.0),
                DiffAtom::at_most(s.id("street"), Metric::Levenshtein, 5.0),
            ],
            vec![DiffAtom::at_most(s.id("address"), Metric::Levenshtein, 5.0)],
        );
        assert!(dd1.holds(&r));
        let dd2 = Dd::new(
            s,
            vec![DiffAtom::at_least(
                s.id("street"),
                Metric::Levenshtein,
                10.0,
            )],
            vec![DiffAtom::at_least(
                s.id("address"),
                Metric::Levenshtein,
                5.0,
            )],
        );
        assert!(dd2.holds(&r)); // dissimilar streets ⇒ dissimilar addresses
    }

    #[test]
    fn cd1_dataspace() {
        let r = dataspace_cd();
        let s = r.schema();
        let cd = Cd::new(
            s,
            vec![SimFn::new(
                s.id("region"),
                s.id("city"),
                Metric::Levenshtein,
                5.0,
                5.0,
                5.0,
            )],
            SimFn::new(
                s.id("addr"),
                s.id("post"),
                Metric::Levenshtein,
                7.0,
                9.0,
                6.0,
            ),
        );
        assert!(cd.holds(&r));
    }

    #[test]
    fn pac1_8_of_11() {
        let r = hotels_r6();
        let s = r.schema();
        let pac = Pac::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 100.0)],
            vec![(s.id("tax"), Metric::AbsDiff, 10.0)],
            0.9,
        );
        let (matched, ok) = pac.pair_counts(&r);
        assert_eq!((matched, ok), (11, 8));
        assert!(!pac.holds(&r)); // 0.727 < 0.9 — "Table 6 doesn't satisfy this PAC"
    }

    #[test]
    fn ffd1_t1_t2_conflict() {
        let r = hotels_r6();
        let s = r.schema();
        let ffd = Ffd::new(
            s,
            vec![
                (s.id("name"), Resemblance::Crisp),
                (s.id("price"), Resemblance::InverseNumeric(1.0)),
            ],
            vec![(s.id("tax"), Resemblance::InverseNumeric(10.0))],
        );
        assert!((ffd.mu_lhs(&r, 0, 1) - 0.5).abs() < 1e-12);
        assert!((ffd.mu_rhs(&r, 0, 1) - 1.0 / 91.0).abs() < 1e-12);
        assert!(!ffd.holds(&r));
    }

    #[test]
    fn md1_street_region_zip() {
        let r = hotels_r6();
        let s = r.schema();
        let md = Md::new(
            s,
            vec![
                (s.id("street"), Metric::Levenshtein, 5.0),
                (s.id("region"), Metric::Levenshtein, 2.0),
            ],
            AttrSet::single(s.id("zip")),
        );
        assert!(md.lhs_similar(&r, 4, 5)); // t5 / t6
        assert!(md.holds(&r));
    }
}

mod section_4_numerical {
    use super::*;

    #[test]
    fn ofd1_subtotal_taxes() {
        let r = hotels_r7();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("subtotal")),
            AttrSet::single(s.id("taxes")),
        );
        assert!(ofd.holds(&r));
    }

    #[test]
    fn od1_nights_avg() {
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("avg/night"), Direction::Desc)],
        );
        assert!(od.holds(&r));
    }

    #[test]
    fn dc1_subtotal_taxes() {
        let r = hotels_r7();
        let s = r.schema();
        let dc = Dc::new(
            s,
            vec![
                Predicate::across(s.id("subtotal"), CmpOp::Lt, s.id("subtotal")),
                Predicate::across(s.id("taxes"), CmpOp::Gt, s.id("taxes")),
            ],
        );
        assert!(dc.holds(&r));
    }

    #[test]
    fn sd1_and_sd2() {
        let r = hotels_r7();
        let s = r.schema();
        let sd1 = Sd::new(
            s,
            s.id("nights"),
            s.id("subtotal"),
            Interval::new(100.0, 200.0),
        );
        assert!(sd1.holds(&r));
        // Gaps are exactly 180, 170, 160 — e.g. 540 − 370 = 170 per §4.4.1.
        let gaps: Vec<f64> = sd1
            .consecutive_gaps(&r)
            .iter()
            .map(|(_, _, g)| *g)
            .collect();
        assert_eq!(gaps, vec![180.0, 170.0, 160.0]);
        let sd2 = Sd::new(
            s,
            s.id("nights"),
            s.id("avg/night"),
            Interval::non_increasing(),
        );
        assert!(sd2.holds(&r));
    }
}

/// Cross-type rules from §1.6: DCs span categorical and numerical data;
/// CDDs span categorical and heterogeneous data.
mod section_1_6_cross_type {
    use super::*;

    #[test]
    fn dc_mixing_categorical_and_numerical() {
        // "price should not be lower than 200 in the region of Chicago":
        // single-tuple DC over r1.
        let r = hotels_r1();
        let s = r.schema();
        let dc = Dc::new(
            s,
            vec![
                Predicate::first_const(s.id("region"), CmpOp::Eq, "Chicago"),
                Predicate::first_const(s.id("price"), CmpOp::Lt, 200),
            ],
        );
        assert!(dc.is_single_tuple());
        assert!(dc.holds(&r)); // the Chicago tuple costs 499
    }

    #[test]
    fn cdd_mixing_categorical_and_heterogeneous() {
        // "In the region of San Jose, two tuples with similar names should
        // have similar addresses."
        let r = hotels_r6();
        let s = r.schema();
        let cdd = Cdd::new(
            s,
            Condition::always().and(s.id("region"), "San Jose"),
            Dd::new(
                s,
                vec![DiffAtom::at_most(s.id("name"), Metric::Levenshtein, 1.0)],
                vec![DiffAtom::at_most(s.id("address"), Metric::Levenshtein, 5.0)],
            ),
        );
        assert!(cdd.holds(&r));
    }
}

/// The survey's summary claims about expressive-power relationships,
/// validated as behaviours rather than prose.
mod expressive_power {
    use super::*;

    /// Every notation can express its special case's verdict on every
    /// paper instance (spot check over the three instances).
    #[test]
    fn equality_rules_are_degenerate_similarity_rules() {
        for r in [hotels_r1(), hotels_r5(), hotels_r6()] {
            let s = r.schema();
            for text in ["name -> address", "address -> region"] {
                let Some(fd) = Fd::parse(s, text) else {
                    continue;
                };
                assert_eq!(fd.holds(&r), Mfd::from_fd(s, &fd).holds(&r));
                assert_eq!(fd.holds(&r), Md::from_fd(s, &fd).holds(&r));
                assert_eq!(fd.holds(&r), Ffd::from_fd(s, &fd).holds(&r));
            }
        }
    }

    /// DDs express both "similar" and "dissimilar" semantics; equality
    /// rules only the former — the survey's §3.3 headline.
    #[test]
    fn dissimilar_semantics_beyond_equality() {
        // A DD with a ≥ premise can hold while its ≤-only restriction has
        // nothing to say: construct a violation visible only to dd2-style
        // rules.
        let mut r = hotels_r6();
        let s = r.schema().clone();
        // Force two far-apart streets to share one address.
        r.set_value(0, s.id("address"), "#2 Ave, 12th St.".into());
        let dissimilar = Dd::new(
            &s,
            vec![DiffAtom::at_least(s.id("street"), Metric::Levenshtein, 6.0)],
            vec![DiffAtom::at_least(
                s.id("address"),
                Metric::Levenshtein,
                3.0,
            )],
        );
        let dist = Metric::Levenshtein.dist(r.value(0, s.id("street")), r.value(1, s.id("street")));
        assert!(dist >= 6.0, "premise must apply: {dist}");
        assert!(!dissimilar.holds(&r));
        // No "similar" DD over the same attributes notices: its premise
        // never fires for this pair.
        let similar = Dd::new(
            &s,
            vec![DiffAtom::new(
                s.id("street"),
                Metric::Levenshtein,
                DistRange::at_most(5.0),
            )],
            vec![DiffAtom::at_most(s.id("address"), Metric::Levenshtein, 5.0)],
        );
        assert!(!similar.lhs_compatible(&r, 0, 1));
    }
}

/// Table 2/Table 3/Figs 1–3 metadata sanity through the façade.
mod survey_artifacts {
    use super::*;
    use deptree::core::familytree::{registry, verify_all_edges, ExtensionGraph};

    #[test]
    fn all_edges_verify_through_facade() {
        assert!(verify_all_edges().iter().all(|rep| rep.ok()));
    }

    #[test]
    fn graph_and_registry_agree_on_population() {
        let g = ExtensionGraph::survey();
        assert_eq!(registry::REGISTRY.len(), 24);
        assert_eq!(g.topological_order().len(), 24);
    }

    #[test]
    fn every_example_relation_is_well_formed() {
        for r in [
            hotels_r1(),
            hotels_r5(),
            hotels_r6(),
            hotels_r7(),
            dataspace_cd(),
        ] {
            assert!(r.n_rows() > 0);
            assert!(r.n_attrs() > 0);
            let _ = r.to_ascii_table();
        }
    }

    fn _object_safety(dep: &dyn Dependency, r: &Relation) -> bool {
        dep.holds(r)
    }

    #[test]
    fn dependency_trait_is_object_safe_across_kinds() {
        let r = hotels_r5();
        let s = r.schema();
        let fd = Fd::parse(s, "address -> region").unwrap();
        let rules: Vec<Box<dyn Dependency>> = vec![
            Box::new(fd.clone()),
            Box::new(Sfd::from_fd(fd.clone())),
            Box::new(Afd::from_fd(fd.clone())),
            Box::new(Mvd::from_fd(s, &fd)),
            Box::new(Mfd::from_fd(s, &fd)),
            Box::new(Md::from_fd(s, &fd)),
            Box::new(Ffd::from_fd(s, &fd)),
        ];
        for rule in &rules {
            let _ = _object_safety(rule.as_ref(), &r);
            let _ = rule.kind();
            let _ = rule.to_string();
        }
    }
}
