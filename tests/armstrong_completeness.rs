//! Discovery completeness via Armstrong relations: TANE/FastFD run on an
//! Armstrong relation of Σ must return a minimal cover *logically
//! equivalent* to Σ — the strongest black-box correctness check available
//! for FD discovery.

use deptree::core::Fd;
use deptree::discovery::{fastfd, tane};
use deptree::quality::normalize;
use deptree::relation::{AttrId, AttrSet};
use deptree::synth::armstrong::armstrong_relation;

fn sigma_to_fds(schema: &deptree::relation::Schema, sigma: &[(AttrSet, AttrSet)]) -> Vec<Fd> {
    sigma.iter().map(|&(l, r)| Fd::new(schema, l, r)).collect()
}

fn check_sigma(n_attrs: usize, sigma: Vec<(AttrSet, AttrSet)>) {
    let r = armstrong_relation(n_attrs, &sigma);
    let expected = sigma_to_fds(r.schema(), &sigma);

    let t = tane::discover(
        &r,
        &tane::TaneConfig {
            max_lhs: n_attrs,
            max_error: 0.0,
        },
    );
    assert!(
        normalize::equivalent(&t.fds, &expected),
        "TANE cover {:?} not equivalent to Σ {:?}",
        t.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
        expected.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );

    let f = fastfd::discover(&r);
    assert!(
        normalize::equivalent(&f.fds, &expected),
        "FastFD cover not equivalent to Σ"
    );
}

#[test]
fn chain_dependencies() {
    check_sigma(
        4,
        vec![
            (AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1))),
            (AttrSet::single(AttrId(1)), AttrSet::single(AttrId(2))),
            (AttrSet::single(AttrId(2)), AttrSet::single(AttrId(3))),
        ],
    );
}

#[test]
fn diamond_dependencies() {
    check_sigma(
        4,
        vec![
            (AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1))),
            (AttrSet::single(AttrId(0)), AttrSet::single(AttrId(2))),
            (
                AttrSet::from_ids([AttrId(1), AttrId(2)]),
                AttrSet::single(AttrId(3)),
            ),
        ],
    );
}

#[test]
fn compound_determinants() {
    check_sigma(
        5,
        vec![
            (
                AttrSet::from_ids([AttrId(0), AttrId(1)]),
                AttrSet::single(AttrId(2)),
            ),
            (
                AttrSet::from_ids([AttrId(2), AttrId(3)]),
                AttrSet::single(AttrId(4)),
            ),
        ],
    );
}

#[test]
fn empty_sigma() {
    check_sigma(3, vec![]);
}

#[test]
fn key_dependency() {
    check_sigma(
        4,
        vec![(
            AttrSet::single(AttrId(0)),
            AttrSet::full(4).remove(AttrId(0)),
        )],
    );
}

#[test]
fn cyclic_equivalence() {
    // A0 ↔ A1 (mutual determination).
    check_sigma(
        3,
        vec![
            (AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1))),
            (AttrSet::single(AttrId(1)), AttrSet::single(AttrId(0))),
        ],
    );
}
