//! Parallel discovery must be invisible in the output.
//!
//! Every parallelized miner is pinned three ways:
//!
//! 1. against *frozen snapshots* of the pre-parallelization serial
//!    implementation (captured from the tree before the engine pool
//!    existed), so the port provably changed the schedule and nothing
//!    else;
//! 2. across thread counts 1, 2 and 8, which must agree bit-for-bit;
//! 3. under tight node/row budgets, where the reservation scheme
//!    guarantees the *anytime prefix* is also identical at every thread
//!    count — and still sound.
//!
//! Deadline budgets cut off at a timing-dependent point by design, so for
//! those only soundness (not bit-equality) is asserted.

use deptree::core::engine::{Budget, Exec};
use deptree::core::Dependency;
use deptree::discovery::{cfd, ecfd, fastfd, nud, pfd, tane};
use deptree::relation::examples::{hotels_r1, hotels_r5, hotels_r6, hotels_r7};
use deptree::relation::Relation;
use deptree::synth::{categorical, CategoricalConfig};

const THREADS: [usize; 3] = [1, 2, 8];

fn exec(budget: Budget, threads: usize) -> Exec {
    Exec::new(budget).with_threads(threads)
}

/// The pre-parallelization TANE/FastFD minimal cover of r1.
fn r1_full() -> Vec<&'static str> {
    vec![
        "FD: name -> address",
        "FD: name -> region",
        "FD: name -> star",
        "FD: name -> price",
        "FD: address -> star",
        "FD: address -> price",
        "FD: region -> address",
        "FD: region -> star",
        "FD: region -> price",
        "FD: price -> address",
        "FD: price -> star",
    ]
}

/// The pre-parallelization TANE/FastFD minimal cover of r6.
fn r6_full() -> Vec<&'static str> {
    vec![
        "FD: street -> source",
        "FD: street -> region",
        "FD: street -> zip",
        "FD: address -> source",
        "FD: address -> name",
        "FD: address -> street",
        "FD: address -> region",
        "FD: address -> zip",
        "FD: address -> price",
        "FD: address -> tax",
        "FD: region -> zip",
        "FD: zip -> region",
        "FD: price -> name",
        "FD: price -> region",
        "FD: price -> zip",
        "FD: price -> tax",
        "FD: tax -> name",
        "FD: tax -> region",
        "FD: tax -> zip",
        "FD: tax -> price",
        "FD: name, street -> address",
        "FD: name, street -> price",
        "FD: name, street -> tax",
        "FD: source, region -> street",
        "FD: name, region -> price",
        "FD: name, region -> tax",
        "FD: source, zip -> street",
        "FD: name, zip -> price",
        "FD: name, zip -> tax",
        "FD: source, price -> street",
        "FD: source, price -> address",
        "FD: street, price -> address",
        "FD: source, tax -> street",
        "FD: source, tax -> address",
        "FD: street, tax -> address",
        "FD: source, name, region -> address",
        "FD: source, name, zip -> address",
    ]
}

fn r7_full() -> Vec<&'static str> {
    vec![
        "FD: nights -> avg/night",
        "FD: nights -> subtotal",
        "FD: nights -> taxes",
        "FD: avg/night -> nights",
        "FD: avg/night -> subtotal",
        "FD: avg/night -> taxes",
        "FD: subtotal -> nights",
        "FD: subtotal -> avg/night",
        "FD: subtotal -> taxes",
        "FD: taxes -> nights",
        "FD: taxes -> avg/night",
        "FD: taxes -> subtotal",
    ]
}

#[test]
fn tane_matches_pre_parallel_snapshots_at_every_thread_count() {
    let cases: [(&str, Relation, Vec<&str>); 4] = [
        ("r1", hotels_r1(), r1_full()),
        (
            "r5",
            hotels_r5(),
            vec![
                "FD:  -> name",
                "FD: region -> address",
                "FD: rate -> address",
            ],
        ),
        ("r6", hotels_r6(), r6_full()),
        ("r7", hotels_r7(), r7_full()),
    ];
    for (label, r, want) in cases {
        for t in THREADS {
            let out =
                tane::discover_bounded(&r, &tane::TaneConfig::default(), &exec(Budget::new(), t));
            assert!(out.complete);
            let got: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
            assert_eq!(got, want, "TANE {label} at {t} thread(s)");
        }
    }
}

#[test]
fn fastfd_matches_pre_parallel_snapshots_at_every_thread_count() {
    let cases: [(&str, Relation, Vec<&str>); 3] = [
        ("r1", hotels_r1(), r1_full()),
        ("r6", hotels_r6(), r6_full()),
        ("r7", hotels_r7(), r7_full()),
    ];
    for (label, r, want) in cases {
        for t in THREADS {
            let out = fastfd::discover_bounded(&r, &exec(Budget::new(), t));
            assert!(out.complete);
            let got: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
            assert_eq!(got, want, "FastFD {label} at {t} thread(s)");
        }
    }
}

#[test]
fn tane_anytime_prefix_is_frozen_under_node_budget() {
    // Pre-parallelization serial outputs under `max_nodes = 4`.
    let cases: [(&str, Relation, bool, Vec<&str>); 4] = [
        ("r1", hotels_r1(), false, vec![]),
        ("r5", hotels_r5(), false, vec!["FD:  -> name"]),
        ("r6", hotels_r6(), false, vec![]),
        ("r7", hotels_r7(), true, r7_full()),
    ];
    for (label, r, complete, want) in cases {
        for t in THREADS {
            let out = tane::discover_bounded(
                &r,
                &tane::TaneConfig::default(),
                &exec(Budget::new().with_max_nodes(4), t),
            );
            assert_eq!(out.complete, complete, "TANE {label} completeness at {t}");
            let got: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
            assert_eq!(got, want, "TANE {label} bounded prefix at {t} thread(s)");
            for fd in &out.result.fds {
                assert!(fd.holds(&r), "TANE {label}: unsound anytime FD {fd}");
            }
        }
    }
}

#[test]
fn fastfd_anytime_prefix_is_frozen_under_row_budget() {
    // Pre-parallelization serial outputs under row budgets. A truncated
    // pair scan under-constrains the covers, and post-verification culls
    // the bogus ones — on these tables down to nothing.
    let cases: [(&str, Relation, u64, bool, Vec<&str>); 4] = [
        ("r1", hotels_r1(), 12, false, vec![]),
        ("r1", hotels_r1(), 30, true, r1_full()),
        ("r6", hotels_r6(), 10, false, vec![]),
        ("r6", hotels_r6(), 25, true, r6_full()),
    ];
    for (label, r, rows, complete, want) in cases {
        for t in THREADS {
            let out = fastfd::discover_bounded(&r, &exec(Budget::new().with_max_rows(rows), t));
            assert_eq!(
                out.complete, complete,
                "FastFD {label}/{rows} completeness at {t}"
            );
            let got: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
            assert_eq!(got, want, "FastFD {label}/{rows} at {t} thread(s)");
        }
    }
}

#[test]
fn pfd_matches_pre_parallel_snapshots() {
    let r = hotels_r5();
    let cfg = pfd::PfdConfig {
        min_probability: 0.7,
        max_lhs: 2,
    };
    let full = vec![
        "PFD(p≥0.7): address -> name",
        "PFD(p≥0.7): address -> region",
        "PFD(p≥0.7): address -> rate",
        "PFD(p≥0.7): region -> name",
        "PFD(p≥0.7): region -> address",
        "PFD(p≥0.7): region -> rate",
        "PFD(p≥0.7): rate -> name",
        "PFD(p≥0.7): rate -> address",
        "PFD(p≥0.7): rate -> region",
    ];
    // max_nodes = 9 cuts the first level after its ninth candidate.
    let bounded = &full[..6];
    for t in THREADS {
        let out = pfd::discover_bounded(&r, &cfg, &exec(Budget::new(), t));
        assert!(out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "PFD full at {t} thread(s)");

        let out = pfd::discover_bounded(&r, &cfg, &exec(Budget::new().with_max_nodes(9), t));
        assert!(!out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, bounded, "PFD bounded prefix at {t} thread(s)");
    }
}

#[test]
fn nud_matches_pre_parallel_snapshots() {
    let r = hotels_r5();
    let cfg = nud::NudConfig {
        max_lhs: 2,
        max_k: 5,
    };
    let full = vec![
        "NUD(k=2): name -> address",
        "NUD(k=3): name -> region",
        "NUD(k=3): name -> rate",
        "NUD(k=1): address -> name",
        "NUD(k=2): address -> region",
        "NUD(k=2): address -> rate",
        "NUD(k=1): region -> name",
        "NUD(k=1): region -> address",
        "NUD(k=2): region -> rate",
        "NUD(k=1): rate -> name",
        "NUD(k=1): rate -> address",
        "NUD(k=2): rate -> region",
    ];
    for t in THREADS {
        let out = nud::discover_bounded(&r, &cfg, &exec(Budget::new(), t));
        assert!(out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "NUD full at {t} thread(s)");

        // 13 nodes stop mid-way through the 2-attribute candidates, all of
        // which the 1-attribute results dominate: same list, incomplete.
        let out = nud::discover_bounded(&r, &cfg, &exec(Budget::new().with_max_nodes(13), t));
        assert!(!out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "NUD bounded prefix at {t} thread(s)");
    }
}

#[test]
fn ctane_matches_pre_parallel_snapshots() {
    let r = hotels_r6();
    let cfg = cfd::CfdConfig {
        min_support: 2,
        max_lhs: 1,
    };
    let full = vec![
        "CFD: street=_ -> source=_",
        "CFD: street=_ -> region=_",
        "CFD: street=_ -> zip=_",
        "CFD: address=_ -> source=_",
        "CFD: address=_ -> name=_",
        "CFD: address=_ -> street=_",
        "CFD: address=_ -> region=_",
        "CFD: address=_ -> zip=_",
        "CFD: address=_ -> price=_",
        "CFD: address=_ -> tax=_",
        "CFD: region=New York -> source=_",
        "CFD: region=New York -> street=_",
        "CFD: region=_ -> zip=_",
        "CFD: zip=10041 -> source=_",
        "CFD: zip=10041 -> street=_",
        "CFD: zip=_ -> region=_",
        "CFD: price=_ -> name=_",
        "CFD: price=_ -> region=_",
        "CFD: price=_ -> zip=_",
        "CFD: price=_ -> tax=_",
        "CFD: tax=_ -> name=_",
        "CFD: tax=_ -> region=_",
        "CFD: tax=_ -> zip=_",
        "CFD: tax=_ -> price=_",
    ];
    for t in THREADS {
        let out = cfd::ctane_bounded(&r, &cfg, &exec(Budget::new(), t));
        assert!(out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "CTANE full at {t} thread(s)");

        // The first 40 pattern candidates all fail support or validity.
        let out = cfd::ctane_bounded(&r, &cfg, &exec(Budget::new().with_max_nodes(40), t));
        assert!(!out.complete);
        assert!(
            out.result.is_empty(),
            "CTANE bounded prefix at {t} thread(s)"
        );
    }
}

#[test]
fn ecfd_matches_pre_parallel_snapshots() {
    let r = hotels_r5();
    let cfg = ecfd::ECfdConfig::default();
    let full = vec![
        "eCFD: name=_, rate ≤189 -> address=_",
        "eCFD: name=_, rate >189 -> address=_",
        "eCFD: name=_, rate >189 -> region=_",
        "eCFD: address=_, rate >189 -> region=_",
        "eCFD: name=_, rate ≤230 -> address=_",
        "eCFD: name=_, rate ≤250 -> address=_",
    ];
    for t in THREADS {
        let out = ecfd::discover_bounded(&r, &cfg, &exec(Budget::new(), t));
        assert!(out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "eCFD full at {t} thread(s)");

        // All six rules live in the first 25 candidates; the cut is
        // visible only in the completeness flag.
        let out = ecfd::discover_bounded(&r, &cfg, &exec(Budget::new().with_max_nodes(25), t));
        assert!(!out.complete);
        let got: Vec<String> = out.result.iter().map(|x| x.to_string()).collect();
        assert_eq!(got, full, "eCFD bounded prefix at {t} thread(s)");
    }
}

#[test]
fn all_miners_agree_across_thread_counts_on_synthetics() {
    // Beyond the frozen tables: seeded synthetics, full and budgeted,
    // every miner, threads 1/2/8 must be bit-identical.
    for seed in [3u64, 17, 42] {
        let cfg = CategoricalConfig {
            n_rows: 150,
            n_key_attrs: 2,
            n_dep_attrs: 3,
            domain: 5,
            error_rate: 0.05,
            seed,
        };
        let r = categorical::generate(&cfg, &mut deptree::synth::rng(seed)).relation;
        for budget in [
            Budget::new(),
            Budget::new().with_max_nodes(7),
            Budget::new().with_max_rows(900),
        ] {
            let runs: Vec<Vec<String>> = THREADS
                .iter()
                .map(|&t| {
                    let mut lines: Vec<String> = Vec::new();
                    let tn = tane::discover_bounded(
                        &r,
                        &tane::TaneConfig::default(),
                        &exec(budget.clone(), t),
                    );
                    lines.push(format!("tane complete={}", tn.complete));
                    lines.extend(tn.result.fds.iter().map(|f| f.to_string()));
                    let ff = fastfd::discover_bounded(&r, &exec(budget.clone(), t));
                    lines.push(format!("fastfd complete={}", ff.complete));
                    lines.extend(ff.result.fds.iter().map(|f| f.to_string()));
                    let pf = pfd::discover_bounded(
                        &r,
                        &pfd::PfdConfig::default(),
                        &exec(budget.clone(), t),
                    );
                    lines.push(format!("pfd complete={}", pf.complete));
                    lines.extend(pf.result.iter().map(|x| x.to_string()));
                    let nu = nud::discover_bounded(
                        &r,
                        &nud::NudConfig::default(),
                        &exec(budget.clone(), t),
                    );
                    lines.push(format!("nud complete={}", nu.complete));
                    lines.extend(nu.result.iter().map(|x| x.to_string()));
                    let ct = cfd::ctane_bounded(
                        &r,
                        &cfd::CfdConfig {
                            min_support: 2,
                            max_lhs: 1,
                        },
                        &exec(budget.clone(), t),
                    );
                    lines.push(format!("ctane complete={}", ct.complete));
                    lines.extend(ct.result.iter().map(|x| x.to_string()));
                    lines
                })
                .collect();
            assert_eq!(runs[0], runs[1], "seed {seed}: 1 vs 2 threads");
            assert_eq!(runs[0], runs[2], "seed {seed}: 1 vs 8 threads");
        }
    }
}

#[test]
fn deadline_budget_stays_sound_at_every_thread_count() {
    // A deadline cuts off wherever the clock lands — output equality is
    // not promised, soundness of every emitted dependency is.
    let cfg = CategoricalConfig {
        n_rows: 400,
        n_key_attrs: 3,
        n_dep_attrs: 4,
        domain: 4,
        error_rate: 0.02,
        seed: 99,
    };
    let r = categorical::generate(&cfg, &mut deptree::synth::rng(cfg.seed)).relation;
    for t in THREADS {
        let budget = Budget::new().with_deadline(std::time::Duration::from_millis(5));
        let out = tane::discover_bounded(&r, &tane::TaneConfig::default(), &exec(budget, t));
        for fd in &out.result.fds {
            assert!(
                fd.holds(&r),
                "deadline run emitted unsound {fd} at {t} threads"
            );
        }
    }
}
