//! Shared generators for the property-style integration suites.
//!
//! The workspace builds offline with no external dev-dependencies, so
//! instead of proptest these suites drive a seeded [`Rng`] through a fixed
//! number of cases; a failing case is reproduced exactly by its seed.

#![allow(dead_code)]

use deptree::relation::{Relation, RelationBuilder, Value, ValueType};
use deptree::synth::Rng;

/// Number of cases each property runs.
pub const CASES: u64 = 128;

/// Small random categorical relation: 2–4 attrs, 0–14 rows, tiny domain so
/// collisions — and therefore dependencies — happen.
pub fn small_relation(rng: &mut Rng) -> Relation {
    let n_attrs = rng.random_range(2..=4usize);
    let n_rows = rng.random_range(0..=14usize);
    let mut b = RelationBuilder::new();
    for a in 0..n_attrs {
        b = b.attr(format!("a{a}"), ValueType::Categorical);
    }
    for _ in 0..n_rows {
        b = b.row(
            (0..n_attrs)
                .map(|_| Value::str(format!("v{}", rng.random_range(0..4u8))))
                .collect(),
        );
    }
    b.build().expect("consistent arity")
}

/// Small random numeric relation: 2–3 attrs, 2–12 rows, values in [-20, 20).
pub fn numeric_relation(rng: &mut Rng) -> Relation {
    let n_attrs = rng.random_range(2..=3usize);
    let n_rows = rng.random_range(2..=12usize);
    let mut b = RelationBuilder::new();
    for a in 0..n_attrs {
        b = b.attr(format!("n{a}"), ValueType::Numeric);
    }
    for _ in 0..n_rows {
        b = b.row(
            (0..n_attrs)
                .map(|_| Value::int(rng.random_range(-20..20i64)))
                .collect(),
        );
    }
    b.build().expect("consistent arity")
}

/// Random relation with one categorical, one text and one numeric column
/// (2–8 rows).
pub fn mixed_relation(rng: &mut Rng) -> Relation {
    let n_rows = rng.random_range(2..=8usize);
    let mut b = RelationBuilder::new()
        .attr("c", ValueType::Categorical)
        .attr("t", ValueType::Text)
        .attr("n", ValueType::Numeric);
    for _ in 0..n_rows {
        b = b.row(vec![
            Value::str(format!("c{}", rng.random_range(0..4u8))),
            Value::str(format!("word{}", rng.random_range(0..4u8))),
            Value::int(rng.random_range(-10..10i64)),
        ]);
    }
    b.build().expect("consistent arity")
}

/// Adversarial relation shapes for panic-safety sweeps: arbitrary schemas
/// and values including empty relations, single rows, all-null columns,
/// mixed types within a column, NaN-adjacent floats and garbled strings.
pub fn arbitrary_relation(rng: &mut Rng) -> Relation {
    let n_attrs = rng.random_range(1..=5usize);
    let n_rows = match rng.random_range(0..4u8) {
        0 => 0,
        1 => 1,
        _ => rng.random_range(2..=12usize),
    };
    let mut b = RelationBuilder::new();
    let types = [ValueType::Categorical, ValueType::Text, ValueType::Numeric];
    for a in 0..n_attrs {
        b = b.attr(format!("x{a}"), types[rng.random_range(0..3usize)]);
    }
    // Some columns are all-null.
    let null_col: Option<usize> = if rng.random_bool(0.3) {
        Some(rng.random_range(0..n_attrs))
    } else {
        None
    };
    for _ in 0..n_rows {
        b = b.row(
            (0..n_attrs)
                .map(|a| {
                    if Some(a) == null_col {
                        return Value::Null;
                    }
                    match rng.random_range(0..6u8) {
                        0 => Value::Null,
                        1 => Value::int(rng.random_range(-100..100i64)),
                        2 => Value::float(rng.random_range(-1e3..1e3f64)),
                        3 => Value::str(""),
                        4 => Value::str(format!("Ã©\u{200b}{}", rng.random_range(0..4u8))),
                        _ => Value::str(format!("s{}", rng.random_range(0..4u8))),
                    }
                })
                .collect(),
        );
    }
    b.build().expect("consistent arity")
}
