//! Differential oracle for FD/AFD discovery.
//!
//! A brute-force oracle enumerates *every* candidate `X → A` with
//! `|X| ≤ 3` and decides it directly from stripped partitions — no
//! lattice pruning, no candidate propagation, nothing shared with the
//! miners under test. TANE and FastFD must reproduce the oracle's minimal
//! cover exactly, serially and at every thread count, on the paper's
//! built-in tables and on seeded synthetic relations.

mod common;

use deptree::core::engine::{Budget, Exec};
use deptree::core::{Dependency, Direction, Fd, Ned, NedAtom, Od};
use deptree::discovery::{dc, dd, fastfd, md, ned, od, tane};
use deptree::metrics::Metric;
use deptree::relation::examples::{hotels_r1, hotels_r5, hotels_r6, hotels_r7};
use deptree::relation::{AttrSet, Relation, StrippedPartition};
use deptree::synth::{categorical, entities, CategoricalConfig, EntitiesConfig};

const MAX_LHS: usize = 3;

/// All attribute subsets of size ≤ `max`, smallest first.
fn subsets(all: AttrSet, max: usize) -> Vec<AttrSet> {
    let attrs = all.to_vec();
    let mut out: Vec<AttrSet> = (0..1u64 << attrs.len())
        .map(|mask| {
            attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &a)| a)
                .collect()
        })
        .filter(|s: &AttrSet| s.len() <= max)
        .collect();
    out.sort_by_key(|s| (s.len(), *s));
    out
}

/// Brute-force minimal dependencies with `g3 ≤ max_error` and `|X| ≤ 3`,
/// rendered in the miners' display form for comparison. The decision for
/// each candidate comes straight from `g3` over materialized partitions
/// (`g3 = 0` ⟺ the FD holds exactly); minimality re-tests every proper
/// subset the same way. `X = ∅` is included — an empty LHS determines
/// exactly the constant columns.
fn oracle(r: &Relation, max_error: f64) -> Vec<String> {
    let all = r.all_attrs();
    let sets = subsets(all, MAX_LHS);
    let parts: Vec<(AttrSet, StrippedPartition)> = sets
        .iter()
        .map(|&s| (s, StrippedPartition::from_attrs(r, s)))
        .collect();
    let holds = |lhs: AttrSet, rhs: AttrSet| -> bool {
        let px = parts
            .iter()
            .find(|(s, _)| *s == lhs)
            .map(|(_, p)| p)
            .expect("subset enumerated");
        let pa = StrippedPartition::from_attrs(r, rhs);
        px.g3_error(&pa) <= max_error
    };
    let mut out = Vec::new();
    for &lhs in &sets {
        for a in all.difference(lhs).iter() {
            let rhs = AttrSet::single(a);
            if !holds(lhs, rhs) {
                continue;
            }
            let minimal = lhs.iter().all(|b| !holds(lhs.remove(b), rhs));
            if minimal {
                out.push(Fd::new(r.schema(), lhs, rhs).to_string());
            }
        }
    }
    out.sort();
    out
}

fn tane_fds(r: &Relation, max_error: f64, threads: usize) -> Vec<String> {
    let cfg = tane::TaneConfig {
        max_lhs: MAX_LHS,
        max_error,
    };
    let out = tane::discover_bounded(r, &cfg, &Exec::unbounded().with_threads(threads));
    assert!(out.complete, "unbounded run must complete");
    let mut v: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
    v.sort();
    v
}

fn fastfd_fds(r: &Relation, threads: usize) -> Vec<String> {
    let out = fastfd::discover_bounded(r, &Exec::unbounded().with_threads(threads));
    assert!(out.complete, "unbounded run must complete");
    let mut v: Vec<String> = out
        .result
        .fds
        .iter()
        .filter(|f| f.lhs().len() <= MAX_LHS)
        .map(|f| f.to_string())
        .collect();
    v.sort();
    v
}

fn check_exact(r: &Relation, label: &str) {
    let want = oracle(r, 0.0);
    for threads in [1, 8] {
        assert_eq!(
            tane_fds(r, 0.0, threads),
            want,
            "{label}: TANE vs oracle at {threads} thread(s)"
        );
        assert_eq!(
            fastfd_fds(r, threads),
            want,
            "{label}: FastFD vs oracle at {threads} thread(s)"
        );
    }
}

fn synthetic(seed: u64, n_rows: usize, error_rate: f64) -> Relation {
    let cfg = CategoricalConfig {
        n_rows,
        n_key_attrs: 2,
        n_dep_attrs: 3,
        domain: 6,
        error_rate,
        seed,
    };
    categorical::generate(&cfg, &mut deptree::synth::rng(seed)).relation
}

#[test]
fn oracle_agrees_on_paper_tables() {
    for (label, r) in [
        ("r1", hotels_r1()),
        ("r5", hotels_r5()),
        ("r6", hotels_r6()),
        ("r7", hotels_r7()),
    ] {
        check_exact(&r, label);
    }
}

#[test]
fn oracle_agrees_on_seeded_synthetics() {
    for (i, &(seed, rows, err)) in [
        (11u64, 60usize, 0.0f64),
        (23, 90, 0.05),
        (37, 120, 0.0),
        (59, 150, 0.1),
    ]
    .iter()
    .enumerate()
    {
        let r = synthetic(seed, rows, err);
        check_exact(&r, &format!("synthetic #{i} (seed {seed})"));
    }
}

#[test]
fn oracle_agrees_on_random_small_relations() {
    let mut rng = deptree::synth::rng(0xD1FF);
    for case in 0..32 {
        let r = common::small_relation(&mut rng);
        if r.n_rows() == 0 {
            continue;
        }
        check_exact(&r, &format!("small case {case}"));
    }
}

#[test]
fn afd_oracle_agrees_with_approximate_tane() {
    // AFDs: g3 ≤ ε, still minimal-LHS. FastFD has no approximate mode, so
    // only TANE is differential here.
    for (label, r, eps) in [
        ("r1 ε=0.2", hotels_r1(), 0.2),
        ("r5 ε=0.25", hotels_r5(), 0.25),
        ("r6 ε=0.1", hotels_r6(), 0.1),
        ("synthetic ε=0.05", synthetic(101, 200, 0.02), 0.05),
    ] {
        let want = oracle(&r, eps);
        for threads in [1, 8] {
            assert_eq!(
                tane_fds(&r, eps, threads),
                want,
                "{label}: approximate TANE vs oracle at {threads} thread(s)"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pairwise differential oracles (MD/DD/NED/OD/DC): the blocking/index-based
// candidate generation must reproduce the frozen naive `row_pairs()` paths
// exactly — on the paper's tables and seeded synthetics, at every thread
// count, and soundly (verified results only) under tight budgets.
// ---------------------------------------------------------------------------

const PAIR_THREADS: [usize; 3] = [1, 2, 8];

fn entities_relation(seed: u64, n_entities: usize) -> Relation {
    let cfg = EntitiesConfig {
        n_entities,
        max_duplicates: 3,
        variety: 0.5,
        error_rate: 0.05,
        seed,
    };
    entities::generate(&cfg, &mut deptree::synth::rng(seed)).relation
}

/// Render discovered MDs with bit-exact scores for comparison.
fn render_scored_mds(v: &[md::ScoredMd]) -> Vec<String> {
    v.iter()
        .map(|s| {
            format!(
                "{} s={:016x} c={:016x}",
                s.md,
                s.support.to_bits(),
                s.confidence.to_bits()
            )
        })
        .collect()
}

#[test]
fn md_indexed_discovery_matches_naive_oracle() {
    // Text attributes exercise the q-gram edit-distance index, numeric ones
    // the band join, categorical ones equality blocking and (via thresholds
    // that reach 1.0 on Equality) the conservative full-scan fallback.
    let cases = [
        ("r1", hotels_r1(), "region"),
        ("r6", hotels_r6(), "region"),
        ("entities", entities_relation(41, 40), "name"),
        ("categorical", synthetic(43, 60, 0.05), "D0"),
    ];
    let cfg = md::MdConfig {
        min_support: 0.0,
        min_confidence: 0.5,
        thresholds_per_attr: 2,
        max_lhs: 2,
    };
    for (label, r, rhs_name) in cases {
        let rhs = AttrSet::single(r.schema().id(rhs_name));
        let want = render_scored_mds(&md::discover_naive(&r, rhs, &cfg));
        for threads in PAIR_THREADS {
            let out = md::discover_bounded(&r, rhs, &cfg, &Exec::unbounded().with_threads(threads));
            assert!(out.complete, "{label}: unbounded run must complete");
            assert_eq!(
                render_scored_mds(&out.result),
                want,
                "{label}: indexed MD discovery vs naive at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn md_partial_results_sound_under_budget() {
    let r = entities_relation(77, 50);
    let rhs = AttrSet::single(r.schema().id("name"));
    let cfg = md::MdConfig {
        min_support: 0.0,
        min_confidence: 0.5,
        thresholds_per_attr: 2,
        max_lhs: 2,
    };
    for budget in [
        Budget::new().with_max_rows(200),
        Budget::new().with_max_rows(5_000),
        Budget::new().with_max_nodes(3),
    ] {
        for threads in PAIR_THREADS {
            let exec = Exec::new(budget.clone()).with_threads(threads);
            let out = md::discover_bounded(&r, rhs, &cfg, &exec);
            // Whatever survives the budget must carry exact naive scores and
            // meet both bars — never a half-scanned estimate.
            for s in &out.result {
                let (sup, conf) = s.md.support_confidence_naive(&r);
                assert_eq!(sup.to_bits(), s.support.to_bits(), "{}", s.md);
                assert_eq!(conf.to_bits(), s.confidence.to_bits(), "{}", s.md);
                assert!(conf >= cfg.min_confidence, "{}", s.md);
            }
        }
    }
}

#[test]
fn dd_indexed_discovery_matches_naive_oracle() {
    let cases = [
        ("r6", hotels_r6()),
        ("entities", entities_relation(53, 35)),
        ("categorical", synthetic(61, 50, 0.05)),
    ];
    let cfg = dd::DdConfig {
        thresholds_per_attr: 3,
        min_support: 2,
        max_lhs: 1,
    };
    for (label, r) in cases {
        let want: Vec<String> = dd::discover_naive(&r, &cfg)
            .iter()
            .map(|d| d.to_string())
            .collect();
        for threads in PAIR_THREADS {
            let out = dd::discover_bounded(&r, &cfg, &Exec::unbounded().with_threads(threads));
            assert!(out.complete, "{label}: unbounded run must complete");
            let got: Vec<String> = out.result.iter().map(|d| d.to_string()).collect();
            assert_eq!(
                got, want,
                "{label}: indexed DD discovery vs naive at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn dd_partial_results_sound_under_budget() {
    let r = entities_relation(67, 45);
    let cfg = dd::DdConfig {
        thresholds_per_attr: 3,
        min_support: 2,
        max_lhs: 1,
    };
    for budget in [
        Budget::new().with_max_rows(300),
        Budget::new().with_max_nodes(4),
    ] {
        for threads in PAIR_THREADS {
            let exec = Exec::new(budget.clone()).with_threads(threads);
            let out = dd::discover_bounded(&r, &cfg, &exec);
            for d in &out.result {
                let (sup, conf) = d.support_confidence_naive(&r);
                // Emitted DDs are fully verified: the RHS threshold is the
                // exact max over LHS-compatible pairs, so confidence is 1.
                assert!(sup >= cfg.min_support, "{d}");
                assert_eq!(conf.to_bits(), 1.0f64.to_bits(), "{d}");
            }
        }
    }
}

#[test]
fn ned_indexed_scoring_matches_naive_on_paper_tables() {
    // Every single-atom NED over data-driven thresholds: the counting /
    // index-backed scorer must agree bit-for-bit with the pair scan.
    for (label, r) in [("r1", hotels_r1()), ("r6", hotels_r6())] {
        let s = r.schema();
        let attrs: Vec<_> = s.ids().collect();
        for &a in &attrs {
            for &b in &attrs {
                if a == b {
                    continue;
                }
                let ma = Metric::default_for(s.ty(a));
                let mb = Metric::default_for(s.ty(b));
                for ta in dd::candidate_thresholds(&r, a, &ma, 3) {
                    for tb in dd::candidate_thresholds(&r, b, &mb, 2) {
                        let ned = Ned::new(
                            s,
                            vec![NedAtom::new(a, ma.clone(), ta)],
                            vec![NedAtom::new(b, mb.clone(), tb)],
                        );
                        let fast = ned.support_confidence(&r);
                        let slow = ned.support_confidence_naive(&r);
                        assert_eq!(fast.0, slow.0, "{label}: support of {ned}");
                        assert_eq!(
                            fast.1.to_bits(),
                            slow.1.to_bits(),
                            "{label}: confidence of {ned}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn ned_discovery_deterministic_across_threads() {
    let r = entities_relation(59, 40);
    let s = r.schema();
    let name = s.id("name");
    let rhs = vec![NedAtom::new(name, Metric::default_for(s.ty(name)), 2.0)];
    let cfg = ned::NedConfig::default();
    let render = |n: &Option<Ned>| n.as_ref().map(|n| n.to_string());
    let base =
        ned::discover_lhs_bounded(&r, rhs.clone(), &cfg, &Exec::unbounded().with_threads(1)).result;
    for threads in [2, 8] {
        let got = ned::discover_lhs_bounded(
            &r,
            rhs.clone(),
            &cfg,
            &Exec::unbounded().with_threads(threads),
        )
        .result;
        assert_eq!(render(&got), render(&base), "NED at {threads} thread(s)");
    }
    if let Some(n) = &base {
        let fast = n.support_confidence(&r);
        let slow = n.support_confidence_naive(&r);
        assert_eq!(fast.0, slow.0);
        assert_eq!(fast.1.to_bits(), slow.1.to_bits());
    }
}

#[test]
fn od_sorted_validation_matches_naive_pair_scan() {
    let mut cases = vec![("r7".to_string(), hotels_r7())];
    let mut rng = deptree::synth::rng(0x0D0D);
    for case in 0..24 {
        cases.push((
            format!("numeric case {case}"),
            common::numeric_relation(&mut rng),
        ));
    }
    for (label, r) in &cases {
        let s = r.schema();
        let attrs: Vec<_> = s.ids().collect();
        for &a in &attrs {
            for &b in &attrs {
                if a == b {
                    continue;
                }
                for db in [Direction::Asc, Direction::Desc] {
                    let o = Od::new(s, vec![(a, Direction::Asc)], vec![(b, db)]);
                    assert_eq!(o.holds(r), o.holds_naive(r), "{label}: {o}");
                }
            }
        }
    }
    // Discovery (incl. compound LHS with its sampling prefilter) emits only
    // ODs the naive scan confirms, even under tight budgets.
    let r = hotels_r7();
    let cfg = od::OdConfig { max_lhs: 2 };
    for budget in [Budget::new(), Budget::new().with_max_nodes(9)] {
        let out = od::discover_bounded(&r, &cfg, &Exec::new(budget));
        for o in &out.result {
            assert!(o.holds_naive(&r), "{o}");
        }
    }
}

#[test]
fn dc_blocked_evidence_matches_naive_at_all_thread_counts() {
    let mut cases = vec![
        ("r7".to_string(), hotels_r7()),
        ("categorical".to_string(), synthetic(13, 80, 0.05)),
    ];
    let mut rng = deptree::synth::rng(0xDCDC);
    for case in 0..12 {
        cases.push((
            format!("numeric case {case}"),
            common::numeric_relation(&mut rng),
        ));
    }
    for (label, r) in &cases {
        let preds = dc::predicate_space(r);
        let mut nstats = dc::FastDcStats::default();
        let want = dc::evidence_sets(r, &preds, &mut nstats);
        for threads in PAIR_THREADS {
            let mut stats = dc::FastDcStats::default();
            let (got, complete) = dc::evidence_sets_blocked(
                r,
                &preds,
                &mut stats,
                &Exec::unbounded().with_threads(threads),
            );
            assert!(complete, "{label}: unbounded run must complete");
            assert_eq!(
                got, want,
                "{label}: blocked evidence at {threads} thread(s)"
            );
            assert_eq!(
                stats.pairs_evaluated, nstats.pairs_evaluated,
                "{label}: multiplicity accounting at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn dc_partial_evidence_is_submultiset_under_budget() {
    let r = synthetic(29, 120, 0.05);
    let preds = dc::predicate_space(&r);
    let mut nstats = dc::FastDcStats::default();
    let full = dc::evidence_sets(&r, &preds, &mut nstats);
    for max_rows in [10u64, 500, 5_000] {
        for threads in PAIR_THREADS {
            let mut stats = dc::FastDcStats::default();
            let exec = Exec::new(Budget::new().with_max_rows(max_rows)).with_threads(threads);
            let (partial, complete) = dc::evidence_sets_blocked(&r, &preds, &mut stats, &exec);
            assert!(
                !complete,
                "row budget {max_rows} should not cover all {} pairs",
                nstats.pairs_evaluated
            );
            for (bits, mult) in &partial {
                let cap = full.get(bits).copied().unwrap_or(0);
                assert!(
                    *mult <= cap,
                    "partial evidence {bits:#x} has multiplicity {mult} > full {cap}"
                );
            }
            assert!(stats.pairs_evaluated <= nstats.pairs_evaluated);
        }
    }
}

#[test]
fn g3_is_monotone_in_lhs_growth() {
    // The property the AFD oracle's minimality definition rests on:
    // growing the LHS never increases g3.
    let r = synthetic(7, 100, 0.1);
    let all = r.all_attrs();
    for lhs in subsets(all, MAX_LHS) {
        for a in all.difference(lhs).iter() {
            let pa = StrippedPartition::from_attrs(&r, AttrSet::single(a));
            let base = StrippedPartition::from_attrs(&r, lhs).g3_error(&pa);
            for b in all.difference(lhs.insert(a)).iter() {
                let grown = StrippedPartition::from_attrs(&r, lhs.insert(b)).g3_error(&pa);
                assert!(
                    grown <= base + 1e-12,
                    "g3 grew: {lhs:?}+{b:?} -> {a:?} ({grown} > {base})"
                );
            }
        }
    }
}

/// The frozen row-major reference paths (forced via `compat`) must satisfy
/// the same oracles as the columnar defaults — one representative case per
/// family (FD/AFD/MD/DD/NED/OD/DC), serial and parallel. Together with the
/// columnar runs above this closes the differential triangle: oracle ≡
/// columnar ≡ row-major. Other tests in this binary may observe the flag
/// while this one holds it; both paths are contractually byte-identical,
/// so that only affects their speed.
#[test]
fn oracles_agree_in_row_major_compat_mode() {
    use deptree::relation::compat;
    let _guard = compat::force_row_major();

    // FD (exact) and AFD (g3 ≤ ε) against the brute-force oracle.
    for (label, r, eps) in [
        ("r6 row-major", hotels_r6(), 0.0),
        ("r7 row-major", hotels_r7(), 0.0),
        (
            "synthetic row-major ε=0.05",
            synthetic(101, 200, 0.02),
            0.05,
        ),
    ] {
        let want = oracle(&r, eps);
        for threads in [1, 8] {
            assert_eq!(
                tane_fds(&r, eps, threads),
                want,
                "{label}: TANE vs oracle at {threads} thread(s)"
            );
            if eps == 0.0 {
                assert_eq!(
                    fastfd_fds(&r, threads),
                    want,
                    "{label}: FastFD vs oracle at {threads} thread(s)"
                );
            }
        }
    }

    // MD: indexed discovery vs the naive pair scan, bit-exact scores.
    let r = entities_relation(41, 40);
    let rhs = AttrSet::single(r.schema().id("name"));
    let cfg = md::MdConfig {
        min_support: 0.0,
        min_confidence: 0.5,
        thresholds_per_attr: 2,
        max_lhs: 2,
    };
    let want = render_scored_mds(&md::discover_naive(&r, rhs, &cfg));
    for threads in [1, 8] {
        let out = md::discover_bounded(&r, rhs, &cfg, &Exec::unbounded().with_threads(threads));
        assert!(out.complete, "row-major MD run must complete");
        assert_eq!(
            render_scored_mds(&out.result),
            want,
            "row-major MD vs naive at {threads} thread(s)"
        );
    }

    // DD: indexed vs naive.
    let r = entities_relation(53, 35);
    let cfg = dd::DdConfig {
        thresholds_per_attr: 3,
        min_support: 2,
        max_lhs: 1,
    };
    let want: Vec<String> = dd::discover_naive(&r, &cfg)
        .iter()
        .map(|d| d.to_string())
        .collect();
    for threads in [1, 8] {
        let out = dd::discover_bounded(&r, &cfg, &Exec::unbounded().with_threads(threads));
        assert!(out.complete, "row-major DD run must complete");
        let got: Vec<String> = out.result.iter().map(|d| d.to_string()).collect();
        assert_eq!(got, want, "row-major DD vs naive at {threads} thread(s)");
    }

    // NED: index-backed scoring vs the pair scan on a paper table.
    let r = hotels_r6();
    let s = r.schema();
    let attrs: Vec<_> = s.ids().collect();
    for &a in &attrs {
        for &b in &attrs {
            if a == b {
                continue;
            }
            let ma = Metric::default_for(s.ty(a));
            let mb = Metric::default_for(s.ty(b));
            for ta in dd::candidate_thresholds(&r, a, &ma, 2) {
                for tb in dd::candidate_thresholds(&r, b, &mb, 2) {
                    let ned = Ned::new(
                        s,
                        vec![NedAtom::new(a, ma.clone(), ta)],
                        vec![NedAtom::new(b, mb.clone(), tb)],
                    );
                    let fast = ned.support_confidence(&r);
                    let slow = ned.support_confidence_naive(&r);
                    assert_eq!(fast.0, slow.0, "row-major support of {ned}");
                    assert_eq!(
                        fast.1.to_bits(),
                        slow.1.to_bits(),
                        "row-major confidence of {ned}"
                    );
                }
            }
        }
    }

    // OD: sorted validation vs the naive pair scan.
    let r = hotels_r7();
    let s = r.schema();
    let attrs: Vec<_> = s.ids().collect();
    for &a in &attrs {
        for &b in &attrs {
            if a == b {
                continue;
            }
            for db in [Direction::Asc, Direction::Desc] {
                let o = Od::new(s, vec![(a, Direction::Asc)], vec![(b, db)]);
                assert_eq!(o.holds(&r), o.holds_naive(&r), "row-major {o}");
            }
        }
    }

    // DC: blocked evidence multiset vs the naive scan.
    let r = synthetic(13, 80, 0.05);
    let preds = dc::predicate_space(&r);
    let mut nstats = dc::FastDcStats::default();
    let want = dc::evidence_sets(&r, &preds, &mut nstats);
    for threads in [1, 8] {
        let mut stats = dc::FastDcStats::default();
        let (got, complete) = dc::evidence_sets_blocked(
            &r,
            &preds,
            &mut stats,
            &Exec::unbounded().with_threads(threads),
        );
        assert!(complete, "row-major DC run must complete");
        assert_eq!(got, want, "row-major evidence at {threads} thread(s)");
        assert_eq!(stats.pairs_evaluated, nstats.pairs_evaluated);
    }
}
