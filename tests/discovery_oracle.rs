//! Differential oracle for FD/AFD discovery.
//!
//! A brute-force oracle enumerates *every* candidate `X → A` with
//! `|X| ≤ 3` and decides it directly from stripped partitions — no
//! lattice pruning, no candidate propagation, nothing shared with the
//! miners under test. TANE and FastFD must reproduce the oracle's minimal
//! cover exactly, serially and at every thread count, on the paper's
//! built-in tables and on seeded synthetic relations.

mod common;

use deptree::core::engine::Exec;
use deptree::core::Fd;
use deptree::discovery::{fastfd, tane};
use deptree::relation::examples::{hotels_r1, hotels_r5, hotels_r6, hotels_r7};
use deptree::relation::{AttrSet, Relation, StrippedPartition};
use deptree::synth::{categorical, CategoricalConfig};

const MAX_LHS: usize = 3;

/// All attribute subsets of size ≤ `max`, smallest first.
fn subsets(all: AttrSet, max: usize) -> Vec<AttrSet> {
    let attrs = all.to_vec();
    let mut out: Vec<AttrSet> = (0..1u64 << attrs.len())
        .map(|mask| {
            attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &a)| a)
                .collect()
        })
        .filter(|s: &AttrSet| s.len() <= max)
        .collect();
    out.sort_by_key(|s| (s.len(), *s));
    out
}

/// Brute-force minimal dependencies with `g3 ≤ max_error` and `|X| ≤ 3`,
/// rendered in the miners' display form for comparison. The decision for
/// each candidate comes straight from `g3` over materialized partitions
/// (`g3 = 0` ⟺ the FD holds exactly); minimality re-tests every proper
/// subset the same way. `X = ∅` is included — an empty LHS determines
/// exactly the constant columns.
fn oracle(r: &Relation, max_error: f64) -> Vec<String> {
    let all = r.all_attrs();
    let sets = subsets(all, MAX_LHS);
    let parts: Vec<(AttrSet, StrippedPartition)> = sets
        .iter()
        .map(|&s| (s, StrippedPartition::from_attrs(r, s)))
        .collect();
    let holds = |lhs: AttrSet, rhs: AttrSet| -> bool {
        let px = parts
            .iter()
            .find(|(s, _)| *s == lhs)
            .map(|(_, p)| p)
            .expect("subset enumerated");
        let pa = StrippedPartition::from_attrs(r, rhs);
        px.g3_error(&pa) <= max_error
    };
    let mut out = Vec::new();
    for &lhs in &sets {
        for a in all.difference(lhs).iter() {
            let rhs = AttrSet::single(a);
            if !holds(lhs, rhs) {
                continue;
            }
            let minimal = lhs.iter().all(|b| !holds(lhs.remove(b), rhs));
            if minimal {
                out.push(Fd::new(r.schema(), lhs, rhs).to_string());
            }
        }
    }
    out.sort();
    out
}

fn tane_fds(r: &Relation, max_error: f64, threads: usize) -> Vec<String> {
    let cfg = tane::TaneConfig {
        max_lhs: MAX_LHS,
        max_error,
    };
    let out = tane::discover_bounded(r, &cfg, &Exec::unbounded().with_threads(threads));
    assert!(out.complete, "unbounded run must complete");
    let mut v: Vec<String> = out.result.fds.iter().map(|f| f.to_string()).collect();
    v.sort();
    v
}

fn fastfd_fds(r: &Relation, threads: usize) -> Vec<String> {
    let out = fastfd::discover_bounded(r, &Exec::unbounded().with_threads(threads));
    assert!(out.complete, "unbounded run must complete");
    let mut v: Vec<String> = out
        .result
        .fds
        .iter()
        .filter(|f| f.lhs().len() <= MAX_LHS)
        .map(|f| f.to_string())
        .collect();
    v.sort();
    v
}

fn check_exact(r: &Relation, label: &str) {
    let want = oracle(r, 0.0);
    for threads in [1, 8] {
        assert_eq!(
            tane_fds(r, 0.0, threads),
            want,
            "{label}: TANE vs oracle at {threads} thread(s)"
        );
        assert_eq!(
            fastfd_fds(r, threads),
            want,
            "{label}: FastFD vs oracle at {threads} thread(s)"
        );
    }
}

fn synthetic(seed: u64, n_rows: usize, error_rate: f64) -> Relation {
    let cfg = CategoricalConfig {
        n_rows,
        n_key_attrs: 2,
        n_dep_attrs: 3,
        domain: 6,
        error_rate,
        seed,
    };
    categorical::generate(&cfg, &mut deptree::synth::rng(seed)).relation
}

#[test]
fn oracle_agrees_on_paper_tables() {
    for (label, r) in [
        ("r1", hotels_r1()),
        ("r5", hotels_r5()),
        ("r6", hotels_r6()),
        ("r7", hotels_r7()),
    ] {
        check_exact(&r, label);
    }
}

#[test]
fn oracle_agrees_on_seeded_synthetics() {
    for (i, &(seed, rows, err)) in [
        (11u64, 60usize, 0.0f64),
        (23, 90, 0.05),
        (37, 120, 0.0),
        (59, 150, 0.1),
    ]
    .iter()
    .enumerate()
    {
        let r = synthetic(seed, rows, err);
        check_exact(&r, &format!("synthetic #{i} (seed {seed})"));
    }
}

#[test]
fn oracle_agrees_on_random_small_relations() {
    let mut rng = deptree::synth::rng(0xD1FF);
    for case in 0..32 {
        let r = common::small_relation(&mut rng);
        if r.n_rows() == 0 {
            continue;
        }
        check_exact(&r, &format!("small case {case}"));
    }
}

#[test]
fn afd_oracle_agrees_with_approximate_tane() {
    // AFDs: g3 ≤ ε, still minimal-LHS. FastFD has no approximate mode, so
    // only TANE is differential here.
    for (label, r, eps) in [
        ("r1 ε=0.2", hotels_r1(), 0.2),
        ("r5 ε=0.25", hotels_r5(), 0.25),
        ("r6 ε=0.1", hotels_r6(), 0.1),
        ("synthetic ε=0.05", synthetic(101, 200, 0.02), 0.05),
    ] {
        let want = oracle(&r, eps);
        for threads in [1, 8] {
            assert_eq!(
                tane_fds(&r, eps, threads),
                want,
                "{label}: approximate TANE vs oracle at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn g3_is_monotone_in_lhs_growth() {
    // The property the AFD oracle's minimality definition rests on:
    // growing the LHS never increases g3.
    let r = synthetic(7, 100, 0.1);
    let all = r.all_attrs();
    for lhs in subsets(all, MAX_LHS) {
        for a in all.difference(lhs).iter() {
            let pa = StrippedPartition::from_attrs(&r, AttrSet::single(a));
            let base = StrippedPartition::from_attrs(&r, lhs).g3_error(&pa);
            for b in all.difference(lhs.insert(a)).iter() {
                let grown = StrippedPartition::from_attrs(&r, lhs.insert(b)).g3_error(&pa);
                assert!(
                    grown <= base + 1e-12,
                    "g3 grew: {lhs:?}+{b:?} -> {a:?} ({grown} > {base})"
                );
            }
        }
    }
}
