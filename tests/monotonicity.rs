//! Threshold monotonicity: every parameterized notation in the family
//! must be *monotone in its own threshold* — loosening the parameter can
//! only preserve satisfaction. These are the laws that make threshold
//! discovery (binary search / quantile grids) meaningful.

use deptree::core::*;
use deptree::metrics::Metric;
use deptree::relation::{AttrId, AttrSet, Relation, RelationBuilder, Value, ValueType};
use proptest::prelude::*;

fn mixed_relation() -> impl Strategy<Value = Relation> {
    (2usize..=8).prop_flat_map(|n_rows| {
        proptest::collection::vec((0u8..4, 0u8..4, -10i64..10), n_rows..=n_rows).prop_map(
            |rows| {
                let mut b = RelationBuilder::new()
                    .attr("c", ValueType::Categorical)
                    .attr("t", ValueType::Text)
                    .attr("n", ValueType::Numeric);
                for (c, t, n) in rows {
                    b = b.row(vec![
                        Value::str(format!("c{c}")),
                        Value::str(format!("word{t}")),
                        Value::int(n),
                    ]);
                }
                b.build().expect("consistent arity")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SFD/PFD: higher threshold is harder; AFD/NUD/MFD/PAC: higher
    /// threshold is easier. Check adjacent parameter pairs.
    #[test]
    fn statistical_thresholds_monotone(r in mixed_relation(), lo in 0.1f64..0.9) {
        let hi = lo + 0.1;
        let fd = Fd::new(r.schema(), AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)));
        // Strength/probability: holds at hi ⇒ holds at lo.
        if Sfd::new(fd.clone(), hi).holds(&r) {
            prop_assert!(Sfd::new(fd.clone(), lo).holds(&r));
        }
        if Pfd::new(fd.clone(), hi).holds(&r) {
            prop_assert!(Pfd::new(fd.clone(), lo).holds(&r));
        }
        // Error: holds at lo ⇒ holds at hi.
        if Afd::new(fd.clone(), lo).holds(&r) {
            prop_assert!(Afd::new(fd.clone(), hi).holds(&r));
        }
    }

    #[test]
    fn nud_monotone_in_k(r in mixed_relation(), k in 1usize..4) {
        let s = r.schema();
        let nud_k = Nud::new(s, AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)), k);
        let nud_k1 = Nud::new(s, AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)), k + 1);
        if nud_k.holds(&r) {
            prop_assert!(nud_k1.holds(&r));
        }
    }

    #[test]
    fn mfd_monotone_in_delta(r in mixed_relation(), d in 0.0f64..10.0) {
        let s = r.schema();
        let tight = Mfd::new(s, AttrSet::single(AttrId(0)), vec![(AttrId(2), Metric::AbsDiff, d)]);
        let loose = Mfd::new(s, AttrSet::single(AttrId(0)), vec![(AttrId(2), Metric::AbsDiff, d + 1.0)]);
        if tight.holds(&r) {
            prop_assert!(loose.holds(&r));
        }
    }

    /// MD: loosening the LHS threshold makes the premise fire on more
    /// pairs — satisfaction is *anti*-monotone in the LHS threshold.
    #[test]
    fn md_antimonotone_in_lhs_threshold(r in mixed_relation(), t in 0.0f64..4.0) {
        let s = r.schema();
        let tight = Md::new(s, vec![(AttrId(1), Metric::Levenshtein, t)], AttrSet::single(AttrId(0)));
        let loose = Md::new(s, vec![(AttrId(1), Metric::Levenshtein, t + 1.0)], AttrSet::single(AttrId(0)));
        if loose.holds(&r) {
            prop_assert!(tight.holds(&r), "loose premise holds but tight fails");
        }
    }

    /// PAC: probability is monotone in the RHS tolerance and the
    /// constraint anti-monotone in δ.
    #[test]
    fn pac_monotonicities(r in mixed_relation(), eps in 0.0f64..8.0, delta in 0.2f64..0.9) {
        let s = r.schema();
        let p_tight = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps)],
            delta,
        );
        let p_loose = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps + 1.0)],
            delta,
        );
        prop_assert!(p_loose.probability(&r) >= p_tight.probability(&r) - 1e-12);
        let stricter_conf = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps)],
            (delta + 0.1).min(1.0),
        );
        if stricter_conf.holds(&r) {
            prop_assert!(p_tight.holds(&r));
        }
    }

    /// AMVD: accuracy error fixed, threshold loosening preserves holds.
    #[test]
    fn amvd_monotone_in_epsilon(r in mixed_relation(), e in 0.0f64..0.8) {
        let s = r.schema();
        let mvd = Mvd::new(s, AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)));
        let tight = Amvd::new(mvd.clone(), e);
        let loose = Amvd::new(mvd, (e + 0.1).min(0.99));
        if tight.holds(&r) {
            prop_assert!(loose.holds(&r));
        }
    }

    /// SD: widening the gap interval preserves satisfaction.
    #[test]
    fn sd_monotone_in_interval(r in mixed_relation(), lo in -5.0f64..0.0, w in 0.0f64..8.0) {
        let s = r.schema();
        let tight = Sd::new(s, AttrId(2), AttrId(0), Interval::new(lo, lo + w));
        let loose = Sd::new(s, AttrId(2), AttrId(0), Interval::new(lo - 1.0, lo + w + 1.0));
        if tight.holds(&r) {
            prop_assert!(loose.holds(&r));
        }
    }

    /// DD: loosening the RHS range or tightening the LHS range preserves
    /// satisfaction (the subsumption order used by discovery pruning).
    #[test]
    fn dd_subsumption_order(r in mixed_relation(), l in 0.0f64..4.0, h in 0.0f64..6.0) {
        let s = r.schema();
        let base = Dd::new(
            s,
            vec![DiffAtom::at_most(AttrId(1), Metric::Levenshtein, l)],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h)],
        );
        let tighter_lhs = Dd::new(
            s,
            vec![DiffAtom::at_most(AttrId(1), Metric::Levenshtein, (l - 1.0).max(0.0))],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h)],
        );
        let looser_rhs = Dd::new(
            s,
            vec![DiffAtom::at_most(AttrId(1), Metric::Levenshtein, l)],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h + 1.0)],
        );
        if base.holds(&r) {
            prop_assert!(tighter_lhs.holds(&r));
            prop_assert!(looser_rhs.holds(&r));
        }
    }

    /// FFD: scaling β up makes numeric values "less equal" on both sides
    /// symmetrically — but on the RHS only, a smaller β (more equal) can
    /// only help.
    #[test]
    fn ffd_monotone_in_rhs_beta(r in mixed_relation(), beta in 0.5f64..4.0) {
        use deptree::metrics::Resemblance;
        let s = r.schema();
        let strict = Ffd::new(
            s,
            vec![(AttrId(0), Resemblance::Crisp)],
            vec![(AttrId(2), Resemblance::InverseNumeric(beta))],
        );
        let relaxed = Ffd::new(
            s,
            vec![(AttrId(0), Resemblance::Crisp)],
            vec![(AttrId(2), Resemblance::InverseNumeric(beta / 2.0))],
        );
        if strict.holds(&r) {
            prop_assert!(relaxed.holds(&r));
        }
    }
}
