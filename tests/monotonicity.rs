//! Threshold monotonicity: every parameterized notation in the family
//! must be *monotone in its own threshold* — loosening the parameter can
//! only preserve satisfaction. These are the laws that make threshold
//! discovery (binary search / quantile grids) meaningful.
//!
//! Seeded deterministic case loops replace proptest (offline build).

mod common;

use common::{mixed_relation, CASES};
use deptree::core::*;
use deptree::metrics::Metric;
use deptree::relation::{AttrId, AttrSet};
use deptree::synth::Rng;

fn cases(base: u64) -> impl Iterator<Item = (Rng, u64)> {
    (0..CASES).map(move |i| (Rng::seed_from_u64(0xABCD + base * 1000 + i), i))
}

/// SFD/PFD: higher threshold is harder; AFD: higher threshold is easier.
#[test]
fn statistical_thresholds_monotone() {
    for (mut rng, case) in cases(1) {
        let r = mixed_relation(&mut rng);
        let lo = rng.random_range(0.1..0.9f64);
        let hi = lo + 0.1;
        let fd = Fd::new(
            r.schema(),
            AttrSet::single(AttrId(0)),
            AttrSet::single(AttrId(1)),
        );
        // Strength/probability: holds at hi ⇒ holds at lo.
        if Sfd::new(fd.clone(), hi).holds(&r) {
            assert!(Sfd::new(fd.clone(), lo).holds(&r), "case {case}");
        }
        if Pfd::new(fd.clone(), hi).holds(&r) {
            assert!(Pfd::new(fd.clone(), lo).holds(&r), "case {case}");
        }
        // Error: holds at lo ⇒ holds at hi.
        if Afd::new(fd.clone(), lo).holds(&r) {
            assert!(Afd::new(fd.clone(), hi).holds(&r), "case {case}");
        }
    }
}

#[test]
fn nud_monotone_in_k() {
    for (mut rng, case) in cases(2) {
        let r = mixed_relation(&mut rng);
        let k = rng.random_range(1..4usize);
        let s = r.schema();
        let nud_k = Nud::new(s, AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)), k);
        let nud_k1 = Nud::new(
            s,
            AttrSet::single(AttrId(0)),
            AttrSet::single(AttrId(1)),
            k + 1,
        );
        if nud_k.holds(&r) {
            assert!(nud_k1.holds(&r), "case {case}");
        }
    }
}

#[test]
fn mfd_monotone_in_delta() {
    for (mut rng, case) in cases(3) {
        let r = mixed_relation(&mut rng);
        let d = rng.random_range(0.0..10.0f64);
        let s = r.schema();
        let tight = Mfd::new(
            s,
            AttrSet::single(AttrId(0)),
            vec![(AttrId(2), Metric::AbsDiff, d)],
        );
        let loose = Mfd::new(
            s,
            AttrSet::single(AttrId(0)),
            vec![(AttrId(2), Metric::AbsDiff, d + 1.0)],
        );
        if tight.holds(&r) {
            assert!(loose.holds(&r), "case {case}");
        }
    }
}

/// MD: loosening the LHS threshold makes the premise fire on more pairs —
/// satisfaction is *anti*-monotone in the LHS threshold.
#[test]
fn md_antimonotone_in_lhs_threshold() {
    for (mut rng, case) in cases(4) {
        let r = mixed_relation(&mut rng);
        let t = rng.random_range(0.0..4.0f64);
        let s = r.schema();
        let tight = Md::new(
            s,
            vec![(AttrId(1), Metric::Levenshtein, t)],
            AttrSet::single(AttrId(0)),
        );
        let loose = Md::new(
            s,
            vec![(AttrId(1), Metric::Levenshtein, t + 1.0)],
            AttrSet::single(AttrId(0)),
        );
        if loose.holds(&r) {
            assert!(
                tight.holds(&r),
                "case {case}: loose premise holds but tight fails"
            );
        }
    }
}

/// PAC: probability is monotone in the RHS tolerance and the constraint
/// anti-monotone in δ.
#[test]
fn pac_monotonicities() {
    for (mut rng, case) in cases(5) {
        let r = mixed_relation(&mut rng);
        let eps = rng.random_range(0.0..8.0f64);
        let delta = rng.random_range(0.2..0.9f64);
        let s = r.schema();
        let p_tight = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps)],
            delta,
        );
        let p_loose = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps + 1.0)],
            delta,
        );
        assert!(
            p_loose.probability(&r) >= p_tight.probability(&r) - 1e-12,
            "case {case}"
        );
        let stricter_conf = Pac::new(
            s,
            vec![(AttrId(2), Metric::AbsDiff, 5.0)],
            vec![(AttrId(2), Metric::AbsDiff, eps)],
            (delta + 0.1).min(1.0),
        );
        if stricter_conf.holds(&r) {
            assert!(p_tight.holds(&r), "case {case}");
        }
    }
}

/// AMVD: accuracy error fixed, threshold loosening preserves holds.
#[test]
fn amvd_monotone_in_epsilon() {
    for (mut rng, case) in cases(6) {
        let r = mixed_relation(&mut rng);
        let e = rng.random_range(0.0..0.8f64);
        let s = r.schema();
        let mvd = Mvd::new(s, AttrSet::single(AttrId(0)), AttrSet::single(AttrId(1)));
        let tight = Amvd::new(mvd.clone(), e);
        let loose = Amvd::new(mvd, (e + 0.1).min(0.99));
        if tight.holds(&r) {
            assert!(loose.holds(&r), "case {case}");
        }
    }
}

/// SD: widening the gap interval preserves satisfaction.
#[test]
fn sd_monotone_in_interval() {
    for (mut rng, case) in cases(7) {
        let r = mixed_relation(&mut rng);
        let lo = rng.random_range(-5.0..0.0f64);
        let w = rng.random_range(0.0..8.0f64);
        let s = r.schema();
        let tight = Sd::new(s, AttrId(2), AttrId(0), Interval::new(lo, lo + w));
        let loose = Sd::new(
            s,
            AttrId(2),
            AttrId(0),
            Interval::new(lo - 1.0, lo + w + 1.0),
        );
        if tight.holds(&r) {
            assert!(loose.holds(&r), "case {case}");
        }
    }
}

/// DD: loosening the RHS range or tightening the LHS range preserves
/// satisfaction (the subsumption order used by discovery pruning).
#[test]
fn dd_subsumption_order() {
    for (mut rng, case) in cases(8) {
        let r = mixed_relation(&mut rng);
        let l = rng.random_range(0.0..4.0f64);
        let h = rng.random_range(0.0..6.0f64);
        let s = r.schema();
        let base = Dd::new(
            s,
            vec![DiffAtom::at_most(AttrId(1), Metric::Levenshtein, l)],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h)],
        );
        let tighter_lhs = Dd::new(
            s,
            vec![DiffAtom::at_most(
                AttrId(1),
                Metric::Levenshtein,
                (l - 1.0).max(0.0),
            )],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h)],
        );
        let looser_rhs = Dd::new(
            s,
            vec![DiffAtom::at_most(AttrId(1), Metric::Levenshtein, l)],
            vec![DiffAtom::at_most(AttrId(2), Metric::AbsDiff, h + 1.0)],
        );
        if base.holds(&r) {
            assert!(tighter_lhs.holds(&r), "case {case}");
            assert!(looser_rhs.holds(&r), "case {case}");
        }
    }
}

/// FFD: on the RHS only, a smaller β (more equal) can only help.
#[test]
fn ffd_monotone_in_rhs_beta() {
    use deptree::metrics::Resemblance;
    for (mut rng, case) in cases(9) {
        let r = mixed_relation(&mut rng);
        let beta = rng.random_range(0.5..4.0f64);
        let s = r.schema();
        let strict = Ffd::new(
            s,
            vec![(AttrId(0), Resemblance::Crisp)],
            vec![(AttrId(2), Resemblance::InverseNumeric(beta))],
        );
        let relaxed = Ffd::new(
            s,
            vec![(AttrId(0), Resemblance::Crisp)],
            vec![(AttrId(2), Resemblance::InverseNumeric(beta / 2.0))],
        );
        if strict.holds(&r) {
            assert!(relaxed.holds(&r), "case {case}");
        }
    }
}
