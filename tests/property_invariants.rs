//! Property-based invariants over randomly generated relations: measure
//! bounds, family-tree embedding laws, discovery soundness, partition
//! algebra — the "does the theory hold off the happy path" suite.
//!
//! Runs seeded deterministic case loops (see `common`) instead of proptest
//! so the suite works with no external dev-dependencies.

mod common;

use common::{numeric_relation, small_relation, CASES};
use deptree::core::*;
use deptree::relation::{AttrId, AttrSet, Relation, StrippedPartition};
use deptree::synth::Rng;

/// A random single-attr→single-attr FD for `r`.
fn fd_for(r: &Relation, lhs: usize, rhs: usize) -> Fd {
    let n = r.n_attrs();
    Fd::new(
        r.schema(),
        AttrSet::single(AttrId(lhs % n)),
        AttrSet::single(AttrId(rhs % n)),
    )
}

fn cases(base: u64) -> impl Iterator<Item = (Rng, u64)> {
    (0..CASES).map(move |i| (Rng::seed_from_u64(base.wrapping_mul(1000) + i), i))
}

#[test]
fn measures_are_bounded() {
    for (mut rng, case) in cases(1) {
        let r = small_relation(&mut rng);
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        let g3 = fd.g3(&r);
        assert!((0.0..=1.0).contains(&g3), "case {case}: g3 {g3}");
        let sfd = Sfd::from_fd(fd.clone());
        let s = sfd.strength(&r);
        assert!(s > 0.0 && s <= 1.0, "case {case}: strength {s}");
        let pfd = Pfd::from_fd(fd.clone());
        let p = pfd.probability(&r);
        assert!((0.0..=1.0).contains(&p), "case {case}: probability {p}");
    }
}

/// The statistical embeddings are exact at their degenerate points:
/// FD ⇔ SFD(1) ⇔ PFD(1) ⇔ AFD(0) ⇔ NUD(1) ⇔ CFD(no constants).
#[test]
fn fd_embeddings_agree() {
    for (mut rng, case) in cases(2) {
        let r = small_relation(&mut rng);
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        let expected = fd.holds(&r);
        assert_eq!(Sfd::from_fd(fd.clone()).holds(&r), expected, "case {case}");
        assert_eq!(Pfd::from_fd(fd.clone()).holds(&r), expected, "case {case}");
        assert_eq!(Afd::from_fd(fd.clone()).holds(&r), expected, "case {case}");
        assert_eq!(
            Nud::from_fd(r.schema(), &fd).holds(&r),
            expected,
            "case {case}"
        );
        assert_eq!(
            Cfd::from_fd(r.schema(), &fd).holds(&r),
            expected,
            "case {case}"
        );
        assert_eq!(
            Mfd::from_fd(r.schema(), &fd).holds(&r),
            expected,
            "case {case}"
        );
        assert_eq!(
            Md::from_fd(r.schema(), &fd).holds(&r),
            expected,
            "case {case}"
        );
        assert_eq!(
            Ffd::from_fd(r.schema(), &fd).holds(&r),
            expected,
            "case {case}"
        );
        // FD ⇒ MVD (one-directional).
        if expected {
            assert!(Mvd::from_fd(r.schema(), &fd).holds(&r), "case {case}");
        }
    }
}

/// `holds ⇔ violations().is_empty()` for the exact notations.
#[test]
fn holds_iff_no_violations() {
    for (mut rng, case) in cases(3) {
        let r = small_relation(&mut rng);
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        assert_eq!(fd.holds(&r), fd.violations(&r).is_empty(), "case {case}");
        let mvd = Mvd::from_fd(r.schema(), &fd);
        assert_eq!(mvd.holds(&r), mvd.violations(&r).is_empty(), "case {case}");
        let md = Md::from_fd(r.schema(), &fd);
        assert_eq!(md.holds(&r), md.violations(&r).is_empty(), "case {case}");
    }
}

/// Partition algebra: product is commutative, idempotent, matches direct
/// grouping, and num_classes is monotone under refinement.
#[test]
fn partition_laws() {
    for (mut rng, case) in cases(4) {
        let r = small_relation(&mut rng);
        let a = AttrId(0);
        let b = AttrId(1);
        let pa = StrippedPartition::from_column(&r, a);
        let pb = StrippedPartition::from_column(&r, b);
        let prod = pa.product(&pb);
        assert_eq!(prod, pb.product(&pa), "case {case}");
        assert_eq!(
            prod,
            StrippedPartition::from_attrs(&r, AttrSet::from_ids([a, b])),
            "case {case}"
        );
        assert_eq!(pa.product(&pa), pa, "case {case}");
        assert!(prod.num_classes() >= pa.num_classes(), "case {case}");
        assert!(prod.error() <= pa.error(), "case {case}");
    }
}

/// TANE and FastFD return identical minimal covers on random data.
#[test]
fn tane_equals_fastfd() {
    use deptree::discovery::{fastfd, tane};
    for (mut rng, case) in cases(5) {
        let r = small_relation(&mut rng);
        let t = tane::discover(
            &r,
            &tane::TaneConfig {
                max_lhs: r.n_attrs(),
                max_error: 0.0,
            },
        );
        let f = fastfd::discover(&r);
        let ts: std::collections::BTreeSet<String> =
            t.fds.iter().map(|fd| fd.to_string()).collect();
        let fs: std::collections::BTreeSet<String> =
            f.fds.iter().map(|fd| fd.to_string()).collect();
        assert_eq!(ts, fs, "case {case}");
    }
}

/// Discovery soundness: everything TANE returns holds and is minimal.
#[test]
fn tane_sound_and_minimal() {
    use deptree::discovery::tane;
    for (mut rng, case) in cases(6) {
        let r = small_relation(&mut rng);
        let t = tane::discover(
            &r,
            &tane::TaneConfig {
                max_lhs: r.n_attrs(),
                max_error: 0.0,
            },
        );
        for fd in &t.fds {
            assert!(fd.holds(&r), "case {case}: {fd} does not hold");
            for a in fd.lhs().iter() {
                let smaller = Fd::new(r.schema(), fd.lhs().remove(a), fd.rhs());
                assert!(!smaller.holds(&r), "case {case}: {fd} not minimal");
            }
        }
    }
}

/// FD repair converges and reaches consistency.
#[test]
fn fd_repair_reaches_fixpoint() {
    use deptree::quality::repair;
    for (mut rng, case) in cases(7) {
        let r = small_relation(&mut rng);
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        if fd.is_trivial() {
            continue;
        }
        let result = repair::repair_fds(&r, std::slice::from_ref(&fd), 20);
        assert!(fd.holds(&result.relation), "case {case}");
    }
}

/// Deletion repair always reaches consistency and never deletes more rows
/// than the relation has.
#[test]
fn deletion_repair_terminates() {
    use deptree::quality::repair;
    for (mut rng, case) in cases(8) {
        let r = small_relation(&mut rng);
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd)];
        let result = repair::deletion_repair(&r, &rules);
        assert!(rules[0].holds(&result.relation), "case {case}");
        assert!(result.deleted.len() <= r.n_rows(), "case {case}");
    }
}

/// The g3 interpretation: g3·n is the *minimum* number of deletions, so
/// any repair that reaches consistency deletes at least that many rows.
#[test]
fn g3_lower_bounds_deletion_repair() {
    use deptree::quality::repair;
    for (mut rng, case) in cases(9) {
        let r = small_relation(&mut rng);
        if r.n_rows() == 0 {
            continue;
        }
        let (l, h) = (rng.random_range(0..4usize), rng.random_range(0..4usize));
        let fd = fd_for(&r, l, h);
        let optimal = (fd.g3(&r) * r.n_rows() as f64).round() as usize;
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd)];
        let result = repair::deletion_repair(&r, &rules);
        assert!(result.deleted.len() >= optimal, "case {case}");
        assert!(result.deleted.len() <= r.n_rows(), "case {case}");
    }
}

/// Order-notation properties over random numeric relations.
mod numeric {
    use super::*;

    #[test]
    fn od_dc_equivalence() {
        for (mut rng, case) in cases(10) {
            let r = numeric_relation(&mut rng);
            let s = r.schema();
            let dir = |i: u8| {
                if i == 0 {
                    Direction::Asc
                } else {
                    Direction::Desc
                }
            };
            let od = Od::new(
                s,
                vec![(AttrId(0), dir(rng.random_range(0..2u8)))],
                vec![(AttrId(1), dir(rng.random_range(0..2u8)))],
            );
            let dcs = Dc::from_od(s, &od);
            assert_eq!(od.holds(&r), dcs.iter().all(|d| d.holds(&r)), "case {case}");
        }
    }

    /// OD ⇒ SD under the from_od embedding.
    #[test]
    fn od_implies_sd() {
        for (mut rng, case) in cases(11) {
            let r = numeric_relation(&mut rng);
            let s = r.schema();
            let dir = if rng.random_range(0..2u8) == 0 {
                Direction::Asc
            } else {
                Direction::Desc
            };
            let od = Od::new(s, vec![(AttrId(0), Direction::Asc)], vec![(AttrId(1), dir)]);
            if let Some(sd) = Sd::from_od(s, &od) {
                if od.holds(&r) {
                    assert!(sd.holds(&r), "case {case}");
                }
            }
        }
    }

    /// The single-attribute OD validator agrees with pairwise holds.
    #[test]
    fn od_validator_correct() {
        use deptree::discovery::od::validate_single;
        for (mut rng, case) in cases(12) {
            let r = numeric_relation(&mut rng);
            let s = r.schema();
            let dir = if rng.random_range(0..2u8) == 0 {
                Direction::Asc
            } else {
                Direction::Desc
            };
            let od = Od::new(s, vec![(AttrId(0), Direction::Asc)], vec![(AttrId(1), dir)]);
            assert_eq!(
                validate_single(&r, AttrId(0), Direction::Asc, AttrId(1), dir),
                od.holds(&r),
                "case {case}"
            );
        }
    }

    /// Sequence repair under an SD always reaches consistency.
    #[test]
    fn sequence_repair_total() {
        use deptree::quality::repair;
        for (mut rng, case) in cases(13) {
            let r = numeric_relation(&mut rng);
            let s = r.schema();
            let lo = rng.random_range(-5..0i64);
            let width = rng.random_range(0..8i64);
            let sd = Sd::new(
                s,
                AttrId(0),
                AttrId(1),
                Interval::new(lo as f64, (lo + width) as f64),
            );
            let (repaired, _) = repair::repair_sequence(&r, &sd);
            assert!(sd.holds(&repaired), "case {case}");
        }
    }

    /// FASTDC soundness: every discovered DC holds.
    #[test]
    fn fastdc_sound() {
        use deptree::discovery::dc;
        for (mut rng, case) in cases(14).take(96) {
            let r = numeric_relation(&mut rng);
            let result = dc::discover(
                &r,
                &dc::DcConfig {
                    max_predicates: 2,
                    approx_epsilon: 0.0,
                },
            );
            for rule in &result.dcs {
                assert!(rule.holds(&r), "case {case}: {rule} fails");
            }
        }
    }
}

/// [`PartitionCache`] invariants under random workloads: a hit is
/// bit-identical to a fresh computation, the reported byte deltas account
/// exactly for the resident estimate, and LRU eviction under capacity
/// pressure is invisible to callers.
mod partition_cache {
    use super::*;
    use deptree::relation::{CacheDelta, PartitionCache};

    /// A random (possibly empty) attribute subset of `r`.
    fn random_set(rng: &mut Rng, r: &Relation) -> AttrSet {
        AttrSet::from_bits(rng.random_range(0..(1u64 << r.n_attrs())))
    }

    /// Every lookup — first (miss) and second (hit) — equals a fresh
    /// from-scratch partition computation.
    #[test]
    fn hit_equals_fresh_computation() {
        for (mut rng, case) in cases(20) {
            let r = small_relation(&mut rng);
            let cache = PartitionCache::new();
            for _ in 0..12 {
                let set = random_set(&mut rng, &r);
                let fresh = StrippedPartition::from_attrs(&r, set);
                let (miss, _) = cache.get_or_compute(&r, set);
                assert_eq!(*miss, fresh, "case {case}: miss differs for {set:?}");
                let (hit, d) = cache.get_or_compute(&r, set);
                assert_eq!(*hit, fresh, "case {case}: hit differs for {set:?}");
                assert_eq!(d, CacheDelta::default(), "case {case}: hit charged bytes");
            }
        }
    }

    /// Replaying every reported delta (inserted − evicted − removed)
    /// reproduces `mem_estimate` exactly, and the running ledger never
    /// goes negative — the accounting a miner charges to the engine's
    /// memory budget is self-consistent at every step.
    #[test]
    fn delta_ledger_matches_mem_estimate() {
        for (mut rng, case) in cases(21) {
            let r = small_relation(&mut rng);
            let cache = PartitionCache::new();
            let mut ledger: i64 = 0;
            for step in 0..40 {
                let set = random_set(&mut rng, &r);
                if rng.random_range(0..4u8) == 0 {
                    ledger -= cache.remove(set) as i64;
                } else {
                    let (_, d) = cache.get_or_compute(&r, set);
                    ledger += d.inserted_bytes as i64;
                    ledger -= d.evicted_bytes as i64;
                }
                assert!(ledger >= 0, "case {case} step {step}: negative ledger");
                assert_eq!(
                    ledger as u64,
                    cache.mem_estimate(),
                    "case {case} step {step}: ledger drifted from mem_estimate"
                );
            }
            ledger -= cache.clear() as i64;
            assert_eq!(ledger, 0, "case {case}: clear() released a different total");
            assert_eq!(cache.mem_estimate(), 0, "case {case}");
        }
    }

    /// The same ledger law over adversarial *mutated* columnar relations:
    /// random cell overwrites orphan dictionary entries and invalidate lazy
    /// views, but the cache's byte accounting must stay exact and the
    /// relation's own footprint estimate must stay monotone (mutation only
    /// grows dictionaries; no lazy views were built to shrink).
    #[test]
    fn delta_ledger_holds_for_mutated_columnar_relations() {
        use common::arbitrary_relation;
        use deptree::relation::Value;
        for (mut rng, case) in cases(23) {
            let mut r = arbitrary_relation(&mut rng);
            if r.n_rows() == 0 {
                continue;
            }
            let before = r.approx_bytes();
            for _ in 0..6 {
                let row = rng.random_range(0..r.n_rows());
                let attr = AttrId(rng.random_range(0..r.n_attrs()));
                let v = match rng.random_range(0..3u8) {
                    0 => Value::Null,
                    1 => Value::int(rng.random_range(-3..3i64)),
                    _ => Value::str(format!("m{}", rng.random_range(0..3u8))),
                };
                r.set_value(row, attr, v);
            }
            r.debug_validate();
            assert!(
                r.approx_bytes() >= before,
                "case {case}: mutation shrank the footprint estimate"
            );
            let cache = PartitionCache::new();
            let mut ledger: i64 = 0;
            for step in 0..40 {
                let set = random_set(&mut rng, &r);
                if rng.random_range(0..4u8) == 0 {
                    ledger -= cache.remove(set) as i64;
                } else {
                    let (p, d) = cache.get_or_compute(&r, set);
                    assert_eq!(
                        *p,
                        StrippedPartition::from_attrs(&r, set),
                        "case {case} step {step}: cached partition differs from fresh"
                    );
                    ledger += d.inserted_bytes as i64;
                    ledger -= d.evicted_bytes as i64;
                }
                assert!(ledger >= 0, "case {case} step {step}: negative ledger");
                assert_eq!(
                    ledger as u64,
                    cache.mem_estimate(),
                    "case {case} step {step}: ledger drifted from mem_estimate"
                );
            }
            ledger -= cache.clear() as i64;
            assert_eq!(ledger, 0, "case {case}: clear() released a different total");
        }
    }

    /// A capacity-starved cache (constant eviction churn) returns the same
    /// partition as an unbounded one and as a fresh computation, across a
    /// long random access sequence.
    #[test]
    fn eviction_never_changes_results() {
        for (mut rng, case) in cases(22) {
            let r = small_relation(&mut rng);
            // Tiny capacity: essentially every multi-attribute insert
            // triggers eviction; singletons stay pinned.
            let tight = PartitionCache::with_capacity_bytes(rng.random_range(1..256u64));
            let roomy = PartitionCache::new();
            for _ in 0..30 {
                let set = random_set(&mut rng, &r);
                let (a, _) = tight.get_or_compute(&r, set);
                let (b, _) = roomy.get_or_compute(&r, set);
                assert_eq!(*a, *b, "case {case}: eviction changed {set:?}");
                assert_eq!(
                    *a,
                    StrippedPartition::from_attrs(&r, set),
                    "case {case}: cached result differs from fresh for {set:?}"
                );
            }
        }
    }
}

/// Observability is observation-only: attaching a tracer (which also
/// exercises the global metrics registry on every code path) must change
/// no output byte, at any thread count.
mod observability_invariance {
    use super::*;
    use deptree::core::engine::obs::Tracer;
    use deptree::core::engine::Exec;
    use deptree::discovery::tane::{self, TaneConfig};
    use deptree::serve::tasks::{self, ProfileOpts};
    use std::sync::Arc;

    /// TANE's full rendered FD list is identical across
    /// {1, 8} threads × {untraced, traced} — four runs, one answer.
    #[test]
    fn tracing_changes_no_discovery_output() {
        for (mut rng, case) in cases(40).take(24) {
            let r = small_relation(&mut rng);
            let cfg = TaneConfig {
                max_lhs: r.n_attrs(),
                max_error: 0.0,
            };
            let mut renders: Vec<Vec<String>> = Vec::new();
            for threads in [1usize, 8] {
                for traced in [false, true] {
                    let mut exec = Exec::unbounded().with_threads(threads);
                    let tracer = traced.then(|| Arc::new(Tracer::new()));
                    if let Some(t) = &tracer {
                        exec = exec.with_tracer(Arc::clone(t));
                    }
                    let started = std::time::Instant::now();
                    let out = tane::discover_bounded(&r, &cfg, &exec);
                    let wall_us = started.elapsed().as_micros() as u64;
                    renders.push(out.result.fds.iter().map(|f| f.to_string()).collect());
                    if let Some(t) = tracer {
                        let spans = t.spans();
                        assert!(
                            !spans.is_empty(),
                            "case {case}: traced run recorded nothing"
                        );
                        // Every span fits inside the run's wall time, and
                        // the top-level phases together do too (products
                        // are nested inside their level, so they are
                        // excluded from the sum).
                        let mut phase_sum = 0u64;
                        for s in &spans {
                            assert!(
                                s.dur_us <= wall_us + 1_000,
                                "case {case}: span {} ({}us) exceeds wall time {}us",
                                s.name,
                                s.dur_us,
                                wall_us
                            );
                            if s.name == "tane.base_partitions" || s.name == "tane.level" {
                                phase_sum += s.dur_us;
                            }
                        }
                        assert!(
                            phase_sum <= wall_us + 1_000,
                            "case {case}: phase durations ({phase_sum}us) exceed wall time ({wall_us}us)"
                        );
                    }
                }
            }
            assert!(
                renders.windows(2).all(|w| w[0] == w[1]),
                "case {case}: output differs across thread counts / tracing"
            );
        }
    }

    /// The end-to-end profile report (the bytes the CLI prints and the
    /// server returns) is byte-identical with and without a tracer.
    #[test]
    fn tracing_changes_no_profile_report_bytes() {
        for (mut rng, case) in cases(41).take(8) {
            let r = small_relation(&mut rng);
            let opts = ProfileOpts {
                max_lhs: 2,
                error: 0.0,
            };
            let mut texts = Vec::new();
            for threads in [1usize, 8] {
                for traced in [false, true] {
                    let mut exec = Exec::unbounded().with_threads(threads);
                    if traced {
                        exec = exec.with_tracer(Arc::new(Tracer::new()));
                    }
                    texts.push(tasks::profile(&r, &opts, &exec).text);
                }
            }
            assert!(
                texts.windows(2).all(|w| w[0] == w[1]),
                "case {case}: profile report differs across thread counts / tracing"
            );
        }
    }
}

/// Candidate-generation invariants for the blocking/similarity indexes:
/// over random (including adversarial mixed-type) relations and random
/// indexable predicates, the candidate set must contain every truly
/// matching pair, stay inside the i<j pair universe without duplicates,
/// be exactly the matching set when the index claims exactness, and agree
/// with its own counting and block-decomposed forms.
mod pairgen_properties {
    use super::*;
    use common::arbitrary_relation;
    use deptree::core::pairs::{self, MetricAtom};
    use deptree::metrics::Metric;
    use deptree::relation::ValueType;
    use std::collections::BTreeSet;

    /// 1–2 atoms on distinct attrs with the type's default metric and a
    /// threshold drawn from a spread that hits the degenerate points:
    /// 0 (pure equality), small bands/edit radii, and — on categorical
    /// attrs — threshold 1, which maps to the conservative full-scan
    /// fallback (`PairSpec::All`).
    fn random_atoms(rng: &mut Rng, r: &Relation) -> Vec<MetricAtom> {
        let n_atoms = rng.random_range(1..=r.n_attrs().min(2));
        let mut ids: Vec<AttrId> = r.schema().ids().collect();
        for k in 0..n_atoms {
            let pick = rng.random_range(k..ids.len());
            ids.swap(k, pick);
        }
        ids.truncate(n_atoms);
        ids.iter()
            .map(|&a| {
                let t = match r.schema().ty(a) {
                    ValueType::Numeric => [0.0, 0.5, 1.0, 3.0, 10.0][rng.random_range(0..5usize)],
                    ValueType::Text => [0.0, 1.0, 2.0, 4.0][rng.random_range(0..4usize)],
                    _ => [0.0, 1.0][rng.random_range(0..2usize)],
                };
                (a, Metric::default_for(r.schema().ty(a)), t)
            })
            .collect()
    }

    #[test]
    fn candidate_set_complete_and_sane() {
        for (mut rng, case) in cases(31) {
            let r = arbitrary_relation(&mut rng);
            let n = r.n_rows();
            let atoms = random_atoms(&mut rng, &r);
            let md = Md::new(r.schema(), atoms.clone(), AttrSet::single(AttrId(0)));
            let mut truth = BTreeSet::new();
            for i in 0..n {
                for j in i + 1..n {
                    if md.lhs_similar(&r, i, j) {
                        truth.insert((i, j));
                    }
                }
            }
            let idx = pairs::best_index(&r, &atoms);
            let mut cands = Vec::new();
            assert!(
                idx.for_each_candidate(|i, j| {
                    cands.push((i, j));
                    true
                }),
                "case {case}: uninterrupted enumeration must report completion"
            );
            let cand_set: BTreeSet<(usize, usize)> = cands.iter().copied().collect();
            assert_eq!(
                cand_set.len(),
                cands.len(),
                "case {case}: duplicate candidates"
            );
            assert!(
                cands.iter().all(|&(i, j)| i < j && j < n),
                "case {case}: candidate outside the i<j pair universe"
            );
            assert_eq!(
                idx.n_candidates(),
                cands.len() as u64,
                "case {case}: n_candidates disagrees with enumeration"
            );
            assert!(
                truth.iter().all(|p| cand_set.contains(p)),
                "case {case}: candidate set missed a matching pair (incomplete blocking)"
            );
            // Exactness is per-atom: it promises candidates equal the match
            // set only when the whole conjunction is that one atom.
            if idx.is_exact() && atoms.len() == 1 {
                assert_eq!(
                    cand_set, truth,
                    "case {case}: exact index must equal the matching set"
                );
            }
            // The fixed block decomposition enumerates the same sequence.
            let mut by_block = Vec::new();
            for b in 0..idx.n_blocks() {
                let before = by_block.len() as u64;
                idx.for_each_in_block(b, &mut |i, j| {
                    by_block.push((i, j));
                    true
                });
                assert_eq!(
                    by_block.len() as u64 - before,
                    idx.block_pairs(b),
                    "case {case}: block {b} size mismatch"
                );
            }
            assert_eq!(
                by_block, cands,
                "case {case}: block order differs from serial order"
            );
            // The closed-form count, when claimed, is the true match count.
            if let Some(c) = pairs::count_matching(&r, &atoms) {
                assert_eq!(
                    c,
                    truth.len() as u64,
                    "case {case}: closed-form count wrong"
                );
            }
            // Early stop is honored and reported.
            if !cands.is_empty() {
                let mut seen = 0usize;
                let done = idx.for_each_candidate(|_, _| {
                    seen += 1;
                    false
                });
                assert!(!done && seen == 1, "case {case}: early stop not honored");
            }
        }
    }
}

/// Columnar-substrate invariants: the dictionary-encoded storage must be a
/// lossless, canonical, order-faithful re-representation of the rows it
/// was built from — the laws the row↔columnar differential harness
/// (`columnar_equivalence`) leans on without restating them per notation.
mod columnar {
    use super::*;
    use common::{arbitrary_relation, mixed_relation};
    use deptree::relation::{parse_csv_lossy, to_csv, Column, RelationBuilder, Value, ValueType};
    use std::collections::BTreeSet;

    /// Reading every row back out and rebuilding a relation from those rows
    /// reproduces the original exactly — dictionaries, null bitmaps and all
    /// lazy views rebuilt from scratch. Includes NaN / ±inf / −0.0 floats
    /// and nulls, which a lossy representation would conflate.
    #[test]
    fn row_columnar_round_trip_lossless() {
        for (mut rng, case) in cases(50) {
            let r = arbitrary_relation(&mut rng);
            let rows: Vec<Vec<Value>> = (0..r.n_rows()).map(|i| r.row(i)).collect();
            let rebuilt =
                Relation::from_rows(r.schema().clone(), rows).expect("round trip rebuild");
            assert_eq!(r, rebuilt, "case {case}: round trip changed the relation");
            rebuilt.debug_validate();
            for a in r.schema().ids() {
                let col = r.col(a);
                for i in 0..r.n_rows() {
                    assert_eq!(r.value(i, a), col.value(i), "case {case}: accessor drift");
                    assert_eq!(
                        col.is_null(i),
                        col.value(i).is_null(),
                        "case {case}: null bitmap disagrees with cell"
                    );
                }
            }
        }
        // Non-finite and signed-zero floats survive bit-exactly.
        let weird = RelationBuilder::new()
            .attr("f", ValueType::Numeric)
            .attr("g", ValueType::Numeric)
            .row(vec![Value::float(f64::NAN), Value::float(0.0)])
            .row(vec![Value::float(f64::INFINITY), Value::float(-0.0)])
            .row(vec![Value::Null, Value::float(f64::NEG_INFINITY)])
            .build()
            .expect("consistent arity");
        let rows: Vec<Vec<Value>> = (0..weird.n_rows()).map(|i| weird.row(i)).collect();
        let back = Relation::from_rows(weird.schema().clone(), rows).expect("rebuild");
        assert_eq!(weird, back, "non-finite floats must round-trip bit-exactly");
        assert_eq!(back.value(0, AttrId(0)), &Value::float(f64::NAN));
        assert_ne!(
            back.col(AttrId(1)).code(0),
            back.col(AttrId(1)).code(1),
            "0.0 and -0.0 are distinct dictionary entries"
        );
        back.debug_validate();
    }

    /// CSV round trip through the interning lossy parser: `to_csv` output
    /// parses back to the identical relation, and CRLF line endings are
    /// salvaged without leaking a stray `\r` into any cell.
    #[test]
    fn csv_round_trip_and_crlf_salvage() {
        for (mut rng, case) in cases(51) {
            let r = mixed_relation(&mut rng);
            let csv = to_csv(&r);
            let types: Vec<ValueType> = r.schema().ids().map(|a| r.schema().ty(a)).collect();
            let lossy = parse_csv_lossy(&csv, &types).expect("round trip parse");
            assert_eq!(lossy.relation, r, "case {case}: CSV round trip drifted");
            lossy.relation.debug_validate();
            let crlf = csv.replace('\n', "\r\n");
            let salvaged = parse_csv_lossy(&crlf, &types).expect("CRLF parse");
            assert_eq!(
                salvaged.relation, r,
                "case {case}: CRLF endings changed cell values"
            );
            salvaged.relation.debug_validate();
        }
    }

    /// Dictionary codes of a freshly built column are *dense* (every code
    /// addresses the dictionary and every dictionary entry is referenced by
    /// at least one row — no orphans before mutation) and *stable*:
    /// re-encoding the same cells in the same order reproduces codes and
    /// dictionary exactly, which is what makes code-vector comparison a
    /// valid equality fast path.
    #[test]
    fn dict_codes_dense_and_stable_under_reencode() {
        for (mut rng, case) in cases(52) {
            let r = arbitrary_relation(&mut rng);
            for a in r.schema().ids() {
                let col = r.col(a);
                let used: BTreeSet<u32> = col.codes().iter().copied().collect();
                assert!(
                    col.codes().iter().all(|&c| (c as usize) < col.dict().len()),
                    "case {case}: dangling code"
                );
                assert_eq!(
                    used.len(),
                    col.dict().len(),
                    "case {case}: fresh column has orphaned dictionary entries"
                );
                let mut fresh = Column::new();
                for i in 0..col.len() {
                    fresh.push(col.value(i).clone());
                }
                assert_eq!(
                    fresh.codes(),
                    col.codes(),
                    "case {case}: re-encode produced different codes"
                );
                assert_eq!(
                    fresh.dict(),
                    col.dict(),
                    "case {case}: re-encode produced a different dictionary"
                );
                fresh.debug_validate();
            }
        }
    }

    /// When cells arrive in sorted order, first-appearance interning makes
    /// the code sequence non-decreasing and every code equal to its own
    /// structural rank — sorted input degenerates the dictionary into an
    /// order-preserving encoding.
    #[test]
    fn codes_order_preserving_for_sorted_input() {
        for (mut rng, case) in cases(53) {
            let r = arbitrary_relation(&mut rng);
            for a in r.schema().ids() {
                let mut vals: Vec<Value> =
                    (0..r.n_rows()).map(|i| r.col(a).value(i).clone()).collect();
                vals.sort();
                let mut c = Column::new();
                for v in vals {
                    c.push(v);
                }
                assert!(
                    c.codes().windows(2).all(|w| w[0] <= w[1]),
                    "case {case}: sorted input produced non-monotone codes"
                );
                let ix = c.index();
                assert!(
                    (0..c.dict().len() as u32).all(|code| ix.rank(code) == code),
                    "case {case}: code ≠ rank on sorted input"
                );
            }
        }
    }

    /// The lazily built sorted-run index is exactly a naive argsort:
    /// structural ranks enumerate the dictionary in `Value`-order, numeric
    /// ranks are order-isomorphic to `numeric_cmp` with ties collapsed, and
    /// sorting rows by rank reproduces a stable argsort by value — over
    /// adversarial columns including NaN, ±inf, signed zeros and Int/Float
    /// numeric ties.
    #[test]
    fn sorted_run_index_matches_naive_argsort() {
        for (mut rng, case) in cases(54) {
            let r = arbitrary_relation(&mut rng);
            for a in r.schema().ids() {
                check_index_against_argsort(r.col(a), case);
            }
        }
        let mut c = Column::new();
        for v in [
            Value::float(f64::NAN),
            Value::float(f64::NEG_INFINITY),
            Value::int(3),
            Value::float(3.0),
            Value::Null,
            Value::float(f64::INFINITY),
            Value::float(-0.0),
            Value::float(0.0),
            Value::str(""),
            Value::int(3),
        ] {
            c.push(v);
        }
        check_index_against_argsort(&c, u64::MAX);
    }

    fn check_index_against_argsort(c: &Column, case: u64) {
        let ix = c.index();
        let d = c.dict();
        let mut order: Vec<u32> = (0..d.len() as u32).collect();
        order.sort_by(|&x, &y| d[x as usize].cmp(&d[y as usize]));
        for (pos, &code) in order.iter().enumerate() {
            assert_eq!(
                ix.rank(code),
                pos as u32,
                "case {case}: structural rank differs from argsort position"
            );
        }
        for &x in &order {
            for &y in &order {
                assert_eq!(
                    ix.num_rank(x).cmp(&ix.num_rank(y)),
                    d[x as usize].numeric_cmp(&d[y as usize]),
                    "case {case}: num_rank not order-isomorphic to numeric_cmp"
                );
            }
        }
        let mut by_rank: Vec<usize> = (0..c.len()).collect();
        by_rank.sort_by_key(|&i| (ix.rank(c.code(i)), i));
        let mut by_value: Vec<usize> = (0..c.len()).collect();
        by_value.sort_by(|&i, &j| c.value(i).cmp(c.value(j)).then(i.cmp(&j)));
        assert_eq!(
            by_rank, by_value,
            "case {case}: rank argsort differs from value argsort"
        );
    }
}

mod kernels {
    use super::*;
    use common::arbitrary_relation;
    use deptree::relation::pairgen::{band_pairs_sorted, PairIndex, PairSpec};
    use deptree::relation::{PackedCodes, PartitionCache, ProductScratch, PACKED_CODES_MAX_DICT};

    /// The counting-sort (radix) partition product agrees with the
    /// hash-probe product and with a from-scratch computation on every
    /// attribute pair — including null classes and mixed-type columns from
    /// the adversarial generator. The cache's strategy counters confirm
    /// the radix path was actually exercised, not silently skipped.
    #[test]
    fn radix_product_equals_hash_product() {
        let mut radix_taken = 0u64;
        for (mut rng, case) in cases(60) {
            let r = if case % 2 == 0 {
                small_relation(&mut rng)
            } else {
                arbitrary_relation(&mut rng)
            };
            let mut scratch = ProductScratch::new();
            for a in r.schema().ids() {
                let left = StrippedPartition::from_column(&r, a);
                for b in r.schema().ids() {
                    if a == b {
                        continue;
                    }
                    let right = StrippedPartition::from_column(&r, b);
                    let hash = left.product_with(&right, &mut scratch);
                    if let Some(radix) = left.product_with_column(r.col(b), &mut scratch) {
                        assert_eq!(
                            radix, hash,
                            "case {case}: radix product differs on ({a:?}, {b:?})"
                        );
                        radix_taken += 1;
                    }
                    let set = AttrSet::single(a).insert(b);
                    assert_eq!(
                        StrippedPartition::from_attrs(&r, set),
                        hash,
                        "case {case}: from_attrs differs on ({a:?}, {b:?})"
                    );
                }
            }
        }
        assert!(radix_taken > 0, "radix path never engaged on tiny domains");
    }

    /// Under a byte budget tight enough to force evictions, the memoized
    /// cache (radix product strategy inside) still returns partitions equal
    /// to from-scratch computations, single-attribute partitions stay
    /// pinned through eviction pressure, and the strategy counters account
    /// for every multi-attribute product exactly once.
    #[test]
    fn budgeted_cache_products_equal_fresh_and_pin_singles() {
        for (mut rng, case) in cases(61) {
            let r = small_relation(&mut rng);
            let cache = PartitionCache::with_capacity_bytes(2048);
            for a in r.schema().ids() {
                cache.get_or_compute(&r, AttrSet::single(a));
            }
            let mut multi_misses = 0u64;
            for _ in 0..20 {
                let set = AttrSet::from_bits(rng.random_range(0..(1u64 << r.n_attrs())));
                let misses_before = cache.misses();
                let (got, _) = cache.get_or_compute(&r, set);
                if set.iter().count() >= 2 {
                    multi_misses += cache.misses() - misses_before;
                }
                assert_eq!(
                    *got,
                    StrippedPartition::from_attrs(&r, set),
                    "case {case}: cached product differs from fresh for {set:?}"
                );
            }
            for a in r.schema().ids() {
                assert!(
                    cache.get(AttrSet::single(a)).is_some(),
                    "case {case}: pinned single {a:?} was evicted"
                );
            }
            assert_eq!(
                cache.radix_products() + cache.hash_products(),
                multi_misses,
                "case {case}: strategy counters drifted from multi-attr misses"
            );
        }
    }

    /// Bit-packed code vectors round-trip at every lane width, across the
    /// dictionary-size boundaries where the width changes (255/256/257,
    /// 65535/65536/65537), and degrade to `None` — never a wrong value —
    /// beyond the 16-bit ceiling.
    #[test]
    fn packed_codes_round_trip_all_widths_and_boundaries() {
        let boundary_dicts = [
            1usize, 2, 3, 4, 5, 15, 16, 17, 255, 256, 257, 65535, 65536, 65537,
        ];
        for &d in &boundary_dicts {
            let n = d + 37;
            let codes: Vec<u32> = (0..n).map(|i| (i % d) as u32).collect();
            let packed = PackedCodes::build(&codes, d);
            if d > PACKED_CODES_MAX_DICT {
                assert!(packed.is_none(), "dict {d}: packing beyond 16-bit ceiling");
                continue;
            }
            let packed = packed.unwrap_or_else(|| panic!("dict {d}: packing refused"));
            let expected_width = [1u32, 2, 4, 8, 16]
                .into_iter()
                .find(|w| (d as u64 - 1) < (1u64 << w))
                .unwrap_or_else(|| panic!("dict {d}: no lane width"));
            assert_eq!(packed.width_bits(), expected_width, "dict {d}: wrong lane");
            assert_eq!(packed.len(), n, "dict {d}: length drift");
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(packed.get(i), c, "dict {d}: row {i} corrupted");
            }
        }
        // Through a live column: the lazy view must agree with the plain
        // code vector on arbitrary relations (nulls, mutation orphans).
        for (mut rng, case) in cases(62) {
            let r = arbitrary_relation(&mut rng);
            for a in r.schema().ids() {
                let col = r.col(a);
                let Some(p) = col.packed_codes() else {
                    continue;
                };
                assert_eq!(p.len(), col.len(), "case {case}: packed length");
                for (i, &c) in col.codes().iter().enumerate() {
                    assert_eq!(p.get(i), c, "case {case}: packed code drift at {i}");
                }
            }
        }
    }

    /// The distinct-value q-gram edit index generates exactly the candidate
    /// set of the per-row reference builder: same classes, same links, same
    /// enumeration order — the columnar build only deduplicates *work*,
    /// never candidates.
    #[test]
    fn distinct_gram_index_equals_per_row_reference() {
        for (mut rng, case) in cases(63) {
            let r = arbitrary_relation(&mut rng);
            for a in r.schema().ids() {
                for k in [0usize, 1, 2] {
                    let fast = PairIndex::build_attr(&r, a, PairSpec::Edit(k));
                    let reference = PairIndex::build(r.column(a), PairSpec::Edit(k));
                    assert_eq!(
                        fast.classes(),
                        reference.classes(),
                        "case {case}: classes differ for {a:?} k={k}"
                    );
                    assert_eq!(
                        fast.links(),
                        reference.links(),
                        "case {case}: links differ for {a:?} k={k}"
                    );
                    assert_eq!(fast.n_candidates(), reference.n_candidates(), "case {case}");
                    let mut got = Vec::new();
                    fast.for_each_candidate(|i, j| {
                        got.push((i, j));
                        true
                    });
                    let mut want = Vec::new();
                    reference.for_each_candidate(|i, j| {
                        want.push((i, j));
                        true
                    });
                    assert_eq!(got, want, "case {case}: candidate enumeration diverged");
                }
            }
        }
    }

    /// The vectorized band kernel counts exactly the pairs the scalar
    /// definition admits, on random sorted inputs of every size class the
    /// kernel branches on (sub-lane tails, windows past the scalar-fallback
    /// threshold) and on degenerate thresholds.
    #[test]
    fn band_kernel_equals_naive_pair_count() {
        for (mut rng, case) in cases(64) {
            let n = rng.random_range(0..200usize);
            let mut nums: Vec<f64> = (0..n)
                .map(|_| rng.random_range(-400..400i64) as f64 / 8.0)
                .collect();
            nums.sort_by(f64::total_cmp);
            for theta in [0.0, 0.125, 1.0, 7.5, 100.0, -1.0] {
                let mut naive = 0u64;
                for h in 0..n {
                    for j in 0..h {
                        // All inputs are finite, so `≤` is exactly the
                        // negation of the kernel's `>` exclusion test.
                        if nums[h] - nums[j] <= theta {
                            naive += 1;
                        }
                    }
                }
                if theta < 0.0 {
                    naive = 0; // kernel contract: negative θ admits nothing
                }
                assert_eq!(
                    band_pairs_sorted(&nums, theta),
                    naive,
                    "case {case}: band count drifted at n={n} theta={theta}"
                );
            }
            assert_eq!(band_pairs_sorted(&nums, f64::NAN), 0, "case {case}: NaN θ");
        }
    }
}
