//! Property-based invariants over randomly generated relations: measure
//! bounds, family-tree embedding laws, discovery soundness, partition
//! algebra — the "does the theory hold off the happy path" suite.

use deptree::core::*;
use deptree::relation::{AttrId, AttrSet, Relation, RelationBuilder, StrippedPartition, Value, ValueType};
use proptest::prelude::*;

/// Strategy: small random categorical relations (2–4 attrs, 0–14 rows,
/// tiny domains so collisions — and therefore dependencies — happen).
fn small_relation() -> impl Strategy<Value = Relation> {
    (2usize..=4, 0usize..=14).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u8..4, n_attrs),
            n_rows..=n_rows,
        )
        .prop_map(move |rows| {
            let mut b = RelationBuilder::new();
            for a in 0..n_attrs {
                b = b.attr(format!("a{a}"), ValueType::Categorical);
            }
            for row in rows {
                b = b.row(row.into_iter().map(|v| Value::str(format!("v{v}"))).collect());
            }
            b.build().expect("consistent arity")
        })
    })
}

/// Strategy: a random single-attr→single-attr FD for a relation with
/// `n_attrs` attributes.
fn fd_for(r: &Relation, lhs: usize, rhs: usize) -> Fd {
    let n = r.n_attrs();
    Fd::new(
        r.schema(),
        AttrSet::single(AttrId(lhs % n)),
        AttrSet::single(AttrId(rhs % n)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn measures_are_bounded(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        let fd = fd_for(&r, l, h);
        let g3 = fd.g3(&r);
        prop_assert!((0.0..=1.0).contains(&g3));
        let sfd = Sfd::from_fd(fd.clone());
        let s = sfd.strength(&r);
        prop_assert!(s > 0.0 && s <= 1.0);
        let pfd = Pfd::from_fd(fd.clone());
        let p = pfd.probability(&r);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// The statistical embeddings are exact at their degenerate points:
    /// FD ⇔ SFD(1) ⇔ PFD(1) ⇔ AFD(0) ⇔ NUD(1) ⇔ CFD(no constants).
    #[test]
    fn fd_embeddings_agree(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        let fd = fd_for(&r, l, h);
        let expected = fd.holds(&r);
        prop_assert_eq!(Sfd::from_fd(fd.clone()).holds(&r), expected);
        prop_assert_eq!(Pfd::from_fd(fd.clone()).holds(&r), expected);
        prop_assert_eq!(Afd::from_fd(fd.clone()).holds(&r), expected);
        prop_assert_eq!(Nud::from_fd(r.schema(), &fd).holds(&r), expected);
        prop_assert_eq!(Cfd::from_fd(r.schema(), &fd).holds(&r), expected);
        prop_assert_eq!(Mfd::from_fd(r.schema(), &fd).holds(&r), expected);
        prop_assert_eq!(Md::from_fd(r.schema(), &fd).holds(&r), expected);
        prop_assert_eq!(Ffd::from_fd(r.schema(), &fd).holds(&r), expected);
        // FD ⇒ MVD (one-directional).
        if expected {
            prop_assert!(Mvd::from_fd(r.schema(), &fd).holds(&r));
        }
    }

    /// `holds ⇔ violations().is_empty()` for the exact notations.
    #[test]
    fn holds_iff_no_violations(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        let fd = fd_for(&r, l, h);
        prop_assert_eq!(fd.holds(&r), fd.violations(&r).is_empty());
        let mvd = Mvd::from_fd(r.schema(), &fd);
        prop_assert_eq!(mvd.holds(&r), mvd.violations(&r).is_empty());
        let md = Md::from_fd(r.schema(), &fd);
        prop_assert_eq!(md.holds(&r), md.violations(&r).is_empty());
    }

    /// Partition algebra: product is commutative, idempotent, matches
    /// direct grouping, and num_classes is monotone under refinement.
    #[test]
    fn partition_laws(r in small_relation()) {
        prop_assume!(r.n_attrs() >= 2);
        let a = AttrId(0);
        let b = AttrId(1);
        let pa = StrippedPartition::from_column(&r, a);
        let pb = StrippedPartition::from_column(&r, b);
        let prod = pa.product(&pb);
        prop_assert_eq!(&prod, &pb.product(&pa));
        prop_assert_eq!(&prod, &StrippedPartition::from_attrs(&r, AttrSet::from_ids([a, b])));
        prop_assert_eq!(&pa.product(&pa), &pa);
        prop_assert!(prod.num_classes() >= pa.num_classes());
        prop_assert!(prod.error() <= pa.error());
    }

    /// TANE and FastFD return identical minimal covers on random data.
    #[test]
    fn tane_equals_fastfd(r in small_relation()) {
        use deptree::discovery::{fastfd, tane};
        let t = tane::discover(&r, &tane::TaneConfig { max_lhs: r.n_attrs(), max_error: 0.0 });
        let f = fastfd::discover(&r);
        let ts: std::collections::BTreeSet<String> =
            t.fds.iter().map(|fd| fd.to_string()).collect();
        let fs: std::collections::BTreeSet<String> =
            f.fds.iter().map(|fd| fd.to_string()).collect();
        prop_assert_eq!(ts, fs);
    }

    /// Discovery soundness: everything TANE returns holds; everything it
    /// returns is minimal.
    #[test]
    fn tane_sound_and_minimal(r in small_relation()) {
        use deptree::discovery::tane;
        let t = tane::discover(&r, &tane::TaneConfig { max_lhs: r.n_attrs(), max_error: 0.0 });
        for fd in &t.fds {
            prop_assert!(fd.holds(&r), "{} does not hold", fd);
            for a in fd.lhs().iter() {
                let smaller = Fd::new(r.schema(), fd.lhs().remove(a), fd.rhs());
                prop_assert!(!smaller.holds(&r), "{} not minimal", fd);
            }
        }
    }

    /// FD repair converges and reaches consistency.
    #[test]
    fn fd_repair_reaches_fixpoint(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        use deptree::quality::repair;
        let fd = fd_for(&r, l, h);
        prop_assume!(!fd.is_trivial());
        let result = repair::repair_fds(&r, std::slice::from_ref(&fd), 20);
        prop_assert!(fd.holds(&result.relation));
    }

    /// Deletion repair always reaches consistency and never deletes more
    /// rows than the relation has.
    #[test]
    fn deletion_repair_terminates(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        use deptree::quality::repair;
        let fd = fd_for(&r, l, h);
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd)];
        let result = repair::deletion_repair(&r, &rules);
        prop_assert!(rules[0].holds(&result.relation));
        prop_assert!(result.deleted.len() <= r.n_rows());
    }

    /// The g3 interpretation: g3·n is the *minimum* number of deletions,
    /// so any repair that reaches consistency deletes at least that many
    /// rows. (The max-degree greedy has no constant approximation
    /// guarantee — subgroup sizes like {3,1} make it delete from the
    /// majority side — so only the lower bound is asserted.)
    #[test]
    fn g3_lower_bounds_deletion_repair(r in small_relation(), l in 0usize..4, h in 0usize..4) {
        use deptree::quality::repair;
        let fd = fd_for(&r, l, h);
        prop_assume!(r.n_rows() > 0);
        let optimal = (fd.g3(&r) * r.n_rows() as f64).round() as usize;
        let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd)];
        let result = repair::deletion_repair(&r, &rules);
        prop_assert!(result.deleted.len() >= optimal);
        prop_assert!(result.deleted.len() <= r.n_rows());
    }
}

/// Order-notation properties over random numeric relations.
mod numeric {
    use super::*;

    fn numeric_relation() -> impl Strategy<Value = Relation> {
        (2usize..=3, 2usize..=12).prop_flat_map(|(n_attrs, n_rows)| {
            proptest::collection::vec(
                proptest::collection::vec(-20i64..20, n_attrs),
                n_rows..=n_rows,
            )
            .prop_map(move |rows| {
                let mut b = RelationBuilder::new();
                for a in 0..n_attrs {
                    b = b.attr(format!("n{a}"), ValueType::Numeric);
                }
                for row in rows {
                    b = b.row(row.into_iter().map(Value::int).collect());
                }
                b.build().expect("consistent arity")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// OD ⇔ the conjunction of its Dc::from_od images.
        #[test]
        fn od_dc_equivalence(r in numeric_relation(), d1 in 0usize..2, d2 in 0usize..2) {
            let s = r.schema();
            let dir = |i| if i == 0 { Direction::Asc } else { Direction::Desc };
            let od = Od::new(
                s,
                vec![(AttrId(0), dir(d1))],
                vec![(AttrId(1), dir(d2))],
            );
            let dcs = Dc::from_od(s, &od);
            prop_assert_eq!(od.holds(&r), dcs.iter().all(|d| d.holds(&r)));
        }

        /// OD ⇒ SD under the from_od embedding.
        #[test]
        fn od_implies_sd(r in numeric_relation(), d2 in 0usize..2) {
            let s = r.schema();
            let dir = if d2 == 0 { Direction::Asc } else { Direction::Desc };
            let od = Od::new(s, vec![(AttrId(0), Direction::Asc)], vec![(AttrId(1), dir)]);
            if let Some(sd) = Sd::from_od(s, &od) {
                if od.holds(&r) {
                    prop_assert!(sd.holds(&r));
                }
            }
        }

        /// The single-attribute OD validator agrees with pairwise holds.
        #[test]
        fn od_validator_correct(r in numeric_relation(), d2 in 0usize..2) {
            use deptree::discovery::od::validate_single;
            let s = r.schema();
            let dir = if d2 == 0 { Direction::Asc } else { Direction::Desc };
            let od = Od::new(s, vec![(AttrId(0), Direction::Asc)], vec![(AttrId(1), dir)]);
            prop_assert_eq!(
                validate_single(&r, AttrId(0), Direction::Asc, AttrId(1), dir),
                od.holds(&r)
            );
        }

        /// Sequence repair under an SD always reaches consistency.
        #[test]
        fn sequence_repair_total(r in numeric_relation(), lo in -5i64..0, width in 0i64..8) {
            use deptree::quality::repair;
            let s = r.schema();
            let sd = Sd::new(
                s,
                AttrId(0),
                AttrId(1),
                Interval::new(lo as f64, (lo + width) as f64),
            );
            let (repaired, _) = repair::repair_sequence(&r, &sd);
            prop_assert!(sd.holds(&repaired));
        }

        /// FASTDC soundness: every discovered DC holds.
        #[test]
        fn fastdc_sound(r in numeric_relation()) {
            use deptree::discovery::dc;
            let result = dc::discover(&r, &dc::DcConfig { max_predicates: 2, approx_epsilon: 0.0 });
            for rule in &result.dcs {
                prop_assert!(rule.holds(&r), "{} fails", rule);
            }
        }
    }
}
