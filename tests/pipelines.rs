//! End-to-end pipelines across crates: generate → discover → detect →
//! repair → verify, for each data-type branch of the survey.

use deptree::core::{Dependency, Fd, Interval, Sd};
use deptree::discovery::{md as md_disc, sd as sd_disc, tane};
use deptree::quality::{dedup, detect, repair};
use deptree::relation::AttrSet;
use deptree::synth::{
    categorical, entities, numerical, CategoricalConfig, EntitiesConfig, SequenceConfig,
};

/// Categorical pipeline: plant FDs + errors, rediscover the rules with
/// approximate TANE, detect, repair, and confirm the exact rules hold.
#[test]
fn categorical_discover_detect_repair() {
    let cfg = CategoricalConfig {
        n_rows: 600,
        n_key_attrs: 2,
        n_dep_attrs: 2,
        domain: 25,
        error_rate: 0.02,
        seed: 1001,
    };
    let data = categorical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;

    // 1. Discover approximate FDs tolerant to the injected noise.
    let found = tane::discover(
        r,
        &tane::TaneConfig {
            max_lhs: 2,
            max_error: 0.05,
        },
    );
    // The planted single-attribute rules are among them.
    for &(lhs, rhs) in &data.planted_fds {
        assert!(
            found
                .fds
                .iter()
                .any(|fd| fd.lhs() == AttrSet::single(lhs) && fd.rhs() == AttrSet::single(rhs)),
            "planted FD missing from discovery"
        );
    }

    // 2. Use the planted rules for detection + scoring.
    let rules: Vec<Box<dyn Dependency>> = data
        .planted_fds
        .iter()
        .map(|&(l, rh)| {
            Box::new(Fd::new(r.schema(), AttrSet::single(l), AttrSet::single(rh)))
                as Box<dyn Dependency>
        })
        .collect();
    let report = detect::run(r, &rules);
    let score = detect::score_cells(&report, &data.dirty_cells);
    assert!(score.recall > 0.8, "{score:?}");

    // 3. Repair and verify.
    let fds: Vec<Fd> = data
        .planted_fds
        .iter()
        .map(|&(l, rh)| Fd::new(r.schema(), AttrSet::single(l), AttrSet::single(rh)))
        .collect();
    let repaired = repair::repair_fds(r, &fds, 10);
    for fd in &fds {
        assert!(fd.holds(&repaired.relation), "{fd} after repair");
    }
    // Repair touched roughly the dirty cells, not the whole table.
    assert!(repaired.changes.len() < data.dirty_cells.len() * 3);
}

/// Heterogeneous pipeline: generate duplicate entities with variety,
/// discover matching rules, cluster, and score.
#[test]
fn heterogeneous_discover_and_dedup() {
    let cfg = EntitiesConfig {
        n_entities: 80,
        max_duplicates: 3,
        variety: 0.5,
        error_rate: 0.0,
        seed: 1002,
    };
    let data = entities::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;
    let s = r.schema();

    let candidates = md_disc::discover(
        r,
        AttrSet::single(s.id("zip")),
        &md_disc::MdConfig {
            min_support: 0.0001,
            min_confidence: 0.9,
            thresholds_per_attr: 3,
            max_lhs: 1,
        },
    );
    assert!(!candidates.is_empty());

    let truth = data.cluster.clone();
    let keys =
        md_disc::concise_matching_keys(r, &candidates, &move |i, j| truth[i] == truth[j], 0.7);
    let mds: Vec<_> = keys.iter().map(|k| k.md.clone()).collect();
    let clustering = dedup::cluster(r, &mds);
    let (precision, recall) = dedup::pairwise_score(&clustering, &data.cluster);
    assert!(precision > 0.8, "precision {precision}");
    assert!(recall > 0.5, "recall {recall}");
}

/// Numerical pipeline: regime data with spikes → discover the per-regime
/// CSD tableau → repair the stream → the global SD holds on each scope.
#[test]
fn numerical_csd_discover_and_repair() {
    let cfg = SequenceConfig {
        n_rows: 300,
        regimes: vec![(9.0, 11.0)],
        spike_rate: 0.04,
        seed: 1003,
    };
    let data = numerical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;
    let s = r.schema();

    // Suggest a gap band from the data itself.
    let suggested = sd_disc::suggest_gap(r, s.id("seq"), s.id("y"), 0.05, 0.95).unwrap();
    assert!(suggested.lo() >= 9.0 - 1e-9, "{suggested}");
    assert!(suggested.hi() <= 11.0 + 1e-9, "{suggested}");

    // The strict SD fails because of spikes; repair fixes it.
    let sd = Sd::new(s, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0));
    assert!(!sd.holds(r));
    let (repaired, changes) = repair::repair_sequence(r, &sd);
    assert!(sd.holds(&repaired));
    assert!(changes > 0);

    // CSD tableau with confidence slack covers nearly all steps.
    let csd = sd_disc::csd_tableau(r, s.id("seq"), s.id("y"), Interval::new(9.0, 11.0), 0.85);
    let covered = sd_disc::tableau_covered_steps(r, &csd);
    let clean_steps = (r.n_rows() - 1) - data.spike_steps.len();
    assert!(
        covered as f64 >= 0.9 * clean_steps as f64,
        "covered {covered} of {clean_steps} clean steps"
    );
}

/// Deletion repair generalizes across notations: mix FD + SD rules on one
/// relation and reach a consistent subinstance.
#[test]
fn mixed_rule_deletion_repair() {
    let cfg = SequenceConfig {
        n_rows: 80,
        regimes: vec![(9.0, 11.0)],
        spike_rate: 0.05,
        seed: 1004,
    };
    let data = numerical::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let s = data.relation.schema();
    let rules: Vec<Box<dyn Dependency>> = vec![Box::new(Sd::new(
        s,
        s.id("seq"),
        s.id("y"),
        Interval::new(9.0, 11.0),
    ))];
    let result = repair::deletion_repair(&data.relation, &rules);
    for rule in &rules {
        assert!(rule.holds(&result.relation));
    }
    assert!(result.relation.n_rows() + result.deleted.len() == data.relation.n_rows());
    assert!(!result.deleted.is_empty());
}
