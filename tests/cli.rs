//! End-to-end tests of the `deptree` command-line binary against the
//! bundled hotel dataset.

use std::process::Command;

fn deptree(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_deptree"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn profile_reports_fds_and_dcs() {
    let (stdout, _, ok) = deptree(&[
        "profile",
        "data/hotels.csv",
        "--types",
        "t,t,t,n,n",
        "--max-lhs",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("8 rows × 5 columns"), "{stdout}");
    assert!(stdout.contains("exact FDs"));
    assert!(stdout.contains("FD: name -> address"));
    assert!(stdout.contains("soft FDs"));
    assert!(stdout.contains("denial constraints"));
}

#[test]
fn detect_reports_paper_violations() {
    let (stdout, _, ok) = deptree(&[
        "detect",
        "data/hotels.csv",
        "--rule",
        "address -> region",
        "--types",
        "t,t,t,n,n",
    ]);
    assert!(ok);
    assert!(stdout.contains("2 violation witness(es)"), "{stdout}");
    assert!(stdout.contains("g3 = 0.2500"));
    assert!(stdout.contains("rows #3 / #4"));
}

#[test]
fn repair_round_trips_through_csv() {
    let out_path = std::env::temp_dir().join("deptree_cli_repair_test.csv");
    let out_str = out_path.to_str().unwrap();
    let (stdout, _, ok) = deptree(&[
        "repair",
        "data/hotels.csv",
        "--rule",
        "address -> region",
        "--types",
        "t,t,t,n,n",
        "--out",
        out_str,
    ]);
    assert!(ok);
    assert!(stdout.contains("rule now holds: true"), "{stdout}");
    let repaired = std::fs::read_to_string(&out_path).expect("output written");
    // Both West Lake Rd. tuples agree on a region now.
    let boston_count = repaired.matches("Boston").count();
    assert!(boston_count >= 2, "{repaired}");
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn tree_prints_all_roots() {
    let (stdout, _, ok) = deptree(&["tree"]);
    assert!(ok);
    assert!(stdout.contains("FDs (1971"));
    assert!(stdout.contains("OFDs (1999"));
    assert!(stdout.contains("CSDs"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = deptree(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn bad_rule_fails_cleanly() {
    let (_, stderr, ok) = deptree(&[
        "detect",
        "data/hotels.csv",
        "--rule",
        "nonexistent -> region",
    ]);
    assert!(!ok);
    assert!(stderr.contains("cannot parse rule"));
}
