//! Fault-injection suite for `deptree serve`: drives the real server —
//! in-process for the protocol/load/drain scenarios, as a child process
//! for the SIGTERM one — through malformed frames, truncated frames,
//! oversized bodies, slow clients, mid-response disconnects, queue
//! overflow and drain-under-load.
//!
//! The standing assertions across every scenario:
//!
//! - **zero panics** — a worker that panics would poison its admission
//!   slot and show up as a hung `join`; every test ends with a clean
//!   drain + join;
//! - **bounded memory** — oversized headers/bodies are rejected from
//!   their declared sizes, before the bytes are buffered;
//! - **byte identity** — the server's `report` for a request equals the
//!   CLI's stdout for the same task, at thread counts 1 and 8.

use deptree::core::engine::{signal, Exec};
use deptree::relation::examples::hotels_r1;
use deptree::relation::{to_csv, Relation, RelationBuilder, Value, ValueType};
use deptree::serve::protocol::Limits;
use deptree::serve::tasks::{profile, ProfileOpts};
use deptree::serve::{
    forward, spawn, spawn_gateway, ClientConfig, DatasetSpec, ErrorCode, GatewayConfig,
    GatewayHandle, Json, ListenOpts, ServeConfig, ServerHandle,
};
use deptree::synth::Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A relation wide enough that a TANE sweep at max LHS 8 cannot finish
/// inside a tight deadline — the reproducible "slow request".
fn wide_relation(n_attrs: usize, n_rows: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RelationBuilder::new();
    for a in 0..n_attrs {
        b = b.attr(format!("w{a}"), ValueType::Categorical);
    }
    for _ in 0..n_rows {
        b = b.row(
            (0..n_attrs)
                .map(|_| Value::str(format!("v{}", rng.random_range(0..3u8))))
                .collect(),
        );
    }
    b.build().expect("consistent arity")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        datasets: vec![
            ("hotels".to_owned(), hotels_r1()),
            ("wide".to_owned(), wide_relation(14, 120, 7)),
        ],
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        drain_grace: Duration::from_millis(100),
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> ServerHandle {
    spawn(config).expect("server should bind an ephemeral port")
}

fn stop(handle: ServerHandle) {
    handle.drain();
    handle.join();
}

fn client(handle: &ServerHandle) -> ClientConfig {
    ClientConfig {
        addr: handle.addr().to_string(),
        retries: 0,
        io_timeout: Duration::from_secs(30),
        ..ClientConfig::default()
    }
}

/// Send raw bytes on a fresh connection; return the raw response text
/// (may be empty when the server just closes).
fn raw(handle: &ServerHandle, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    s.write_all(bytes).expect("send");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn body_of(response: &str) -> Json {
    let payload = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_else(|| panic!("no body in response: {response:?}"));
    Json::parse(payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"))
}

fn error_code_of(response: &str) -> String {
    body_of(response)
        .get("error")
        .and_then(|e| e.str_field("code"))
        .unwrap_or_else(|| panic!("no error code in {response:?}"))
        .to_owned()
}

fn discover_body(dataset: &str) -> Json {
    Json::obj().set("dataset", dataset).set("max_lhs", 2u64)
}

#[test]
fn malformed_frames_get_structured_errors_and_the_server_survives() {
    let handle = start(test_config());

    // Not HTTP at all.
    let resp = raw(&handle, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
    assert_eq!(error_code_of(&resp), "bad_request");

    // Unsupported transfer encoding.
    let resp = raw(
        &handle,
        b"POST /v1/detect HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

    // Unparseable content length.
    let resp = raw(
        &handle,
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

    // Bad JSON in an otherwise fine frame.
    let resp = raw(
        &handle,
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
    assert_eq!(error_code_of(&resp), "parse");

    // The server still serves after all of that.
    let resp = deptree::serve::query(&client(&handle), "GET", "/healthz", None)
        .expect("healthz after malformed frames");
    assert_eq!(resp.status, 200);
    stop(handle);
}

#[test]
fn truncated_frames_do_not_wedge_workers() {
    let handle = start(test_config());

    // Header cut off mid-line, then the client vanishes.
    {
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        s.write_all(b"POST /v1/dete").expect("send");
    } // dropped: close mid-header

    // Body shorter than its declared Content-Length, then close.
    {
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        s.write_all(b"POST /v1/detect HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"da")
            .expect("send");
    } // dropped: close mid-body

    // Both workers must still be alive and serving.
    for _ in 0..3 {
        let resp = deptree::serve::query(
            &client(&handle),
            "POST",
            "/v1/detect",
            Some(
                &Json::obj()
                    .set("dataset", "hotels")
                    .set("rule", "address -> region"),
            ),
        )
        .expect("detect after truncated frames");
        assert_eq!(resp.status, 200);
        assert!(resp
            .body
            .str_field("report")
            .expect("report")
            .contains("2 violation witness(es)"),);
    }
    stop(handle);
}

#[test]
fn oversized_headers_and_bodies_are_rejected_from_their_declared_size() {
    let config = ServeConfig {
        limits: Limits {
            max_header_bytes: 512,
            max_body_bytes: 1024,
        },
        ..test_config()
    };
    let handle = start(config);

    // Body rejected on Content-Length alone — the server answers 413
    // without reading (or buffering) the payload.
    let resp = raw(
        &handle,
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");
    assert_eq!(error_code_of(&resp), "too_large");

    // Header block over the cap.
    let mut frame = b"POST /v1/detect HTTP/1.1\r\n".to_vec();
    frame.extend_from_slice(format!("X-Padding: {}\r\n\r\n", "y".repeat(2048)).as_bytes());
    let resp = raw(&handle, &frame);
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");

    let ok = deptree::serve::query(&client(&handle), "GET", "/readyz", None)
        .expect("readyz after oversized frames");
    assert_eq!(ok.status, 200);
    stop(handle);
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(100),
        ..test_config()
    };
    let handle = start(config);

    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // Drip half a request and then just wait for the answer: the server's
    // read timeout fires on its own, so no fixed client-side sleep is
    // needed — `read_to_string` blocks until the 408 + close arrive.
    s.write_all(b"POST /v1/detect HTT").expect("send");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 408"), "{out:?}");
    assert_eq!(error_code_of(&out), "timeout");

    let ok = deptree::serve::query(&client(&handle), "GET", "/healthz", None)
        .expect("healthz after slow loris");
    assert_eq!(ok.status, 200);
    stop(handle);
}

#[test]
fn drip_fed_slow_loris_is_cut_off_by_the_frame_deadline() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(120),
        frame_timeout: Duration::from_millis(400),
        ..test_config()
    };
    let handle = start(config);

    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // Drip one header byte every 40 ms: each byte resets a naive
    // per-read timeout, so only the absolute frame deadline can end
    // this. Keep dripping well past the deadline, then collect the 408.
    let started = std::time::Instant::now();
    s.write_all(b"POST /v1/detect HTTP/1.1\r\n").expect("send");
    while started.elapsed() < Duration::from_millis(900) {
        if s.write_all(b"x").is_err() {
            break; // the server already hung up on us — expected
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 408"), "{out:?}");
    assert_eq!(error_code_of(&out), "timeout");

    let ok = deptree::serve::query(&client(&handle), "GET", "/healthz", None)
        .expect("healthz after drip-fed slow loris");
    assert_eq!(ok.status, 200);
    stop(handle);
}

#[test]
fn mid_response_disconnects_are_absorbed() {
    let handle = start(test_config());

    // Fire requests and hang up without reading the answer.
    for _ in 0..5 {
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        let body = discover_body("hotels").render();
        let frame = format!(
            "POST /v1/discover HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(frame.as_bytes()).expect("send");
        drop(s); // vanish before the response is written
    }

    let resp = deptree::serve::query(
        &client(&handle),
        "POST",
        "/v1/discover",
        Some(&discover_body("hotels")),
    )
    .expect("discover after mid-response disconnects");
    assert_eq!(resp.status, 200);
    stop(handle);
}

#[test]
fn queue_overflow_sheds_with_429_under_concurrent_load() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.addr().to_string();

    // Six concurrent slow requests against one worker and one queue
    // slot: some must be shed, and the shed ones answer 429 — they are
    // not silently dropped, and the server does not fall over.
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let config = ClientConfig {
                    addr,
                    retries: 0,
                    io_timeout: Duration::from_secs(30),
                    seed: i as u64,
                    ..ClientConfig::default()
                };
                let body = Json::obj()
                    .set("dataset", "wide")
                    .set("max_lhs", 8u64)
                    .set("timeout_ms", 300u64);
                deptree::serve::query(&config, "POST", "/v1/discover", Some(&body))
            })
        })
        .collect();

    let mut ok = 0u32;
    let mut shed = 0u32;
    for c in clients {
        match c.join().expect("client thread must not panic") {
            Ok(resp) => {
                assert_eq!(resp.status, 200);
                ok += 1;
            }
            Err(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "{e}");
                shed += 1;
            }
        }
    }
    assert!(
        ok >= 1,
        "at least one request should be served (ok={ok}, shed={shed})"
    );
    assert!(
        shed >= 1,
        "at least one request should be shed (ok={ok}, shed={shed})"
    );
    assert_eq!(ok + shed, 6);
    assert_eq!(handle.shed() as u32, shed);
    stop(handle);
}

#[test]
fn drain_under_load_cancels_to_sound_partials_and_exits_clean() {
    let config = ServeConfig {
        drain_grace: Duration::from_millis(50),
        // A lattice big enough (C(18,≤8) ≈ 10⁵ nodes) that the slow
        // request is still running when the 2s drain grace below expires,
        // even on a fast machine.
        datasets: vec![("wide".to_owned(), wide_relation(18, 200, 7))],
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.addr().to_string();

    // A request slow enough to still be running when drain begins.
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let config = ClientConfig {
                addr,
                retries: 0,
                io_timeout: Duration::from_secs(30),
                ..ClientConfig::default()
            };
            let body = Json::obj()
                .set("dataset", "wide")
                .set("max_lhs", 8u64)
                .set("timeout_ms", 10_000u64);
            deptree::serve::query(&config, "POST", "/v1/discover", Some(&body))
        })
    };

    // Wait until the request is actually in flight.
    let mut waited = 0;
    while handle.drain_state().inflight() == 0 && waited < 5_000 {
        std::thread::sleep(Duration::from_millis(5));
        waited += 5;
    }
    assert!(
        handle.drain_state().inflight() > 0,
        "slow request never started"
    );

    // Soft phase: begin the drain on a side thread so we can probe
    // readiness while it runs.
    let drainer = {
        let state = std::sync::Arc::clone(handle.drain_state());
        // A 2s grace keeps the soft phase open long enough for the
        // readiness probes below even on a heavily loaded CI machine;
        // the in-flight request is cancelled the moment it expires, so
        // the test still finishes promptly.
        std::thread::spawn(move || {
            deptree::serve::drain::run_drain(&state, Duration::from_millis(2_000))
        })
    };
    while !handle.drain_state().is_draining() {
        std::thread::yield_now();
    }

    // Readiness flips while the process still accepts connections…
    let probe = ClientConfig {
        addr: addr.clone(),
        retries: 0,
        ..ClientConfig::default()
    };
    let ready = deptree::serve::query(&probe, "GET", "/readyz", None);
    match ready {
        Err(e) => assert_eq!(e.code, ErrorCode::Draining, "{e}"),
        Ok(r) => panic!("readyz should refuse during drain, got {}", r.status),
    }
    // …and new task work is refused with `draining`.
    let refused = deptree::serve::query(
        &probe,
        "POST",
        "/v1/discover",
        Some(&discover_body("hotels")),
    );
    match refused {
        Err(e) => assert_eq!(e.code, ErrorCode::Draining, "{e}"),
        Ok(r) => panic!("task work should be refused during drain, got {}", r.status),
    }

    // The in-flight request is hard-cancelled after the grace period and
    // still answers 200 with its sound partial.
    let resp = slow
        .join()
        .expect("slow client must not panic")
        .expect("cancelled request still gets its partial");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body.bool_field("partial"), Some(true));
    assert_eq!(resp.body.str_field("exhausted"), Some("cancelled"));

    drainer.join().expect("drain coordinator must not panic");
    handle.join();

    // Fully stopped: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr.parse().expect("addr"), Duration::from_millis(500))
            .is_err()
    );
}

#[test]
fn sigterm_drains_the_real_binary_to_exit_zero() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_deptree"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args([
            "serve",
            "--data",
            "hotels=data/hotels.csv:t,t,t,n,n",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn deptree serve");

    // Scrape the bound address off the first stdout line.
    let mut stdout = child.stdout.take().expect("stdout");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).unwrap_or(0) == 1 && byte[0] != b'\n' {
        line.push(byte[0]);
    }
    let line = String::from_utf8_lossy(&line).into_owned();
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_owned();

    // Drain the child's stderr on a side thread so the pipe can never
    // fill up and wedge the server mid-drain.
    let mut stderr = child.stderr.take().expect("stderr");
    let stderr_reader = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });

    // Wait until the server answers /readyz 200 before doing anything
    // else: this pins "fully up" to an observed fact rather than a guess,
    // so the signal handler is provably installed (it goes in before the
    // listener is even announced) and the round trips below cannot race
    // server startup under load.
    let config = ClientConfig {
        addr,
        retries: 0,
        ..ClientConfig::default()
    };
    let ready_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match deptree::serve::query(&config, "GET", "/readyz", None) {
            Ok(resp) if resp.status == 200 => break,
            _ if std::time::Instant::now() > ready_deadline => {
                let _ = child.kill();
                panic!("server never became ready within 10s");
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }

    // One real round trip through the child server.
    let config = ClientConfig {
        retries: 2,
        ..config
    };
    let resp = deptree::serve::query(
        &config,
        "POST",
        "/v1/detect",
        Some(
            &Json::obj()
                .set("dataset", "hotels")
                .set("rule", "address -> region"),
        ),
    )
    .expect("detect against child server");
    assert_eq!(resp.status, 200);

    // The black box is lit: /metrics on the real binary counts the
    // round trips we just made.
    let (status, metrics) =
        deptree::serve::fetch_text(&config, "/metrics").expect("metrics from child server");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("deptree_requests_total{route=\"/v1/detect\",status=\"200\"}"),
        "metrics missing the detect round trip:\n{metrics}"
    );
    assert!(
        metrics.contains("deptree_requests_total{route=\"/readyz\",status=\"200\"}"),
        "metrics missing the readiness polls:\n{metrics}"
    );

    // SIGTERM → graceful drain → exit 0.
    let pid = child.id();
    let kill = Command::new("sh")
        .args(["-c", &format!("kill -TERM {pid}")])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());

    let exit_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "server should exit 0, got {status:?}");
                break;
            }
            None if std::time::Instant::now() > exit_deadline => {
                let _ = child.kill();
                panic!("server did not exit within 10s of SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    // The drain actually ran (and said so), rather than the process
    // dying some other way that happens to exit 0.
    let stderr = stderr_reader.join().expect("stderr reader");
    assert!(
        stderr.contains("signal received — draining"),
        "expected drain banner in stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("drained; exiting"),
        "expected drain completion in stderr:\n{stderr}"
    );
}

#[test]
fn metrics_scrape_under_load_exposes_the_required_series() {
    let config = ServeConfig {
        workers: 2,
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.addr().to_string();

    // Concurrent task traffic while we scrape: the endpoint must answer
    // correctly mid-flight, not just on an idle server.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let config = ClientConfig {
                    addr,
                    retries: 1,
                    io_timeout: Duration::from_secs(30),
                    seed: i as u64,
                    ..ClientConfig::default()
                };
                let body = discover_body("hotels");
                deptree::serve::query(&config, "POST", "/v1/discover", Some(&body))
            })
        })
        .collect();

    let (status, text) =
        deptree::serve::fetch_text(&client(&handle), "/metrics").expect("scrape under load");
    assert_eq!(status, 200);

    for c in clients {
        let resp = c
            .join()
            .expect("client thread must not panic")
            .expect("discover under scrape");
        assert_eq!(resp.status, 200);
    }

    // A second scrape after the traffic settles: every required family
    // must be present, and the exposition must be structurally sane.
    let (status, text2) =
        deptree::serve::fetch_text(&client(&handle), "/metrics").expect("scrape after load");
    assert_eq!(status, 200);
    for series in [
        "deptree_requests_total",
        "deptree_shed_total",
        "deptree_request_duration_seconds_bucket",
        "deptree_request_duration_seconds_sum",
        "deptree_request_duration_seconds_count",
        "deptree_inflight_requests",
        "deptree_cache_hits_total",
        "deptree_cache_misses_total",
        "deptree_response_cache_hits_total",
        "deptree_response_cache_misses_total",
        "deptree_response_cache_evictions_total",
        "deptree_response_cache_bytes",
    ] {
        assert!(text2.contains(series), "missing {series} in:\n{text2}");
    }
    assert!(
        text2.contains("deptree_requests_total{route=\"/v1/discover\",status=\"200\"}"),
        "discover traffic not counted:\n{text2}"
    );
    // Both scrapes are well-formed: every non-comment line is
    // `name{labels} value` or `name value` with a parseable float.
    for scrape in [&text, &text2] {
        for line in scrape.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses as f64");
        }
    }
    stop(handle);
}

/// Run the CLI binary and return its stdout.
fn cli_stdout(args: &[&str]) -> String {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_deptree"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(args)
        .output()
        .expect("run deptree");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn server_reports_are_byte_identical_to_the_cli_at_any_thread_count() {
    for threads in [1usize, 8] {
        let config = ServeConfig {
            threads,
            ..test_config()
        };
        let handle = start(config);
        let client = client(&handle);
        let t = threads.to_string();

        // profile / discover
        let cli = cli_stdout(&[
            "profile",
            "data/hotels.csv",
            "--types",
            "t,t,t,n,n",
            "--max-lhs",
            "2",
            "--threads",
            &t,
        ]);
        let resp = deptree::serve::query(
            &client,
            "POST",
            "/v1/discover",
            Some(&discover_body("hotels")),
        )
        .expect("discover");
        assert_eq!(
            resp.body.str_field("report").expect("report"),
            cli,
            "discover report diverges from CLI stdout at {threads} thread(s)"
        );

        // detect
        let cli = cli_stdout(&[
            "detect",
            "data/hotels.csv",
            "--types",
            "t,t,t,n,n",
            "--rule",
            "address -> region",
        ]);
        let resp = deptree::serve::query(
            &client,
            "POST",
            "/v1/detect",
            Some(
                &Json::obj()
                    .set("dataset", "hotels")
                    .set("rule", "address -> region"),
            ),
        )
        .expect("detect");
        assert_eq!(
            resp.body.str_field("report").expect("report"),
            cli,
            "detect report diverges from CLI stdout at {threads} thread(s)"
        );

        stop(handle);
    }
}

#[test]
fn retryable_draining_exhausts_the_retry_budget() {
    let handle = start(test_config());
    handle.drain_state().begin(); // soft drain: readyz 503, tasks refused

    let config = ClientConfig {
        addr: handle.addr().to_string(),
        retries: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        ..ClientConfig::default()
    };
    let err = deptree::serve::query(
        &config,
        "POST",
        "/v1/discover",
        Some(&discover_body("hotels")),
    )
    .expect_err("draining server must not serve task work");
    // All attempts consumed on the retryable `draining` answer; the last
    // answer's code is surfaced as the terminal error (exit 2 class).
    assert_eq!(err.attempts, 3);
    assert_eq!(err.code, ErrorCode::Draining, "{err}");
    assert_eq!(err.code.exit_code(), 2);

    stop(handle);
}

// ───────────────────────── gateway_faults ─────────────────────────
//
// The same standing assertions, one level up: `deptree gateway` fronts a
// supervised fleet of `deptree serve` workers, and no worker fault —
// SIGKILL mid-fan-out, a crash-looping binary, a dead home worker — may
// surface as a failed request. Degradation is always a sound partial.

/// Write a relation to a temp CSV the worker processes can load.
fn write_temp_csv(tag: &str, r: &Relation) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("deptree-gwtest-{}-{tag}.csv", std::process::id()));
    std::fs::write(&path, to_csv(r)).expect("write dataset csv");
    path
}

/// `a -> b` holds globally — and therefore on every row slice — by
/// construction; `c` and `d` are noise so discovery has candidates to
/// reject as well as accept.
fn planted_relation(n_rows: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RelationBuilder::new()
        .attr("a", ValueType::Categorical)
        .attr("b", ValueType::Categorical)
        .attr("c", ValueType::Categorical)
        .attr("d", ValueType::Categorical);
    for _ in 0..n_rows {
        let x = rng.random_range(0..40u8);
        b = b.row(vec![
            Value::str(format!("v{x}")),
            Value::str(format!("w{}", x % 10)),
            Value::str(format!("p{}", rng.random_range(0..3u8))),
            Value::str(format!("q{}", rng.random_range(0..3u8))),
        ]);
    }
    b.build().expect("consistent arity")
}

/// Gateway config pointed at the real `deptree` binary as the worker.
fn gateway_config(datasets: Vec<DatasetSpec>, workers: usize) -> GatewayConfig {
    GatewayConfig {
        worker_bin: PathBuf::from(env!("CARGO_BIN_EXE_deptree")),
        workers,
        datasets,
        probe_interval: Duration::from_millis(100),
        listen: ListenOpts {
            addr: "127.0.0.1:0".to_owned(),
            ..ListenOpts::default()
        },
        ..GatewayConfig::default()
    }
}

fn gw_client(handle: &GatewayHandle) -> ClientConfig {
    ClientConfig {
        addr: handle.addr().to_string(),
        retries: 0,
        io_timeout: Duration::from_secs(30),
        ..ClientConfig::default()
    }
}

/// Poll the gateway's `/readyz` until at least `want` workers are up.
fn wait_workers_up(cfg: &ClientConfig, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(resp) = deptree::serve::query(cfg, "GET", "/readyz", None) {
            if resp.status == 200 && resp.body.u64_field("workers_up").unwrap_or(0) >= want {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "gateway workers did not come up within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn fds_of(body: &Json) -> Vec<String> {
    body.get("fds")
        .and_then(Json::as_arr)
        .map(|list| {
            list.iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

/// Spawn the real binary, scrape `listening on ADDR` off stdout, and
/// drain stderr on a side thread so the pipe can never wedge the child.
fn spawn_binary(args: &[&str]) -> (std::process::Child, String, std::thread::JoinHandle<String>) {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_deptree"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn deptree");
    let mut stdout = child.stdout.take().expect("stdout");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).unwrap_or(0) == 1 && byte[0] != b'\n' {
        line.push(byte[0]);
    }
    let line = String::from_utf8_lossy(&line).into_owned();
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_owned();
    let mut stderr = child.stderr.take().expect("stderr");
    let stderr_reader = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    (child, addr, stderr_reader)
}

fn wait_exit(child: &mut std::process::Child, within: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + within;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("child did not exit within {within:?}");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn sh(cmd: &str) -> bool {
    std::process::Command::new("sh")
        .args(["-c", cmd])
        .status()
        .expect("run sh")
        .success()
}

#[test]
fn gateway_proxies_whole_dataset_requests_byte_identically() {
    let r = planted_relation(40, 3);
    let csv = write_temp_csv("proxy", &r);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: false,
    };
    let handle = spawn_gateway(gateway_config(vec![spec], 1)).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 1);

    // The worker's own address, from the gateway's health report: the
    // oracle is the very worker the proxy talks to, nothing re-rendered.
    let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
    let workers = health
        .body
        .get("workers")
        .and_then(Json::as_arr)
        .expect("workers");
    let waddr = workers[0]
        .str_field("addr")
        .expect("worker addr")
        .to_owned();
    let wcfg = ClientConfig {
        addr: waddr,
        retries: 0,
        io_timeout: Duration::from_secs(30),
        ..ClientConfig::default()
    };

    // A deterministic success and a deterministic error, as raw bytes.
    let detect = Json::obj()
        .set("dataset", "planted")
        .set("rule", "a -> b")
        .render()
        .into_bytes();
    let bad = Json::obj()
        .set("dataset", "planted")
        .set("timeout_ms", "banana")
        .render()
        .into_bytes();
    for (path, body) in [("/v1/detect", &detect), ("/v1/discover", &bad)] {
        let via_gateway = forward(&cfg, "POST", path, Some(body)).expect("via gateway");
        let direct = forward(&wcfg, "POST", path, Some(body)).expect("direct to worker");
        assert_eq!(via_gateway.status, direct.status, "{path}");
        assert_eq!(
            via_gateway.body, direct.body,
            "{path}: gateway bytes diverge from the worker's own"
        );
    }

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn sigkill_mid_fanout_degrades_soundly_and_the_worker_respawns() {
    let full = planted_relation(400, 7);
    let csv = write_temp_csv("fanout", &full);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: true,
    };
    let config = GatewayConfig {
        // A wide respawn window, so requests fired right after the kill
        // reliably land while the shard is still down.
        respawn_base: Duration::from_millis(800),
        respawn_max: Duration::from_secs(2),
        ..gateway_config(vec![spec], 4)
    };
    let handle = spawn_gateway(config).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 4);

    // From-scratch ground truth on the full data: the fault gate asserts
    // every degraded answer stays inside this set.
    let scratch: std::collections::BTreeSet<String> = profile(
        &full,
        &ProfileOpts {
            max_lhs: 2,
            error: 0.0,
        },
        &Exec::unbounded(),
    )
    .fds
    .into_iter()
    .collect();
    assert!(scratch.contains("a -> b"), "{scratch:?}");

    // Healthy merge first: all four shards answer, nothing degraded.
    let body = discover_body("planted");
    let resp =
        deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body)).expect("healthy discover");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body.bool_field("partial"),
        Some(false),
        "{}",
        resp.body.render()
    );
    assert!(fds_of(&resp.body).contains(&"a -> b".to_owned()));

    // SIGKILL one worker, then immediately hammer the gateway from four
    // clients inside the respawn window.
    let victim = handle.worker_pids()[1].expect("worker 1 pid");
    assert!(signal::send(victim, 9), "SIGKILL worker 1");

    let addr = handle.addr().to_string();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    addr,
                    retries: 0,
                    io_timeout: Duration::from_secs(30),
                    seed: i as u64,
                    ..ClientConfig::default()
                };
                deptree::serve::query(
                    &cfg,
                    "POST",
                    "/v1/discover",
                    Some(&discover_body("planted")),
                )
            })
        })
        .collect();

    let mut degraded_seen = 0usize;
    for c in clients {
        // The fault gate: never a non-200, and every answer is sound.
        let resp = c
            .join()
            .expect("client thread")
            .expect("a fan-out during a worker fault must still answer 200");
        assert_eq!(resp.status, 200);
        for rule in fds_of(&resp.body) {
            assert!(
                scratch.contains(&rule),
                "merged rule `{rule}` is not in the from-scratch set {scratch:?}"
            );
        }
        if resp.body.get("degraded").is_some() {
            degraded_seen += 1;
            assert_eq!(
                resp.body.bool_field("partial"),
                Some(true),
                "{}",
                resp.body.render()
            );
        }
    }
    assert!(
        degraded_seen > 0,
        "a SIGKILL inside the respawn window must degrade at least one fan-out"
    );

    // The supervisor notices and respawns within the backoff budget.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pids = handle.worker_pids();
        if handle.worker_restarts() >= 1 && matches!(pids[1], Some(p) if p != victim) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker 1 did not respawn within 10s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_workers_up(&cfg, 4);

    // Recovered: a fresh fan-out is whole again.
    let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
        .expect("post-respawn discover");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body.bool_field("partial"),
        Some(false),
        "{}",
        resp.body.render()
    );
    assert!(fds_of(&resp.body).contains(&"a -> b".to_owned()));

    // Shutdown reaps the whole fleet — no zombies, no orphans.
    let last = handle.worker_pids();
    handle.drain_and_join();
    for pid in last.into_iter().flatten() {
        assert!(
            !signal::send(pid, 0),
            "worker {pid} survived drain_and_join"
        );
    }
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn a_crash_looping_worker_binary_is_quarantined_not_hot_looped() {
    let r = planted_relation(20, 5);
    let csv = write_temp_csv("quarantine", &r);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: false,
    };
    let config = GatewayConfig {
        worker_bin: PathBuf::from("false"), // exits 1 instantly, forever
        respawn_base: Duration::from_millis(10),
        respawn_max: Duration::from_millis(40),
        quarantine_after: 2,
        quarantine_cooldown: Duration::from_secs(120),
        ..gateway_config(vec![spec], 1)
    };
    let handle =
        spawn_gateway(config).expect("the gateway front must bind even when workers cannot run");
    let cfg = gw_client(&handle);

    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
        let quarantined = health.body.u64_field("quarantined").unwrap_or(0);
        let phase = health
            .body
            .get("workers")
            .and_then(Json::as_arr)
            .and_then(|w| w.first())
            .and_then(|w| w.str_field("phase"))
            .map(str::to_owned);
        if quarantined == 1 && phase.as_deref() == Some("quarantined") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker was never quarantined; last phase {phase:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Quarantine means the respawn churn actually stops...
    let restarts = handle.worker_restarts();
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        handle.worker_restarts(),
        restarts,
        "respawns continued during quarantine"
    );

    // ...and readiness says so instead of pretending.
    let err = deptree::serve::query(&cfg, "GET", "/readyz", None)
        .expect_err("readyz must refuse with no live workers");
    assert_eq!(err.code, ErrorCode::Overloaded, "{err}");

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn gateway_sigterm_drains_and_reaps_every_worker() {
    let r = planted_relation(40, 9);
    let csv = write_temp_csv("blackbox", &r);
    let data = format!("planted={}", csv.display());
    let (mut child, addr, stderr_reader) = spawn_binary(&[
        "gateway",
        "--data",
        &data,
        "--workers",
        "2",
        "--addr",
        "127.0.0.1:0",
    ]);
    let cfg = ClientConfig {
        addr,
        retries: 0,
        io_timeout: Duration::from_secs(30),
        ..ClientConfig::default()
    };
    wait_workers_up(&cfg, 2);

    // Worker pids, from the gateway's own health report.
    let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
    let pids: Vec<u64> = health
        .body
        .get("workers")
        .and_then(Json::as_arr)
        .expect("workers")
        .iter()
        .filter_map(|w| w.u64_field("pid"))
        .collect();
    assert_eq!(pids.len(), 2, "{}", health.body.render());

    // One real round trip through the proxy before the drain.
    let resp = deptree::serve::query(
        &cfg,
        "POST",
        "/v1/discover",
        Some(&discover_body("planted")),
    )
    .expect("discover via gateway");
    assert_eq!(resp.status, 200);

    assert!(sh(&format!("kill -TERM {}", child.id())));
    let status = wait_exit(&mut child, Duration::from_secs(15));
    assert!(status.success(), "gateway should exit 0, got {status:?}");

    // No zombies, no orphans: every worker pid is gone with the gateway.
    for pid in pids {
        assert!(
            !sh(&format!("kill -0 {pid}")),
            "worker {pid} outlived the gateway"
        );
    }
    let stderr = stderr_reader.join().expect("stderr reader");
    assert!(
        stderr.contains("drained; exiting"),
        "expected drain completion in stderr:\n{stderr}"
    );
    let _ = std::fs::remove_file(&csv);
}

/// The value of an unlabelled metric series in a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn sigkill_resharding_heals_to_full_answers_before_the_respawn() {
    let full = planted_relation(400, 11);
    let csv = write_temp_csv("reshard", &full);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: true,
    };
    let config = GatewayConfig {
        // A respawn window far wider than the heal deadline below: if
        // full answers come back before it, re-sharding did it — the
        // respawn cannot have.
        respawn_base: Duration::from_secs(3),
        respawn_max: Duration::from_secs(8),
        ..gateway_config(vec![spec], 4)
    };
    let handle = spawn_gateway(config).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 4);

    let scratch: std::collections::BTreeSet<String> = profile(
        &full,
        &ProfileOpts {
            max_lhs: 2,
            error: 0.0,
        },
        &Exec::unbounded(),
    )
    .fds
    .into_iter()
    .collect();

    // The all-healthy baseline the healed answer must match byte-for-byte.
    let body = discover_body("planted");
    let baseline =
        deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body)).expect("baseline");
    assert_eq!(baseline.body.bool_field("partial"), Some(false));
    let baseline_report = baseline
        .body
        .str_field("report")
        .expect("report")
        .to_owned();

    let victim = handle.worker_pids()[1].expect("worker 1 pid");
    assert!(signal::send(victim, 9), "SIGKILL worker 1");

    // Within the heal deadline — well inside the respawn backoff — the
    // fan-out must be whole again, with zero respawns: the slice was
    // re-homed onto a survivor, not brought back by the supervisor.
    let deadline = Instant::now() + Duration::from_millis(2_500);
    let healed = loop {
        let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
            .expect("discover during worker death must still answer 200");
        assert_eq!(resp.status, 200);
        for rule in fds_of(&resp.body) {
            assert!(scratch.contains(&rule), "unsound rule `{rule}` mid-fault");
        }
        if resp.body.bool_field("partial") == Some(false) {
            break resp;
        }
        assert!(
            Instant::now() < deadline,
            "fan-out did not heal within the re-shard budget: {}",
            resp.body.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        handle.worker_restarts(),
        0,
        "healed answers must come from re-sharding, not a respawn"
    );
    assert_eq!(
        healed.body.str_field("report").expect("report"),
        baseline_report,
        "the re-sharded merge must be byte-identical to the healthy one"
    );

    // The healing is visible: /healthz counts the re-homed slice and the
    // aggregated scrape carries the counter.
    let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
    assert!(health.body.u64_field("resharded").unwrap_or(0) >= 1);
    let (status, metrics) = deptree::serve::fetch_text(&cfg, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metric_value(&metrics, "deptree_reshard_total").unwrap_or(0.0) >= 1.0,
        "re-homing must move deptree_reshard_total:\n{metrics}"
    );

    // After the respawn settles, the slice is re-absorbed onto its
    // primary and the overlay empties — and answers stay whole.
    let deadline = Instant::now() + Duration::from_secs(25);
    loop {
        let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
        if health.body.u64_field("resharded") == Some(0) && handle.worker_restarts() >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "re-homed slice was never re-absorbed: {}",
            health.body.render()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
        .expect("post-reabsorb discover");
    assert_eq!(resp.body.bool_field("partial"), Some(false));
    assert_eq!(
        resp.body.str_field("report").expect("report"),
        baseline_report
    );

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn replica_reads_cover_a_dead_primary_without_resharding() {
    let full = planted_relation(300, 13);
    let csv = write_temp_csv("replica", &full);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: true,
    };
    let config = GatewayConfig {
        replicas: 1,
        respawn_base: Duration::from_secs(3),
        respawn_max: Duration::from_secs(8),
        ..gateway_config(vec![spec], 3)
    };
    let handle = spawn_gateway(config).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 3);

    let body = discover_body("planted");
    let baseline =
        deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body)).expect("baseline");
    assert_eq!(baseline.body.bool_field("partial"), Some(false));
    let baseline_report = baseline
        .body
        .str_field("report")
        .expect("report")
        .to_owned();

    let victim = handle.worker_pids()[0].expect("worker 0 pid");
    assert!(signal::send(victim, 9), "SIGKILL worker 0");

    // The replica already holds every slice the primary did, so the
    // fan-out fails over without any re-homing at all.
    let deadline = Instant::now() + Duration::from_millis(2_500);
    loop {
        let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
            .expect("discover during worker death");
        assert_eq!(resp.status, 200);
        if resp.body.bool_field("partial") == Some(false) {
            assert_eq!(
                resp.body.str_field("report").expect("report"),
                baseline_report,
                "replica reads must be byte-identical to primary reads"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica failover never produced a whole answer: {}",
            resp.body.render()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(handle.worker_restarts(), 0, "no respawn inside the window");
    let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
    assert_eq!(
        health.body.u64_field("resharded"),
        Some(0),
        "a live replica must make re-homing unnecessary: {}",
        health.body.render()
    );

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn seeded_chaos_schedule_is_survived_with_sound_answers_throughout() {
    let full = planted_relation(240, 17);
    let csv = write_temp_csv("chaos", &full);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: true,
    };
    let config = GatewayConfig {
        replicas: 1,
        chaos_seed: Some(1234),
        respawn_base: Duration::from_millis(200),
        respawn_max: Duration::from_secs(1),
        // Chaos kills land close enough together to look like a crash
        // loop; give the fleet enough fuel that the schedule cannot
        // park a slot in a two-minute quarantine.
        quarantine_after: 10,
        quarantine_cooldown: Duration::from_millis(500),
        ..gateway_config(vec![spec], 3)
    };
    let handle = spawn_gateway(config).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 3);

    let scratch: std::collections::BTreeSet<String> = profile(
        &full,
        &ProfileOpts {
            max_lhs: 2,
            error: 0.0,
        },
        &Exec::unbounded(),
    )
    .fds
    .into_iter()
    .collect();
    assert!(scratch.contains("a -> b"), "{scratch:?}");

    // Query continuously across the whole 8s chaos horizon: kills,
    // wedges and slowdowns land per the seeded schedule, and every
    // single answer must be a sound 200.
    let body = discover_body("planted");
    let horizon = Instant::now() + Duration::from_millis(8_500);
    let mut answers = 0u32;
    while Instant::now() < horizon {
        let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
            .expect("every request under chaos must still answer 200");
        assert_eq!(resp.status, 200);
        for rule in fds_of(&resp.body) {
            assert!(
                scratch.contains(&rule),
                "unsound rule `{rule}` under chaos (not in {scratch:?})"
            );
        }
        answers += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        answers >= 20,
        "the chaos loop barely ran ({answers} answers)"
    );

    // Once the schedule is spent the fleet heals completely: all
    // workers back, and a whole (non-degraded) answer with the planted
    // dependency present.
    wait_workers_up(&cfg, 3);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let resp = deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body))
            .expect("post-chaos discover");
        if resp.body.bool_field("partial") == Some(false) {
            assert!(fds_of(&resp.body).contains(&"a -> b".to_owned()));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never fully healed after chaos: {}",
            resp.body.render()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn rolling_restart_cycles_every_worker_once_with_zero_dropped_requests() {
    let full = planted_relation(200, 19);
    let csv = write_temp_csv("rolling", &full);
    let spec = DatasetSpec {
        name: "planted".to_owned(),
        path: csv.display().to_string(),
        types: None,
        shard: true,
    };
    let config = GatewayConfig {
        child_grace: Duration::from_secs(3),
        ..gateway_config(vec![spec], 3)
    };
    let handle = spawn_gateway(config).expect("gateway");
    let cfg = gw_client(&handle);
    wait_workers_up(&cfg, 3);

    // The gateway front must not expose the workers' dataset admin —
    // that surface belongs to the replane loop alone.
    let blocked = forward(&cfg, "POST", "/admin/datasets", Some(b"{}")).expect("blocked admin");
    assert_eq!(blocked.status, 400, "dataset admin must be refused");

    // A continuous query loop across the whole restart: every answer
    // must be a whole 200 — the drain sequencing (pre-home, one slot at
    // a time, readyz-gated) leaves no window to drop or degrade.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loop_stop = std::sync::Arc::clone(&stop);
    let loop_addr = handle.addr().to_string();
    let querier = std::thread::spawn(move || {
        let cfg = ClientConfig {
            addr: loop_addr,
            retries: 2,
            io_timeout: Duration::from_secs(30),
            ..ClientConfig::default()
        };
        let body = discover_body("planted");
        let (mut total, mut degraded) = (0u32, 0u32);
        let mut errors: Vec<String> = Vec::new();
        let mut min_up = u64::MAX;
        while !loop_stop.load(std::sync::atomic::Ordering::Acquire) {
            match deptree::serve::query(&cfg, "POST", "/v1/discover", Some(&body)) {
                Ok(resp) => {
                    total += 1;
                    if resp.status != 200 || resp.body.bool_field("partial") != Some(false) {
                        degraded += 1;
                    }
                }
                Err(e) => errors.push(e.to_string()),
            }
            if let Ok(h) = deptree::serve::query(&cfg, "GET", "/healthz", None) {
                let up = h
                    .body
                    .get("workers")
                    .and_then(Json::as_arr)
                    .map(|ws| {
                        ws.iter()
                            .filter(|w| w.str_field("state") == Some("up"))
                            .count() as u64
                    })
                    .unwrap_or(0);
                min_up = min_up.min(up);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        (total, degraded, errors, min_up)
    });

    // Kick the rolling restart through the public endpoint.
    let started = deptree::serve::query(&cfg, "POST", "/admin/reload", None).expect("reload");
    assert_eq!(started.status, 200);
    assert_eq!(started.body.str_field("reload"), Some("started"));

    // Every worker restarts exactly once, and the coordinator reports
    // itself done.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = (0..3).all(|i| handle.worker_restarts_of(i) == 1);
        let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
        if done && health.body.bool_field("reloading") == Some(false) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rolling restart never completed: {}",
            health.body.render()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    for i in 0..3 {
        assert_eq!(
            handle.worker_restarts_of(i),
            1,
            "worker {i} must restart exactly once"
        );
    }

    // Let the loop observe the settled fleet once more, then stop it.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Release);
    let (total, degraded, errors, min_up) = querier.join().expect("query loop");
    assert!(
        errors.is_empty(),
        "dropped requests during reload: {errors:?}"
    );
    assert_eq!(
        degraded, 0,
        "rolling restart must never degrade an answer ({degraded}/{total})"
    );
    assert!(total > 0, "the query loop never ran");
    assert!(
        min_up >= 2,
        "capacity dipped below N-1 during the rolling restart (min up = {min_up})"
    );

    handle.drain_and_join();
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn second_sigterm_during_drain_forces_exit_130() {
    let wide = wide_relation(18, 200, 7);
    let csv = write_temp_csv("force", &wide);
    let data = format!("wide={}", csv.display());
    let (mut child, addr, stderr_reader) = spawn_binary(&[
        "serve",
        "--data",
        &data,
        "--addr",
        "127.0.0.1:0",
        "--drain-grace-ms",
        "30000",
        "--max-timeout-ms",
        "60000",
    ]);
    let cfg = ClientConfig {
        addr,
        retries: 0,
        io_timeout: Duration::from_secs(60),
        ..ClientConfig::default()
    };
    let ready_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match deptree::serve::query(&cfg, "GET", "/readyz", None) {
            Ok(resp) if resp.status == 200 => break,
            _ if Instant::now() > ready_deadline => {
                let _ = child.kill();
                panic!("server never became ready within 10s");
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }

    // Park a slow discover in flight so the drain genuinely blocks.
    let slow_cfg = ClientConfig {
        frame_timeout: Duration::from_secs(60),
        ..cfg.clone()
    };
    let slow = std::thread::spawn(move || {
        let body = Json::obj()
            .set("dataset", "wide")
            .set("max_lhs", 8u64)
            .set("timeout_ms", 25_000u64);
        let _ = deptree::serve::query(&slow_cfg, "POST", "/v1/discover", Some(&body));
    });
    let busy_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = deptree::serve::query(&cfg, "GET", "/healthz", None).expect("healthz");
        if health.body.u64_field("inflight").unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            Instant::now() < busy_deadline,
            "the slow discover never showed up in flight"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // First SIGTERM: the drain begins and blocks on the in-flight work.
    // Second SIGTERM: the operator (or a supervisor) has lost patience —
    // the contract is one explicit stderr line and exit 130, immediately.
    let pid = child.id();
    assert!(sh(&format!("kill -TERM {pid}")));
    std::thread::sleep(Duration::from_millis(300));
    assert!(sh(&format!("kill -TERM {pid}")));

    let status = wait_exit(&mut child, Duration::from_secs(10));
    assert_eq!(
        status.code(),
        Some(130),
        "want the forced-shutdown exit code, got {status:?}"
    );
    let stderr = stderr_reader.join().expect("stderr reader");
    assert!(
        stderr.contains("forced shutdown during drain"),
        "expected the forced-shutdown line in stderr:\n{stderr}"
    );
    let _ = slow.join();
    let _ = std::fs::remove_file(&csv);
}

// ---- keep-alive + response-cache suite ----------------------------------

/// Build one request frame. `connection: None` omits the header (HTTP/1.1
/// defaults to keep-alive).
fn frame(method: &str, path: &str, body: &[u8], connection: Option<&str>) -> Vec<u8> {
    let conn = connection.map_or(String::new(), |c| format!("Connection: {c}\r\n"));
    let mut f = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{conn}\r\n",
        body.len()
    )
    .into_bytes();
    f.extend_from_slice(body);
    f
}

/// Read exactly one HTTP response frame off a socket (head through
/// `\r\n\r\n`, then `Content-Length` body bytes), leaving the connection
/// open for the next frame.
fn read_one_response(s: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut one = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        match s.read(&mut one) {
            Ok(1) => buf.push(one[0]),
            other => panic!(
                "socket closed mid-head after {} bytes: {other:?}",
                buf.len()
            ),
        }
    }
    let head = String::from_utf8_lossy(&buf).into_owned();
    let cl: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .map(|v| v.trim().parse().expect("content-length parses"))
        .unwrap_or(0);
    let mut body = vec![0u8; cl];
    s.read_exact(&mut body)
        .expect("whole declared body arrives");
    head + &String::from_utf8_lossy(&body)
}

fn body_text(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or_default()
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_connection() {
    let handle = start(ServeConfig {
        keepalive_idle: Duration::from_millis(150),
        ..test_config()
    });

    // Two distinguishable requests in one write: a detect on a known
    // dataset, then a detect on an unknown one. In-order framing is
    // observable from the statuses and the `task`/`error` bodies.
    let mut pipelined = frame(
        "POST",
        "/v1/detect",
        br#"{"dataset":"hotels","rule":"address -> region"}"#,
        None,
    );
    pipelined.extend(frame(
        "POST",
        "/v1/detect",
        br#"{"dataset":"nope","rule":"a -> b"}"#,
        None,
    ));
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    s.write_all(&pipelined).expect("send both frames");

    let r1 = read_one_response(&mut s);
    let r2 = read_one_response(&mut s);
    assert!(r1.starts_with("HTTP/1.1 200"), "first reply: {r1:?}");
    assert!(r1.contains("Connection: keep-alive"), "{r1:?}");
    assert_eq!(body_of(&r1).str_field("task"), Some("detect"));
    assert!(r2.starts_with("HTTP/1.1 404"), "second reply: {r2:?}");
    assert_eq!(error_code_of(&r2), "not_found");

    // The connection still serves a third, non-pipelined request.
    s.write_all(&frame("GET", "/healthz", b"", Some("close")))
        .expect("third request");
    let r3 = read_one_response(&mut s);
    assert!(r3.starts_with("HTTP/1.1 200"), "third reply: {r3:?}");
    assert!(r3.contains("Connection: close"), "{r3:?}");
    stop(handle);
}

#[test]
fn frame_clock_resets_per_request_on_a_reused_connection() {
    let handle = start(ServeConfig {
        read_timeout: Duration::from_millis(500),
        frame_timeout: Duration::from_millis(1_000),
        keepalive_idle: Duration::from_millis(2_500),
        ..test_config()
    });
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // Request 1 answers fast and keeps the connection.
    s.write_all(&frame("GET", "/healthz", b"", None))
        .expect("send");
    let r1 = read_one_response(&mut s);
    assert!(r1.starts_with("HTTP/1.1 200"), "{r1:?}");

    // Idle longer than the whole frame budget, within the idle window:
    // request 2 must still answer 200 — its FrameClock starts when its
    // bytes do, not when the connection was accepted.
    std::thread::sleep(Duration::from_millis(1_200));
    s.write_all(&frame("GET", "/healthz", b"", None))
        .expect("send after idle");
    let r2 = read_one_response(&mut s);
    assert!(
        r2.starts_with("HTTP/1.1 200"),
        "second request on a reused connection must get a fresh frame budget: {r2:?}"
    );

    // Request 3 stalls mid-head past the budget: 408, then close — the
    // slow frame kills only itself, never the already-shipped replies.
    s.write_all(b"GET /healthz HT").expect("send partial head");
    let r3 = read_one_response(&mut s);
    assert!(r3.starts_with("HTTP/1.1 408"), "{r3:?}");
    assert!(r3.contains("Connection: close"), "{r3:?}");
    let mut rest = Vec::new();
    let eof = s.read_to_end(&mut rest);
    assert!(
        matches!(eof, Ok(0)),
        "server must close after the 408: {eof:?} {rest:?}"
    );
    stop(handle);
}

#[test]
fn mid_stream_disconnects_on_reused_connections_leak_nothing() {
    let handle = start(ServeConfig {
        keepalive_idle: Duration::from_millis(100),
        ..test_config()
    });

    // Repeatedly: one good request, then vanish mid-way through the
    // second frame. Every cycle must fully release its admission slot
    // and its in-flight accounting.
    for _ in 0..20 {
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        s.write_all(&frame("GET", "/healthz", b"", None))
            .expect("send");
        let r = read_one_response(&mut s);
        assert!(r.starts_with("HTTP/1.1 200"), "{r:?}");
        s.write_all(b"POST /v1/detect HTTP/1.1\r\nContent-Le")
            .expect("send partial second frame");
        drop(s); // abrupt disconnect mid-frame
    }

    // The server still serves, and nothing is stuck in flight.
    let resp = deptree::serve::query(&client(&handle), "GET", "/healthz", None)
        .expect("healthz after disconnect churn");
    assert_eq!(resp.status, 200);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, text) =
            deptree::serve::fetch_text(&client(&handle), "/metrics").expect("scrape");
        assert_eq!(status, 200);
        // The gauge brackets respond() for every request, so the scrape
        // always counts itself: a clean server reads exactly 1 here.
        if metric_value(&text, "deptree_inflight_requests") == Some(1.0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "inflight gauge never returned to 0:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    stop(handle);
}

#[test]
fn drain_closes_reused_connections_after_the_in_flight_reply() {
    let handle = start(ServeConfig {
        datasets: vec![("wide".to_owned(), wide_relation(18, 200, 7))],
        ..test_config()
    });

    // A slow discover on a keep-alive connection, in flight when the
    // drain begins.
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    s.write_all(&frame(
        "POST",
        "/v1/discover",
        br#"{"dataset":"wide","max_lhs":8,"timeout_ms":20000}"#,
        None,
    ))
    .expect("send slow discover");
    let mut waited = 0;
    while handle.drain_state().inflight() == 0 && waited < 5_000 {
        std::thread::sleep(Duration::from_millis(5));
        waited += 5;
    }
    assert!(
        handle.drain_state().inflight() > 0,
        "slow request never started"
    );

    let drainer = {
        let state = std::sync::Arc::clone(handle.drain_state());
        std::thread::spawn(move || {
            deptree::serve::drain::run_drain(&state, Duration::from_millis(500))
        })
    };

    // The in-flight reply still ships — as a sound partial once the
    // grace expires — but on a connection the drain flips to close: no
    // keep-alive may survive into shutdown.
    let r = read_one_response(&mut s);
    assert!(r.starts_with("HTTP/1.1 200"), "{r:?}");
    assert!(
        r.contains("Connection: close"),
        "a reply shipped during drain must close the connection: {r:?}"
    );
    assert_eq!(body_of(&r).bool_field("partial"), Some(true));
    let mut rest = Vec::new();
    let eof = s.read_to_end(&mut rest);
    assert!(
        matches!(eof, Ok(0)),
        "no further frames after drain: {eof:?}"
    );

    drainer.join().expect("drain coordinator must not panic");
    handle.join();
}

#[test]
fn cached_replies_are_byte_identical_and_die_with_their_dataset_version() {
    let handle = start(ServeConfig {
        response_cache_bytes: 1 << 20,
        keepalive_idle: Duration::from_millis(150),
        ..test_config()
    });
    let detect = frame(
        "POST",
        "/v1/detect",
        br#"{"dataset":"hotels","rule":"address -> region"}"#,
        None,
    );

    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    s.write_all(&detect).expect("send");
    let first = read_one_response(&mut s);
    assert!(first.starts_with("HTTP/1.1 200"), "{first:?}");
    s.write_all(&detect).expect("send again");
    let second = read_one_response(&mut s);
    assert_eq!(
        body_text(&first),
        body_text(&second),
        "a cache hit must replay the populating reply byte-for-byte"
    );

    // Replace the dataset: the version bump makes every prior entry
    // unreachable, so the same request is recomputed against the new
    // data — observably different bytes, not a stale replay.
    let admin = frame(
        "POST",
        "/admin/datasets",
        br#"{"name":"hotels","csv":"address,region\na1,r1\na1,r2\n","types":"c,c"}"#,
        None,
    );
    s.write_all(&admin).expect("send admin replace");
    let replaced = read_one_response(&mut s);
    assert!(replaced.starts_with("HTTP/1.1 200"), "{replaced:?}");
    s.write_all(&detect).expect("send after replace");
    let third = read_one_response(&mut s);
    assert!(third.starts_with("HTTP/1.1 200"), "{third:?}");
    assert_ne!(
        body_text(&first),
        body_text(&third),
        "a dataset mutation must invalidate its cached replies"
    );
    stop(handle);
}

#[test]
fn content_length_smuggling_attempts_are_rejected() {
    let handle = start(ServeConfig {
        keepalive_idle: Duration::from_millis(100),
        ..test_config()
    });

    // A signed length, two agreeing lengths, and two conflicting
    // lengths: every one is the classic request-smuggling ambiguity, and
    // every one must die as 400 before any body byte is interpreted.
    let attempts: [&[u8]; 3] = [
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: +5\r\n\r\nAAAAA",
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nAAAAA",
        b"POST /v1/detect HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 45\r\n\r\nAAGET /smuggled HTTP/1.1\r\nHost: t\r\n\r\n",
    ];
    for attempt in attempts {
        let resp = raw(&handle, attempt);
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "smuggling attempt must be rejected outright: {:?} -> {resp:?}",
            String::from_utf8_lossy(attempt)
        );
        assert_eq!(error_code_of(&resp), "bad_request");
        assert!(
            resp.contains("Connection: close"),
            "an unparseable frame must not leave the connection open: {resp:?}"
        );
    }

    // The server is unharmed.
    let resp = deptree::serve::query(&client(&handle), "GET", "/healthz", None)
        .expect("healthz after smuggling attempts");
    assert_eq!(resp.status, 200);
    stop(handle);
}
