//! Engine-level guarantees of the anytime contract:
//!
//! * budget exhaustion is **deterministic** — a fixed seed and a fixed
//!   node budget reproduce the identical sound prefix;
//! * deadlines are **respected** — adversarially wide searches return
//!   within twice the requested wall-clock budget with `complete ==
//!   false` and only sound dependencies;
//! * **no public library function panics** on arbitrary relations.

mod common;

use deptree::core::engine::{Budget, BudgetKind, CancelToken, Exec};
use deptree::core::{Dependency, Fd, Interval, NedAtom, SimFn};
use deptree::discovery::{
    cd, cfd, conditional, cords, dc, dd, ecfd, fastfd, ffd, md, mfd, mvd, ned, nud, od, pacman,
    pfd, schemes, sd, tane,
};
use deptree::metrics::Metric;
use deptree::quality::{cqa, dedup, detect, repair, stream};
use deptree::relation::{AttrId, AttrSet, Relation, RelationBuilder, Value, ValueType};
use deptree::synth::Rng;
use std::time::{Duration, Instant};

/// A wide, collision-rich relation whose FD lattice is far too large to
/// exhaust within a tight budget.
fn wide_relation(n_attrs: usize, n_rows: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RelationBuilder::new();
    for a in 0..n_attrs {
        b = b.attr(format!("w{a}"), ValueType::Categorical);
    }
    for _ in 0..n_rows {
        b = b.row(
            (0..n_attrs)
                .map(|_| Value::str(format!("v{}", rng.random_range(0..3u8))))
                .collect(),
        );
    }
    b.build().expect("consistent arity")
}

/// A relation with *planted* FDs: two random key columns plus derived
/// columns that are deterministic functions of the keys, so
/// `{k0,k1} -> d_i` (and various derived-to-derived FDs) are guaranteed
/// to hold while the rest of the lattice still needs searching.
fn planted_relation(n_derived: usize, n_rows: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = RelationBuilder::new()
        .attr("k0", ValueType::Categorical)
        .attr("k1", ValueType::Categorical);
    for d in 0..n_derived {
        b = b.attr(format!("d{d}"), ValueType::Categorical);
    }
    for _ in 0..n_rows {
        let k0 = rng.random_range(0..5u8) as usize;
        let k1 = rng.random_range(0..5u8) as usize;
        let mut row = vec![Value::str(format!("k{k0}")), Value::str(format!("k{k1}"))];
        for d in 0..n_derived {
            // Deterministic in (k0, k1): the planted FDs cannot break.
            row.push(Value::str(format!("v{}", (k0 * 7 + k1 * 3 + d) % 4)));
        }
        b = b.row(row);
    }
    b.build().expect("consistent arity")
}

#[test]
fn node_budget_exhaustion_is_deterministic_with_sound_prefix() {
    let r = planted_relation(8, 80, 0xDE7E);
    let full = tane::discover(
        &r,
        &tane::TaneConfig {
            max_lhs: 4,
            max_error: 0.0,
        },
    );
    assert!(!full.fds.is_empty(), "fixture must admit some FDs");
    // Scan budgets upward until the partial prefix is non-empty while the
    // search is still truncated — the anytime sweet spot must exist.
    let mut witnessed = false;
    for budget in [8u64, 16, 32, 64, 128, 256, 512] {
        let run = |_: ()| {
            tane::discover_bounded(
                &r,
                &tane::TaneConfig {
                    max_lhs: 4,
                    max_error: 0.0,
                },
                &Exec::new(Budget::default().with_max_nodes(budget)),
            )
        };
        let a = run(());
        let b = run(());
        // Determinism: identical budget → identical outcome, bit for bit.
        assert_eq!(
            a.result.fds, b.result.fds,
            "budget {budget} not deterministic"
        );
        assert_eq!(a.complete, b.complete);
        assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited);
        if !a.complete {
            assert_eq!(a.exhausted, Some(BudgetKind::Nodes));
            // Amortized polling may let the count overshoot by at most
            // one poll interval (currently 16 ticks; 64 is a safe cap).
            assert!(a.stats.nodes_visited <= budget + 64);
            // Soundness: every emitted FD genuinely holds.
            for fd in &a.result.fds {
                assert!(fd.holds(&r), "unsound partial FD {fd}");
            }
            // Prefix property: partial results are a subset of the full run.
            for fd in &a.result.fds {
                assert!(full.fds.contains(fd), "{fd} not in the complete result");
            }
            if !a.result.fds.is_empty() {
                witnessed = true;
            }
        }
    }
    assert!(
        witnessed,
        "no budget produced a non-empty truncated prefix — fixture too easy"
    );
}

/// Acceptance criterion: an adversarial wide relation with a 50 ms
/// deadline must return within twice the deadline, report
/// `complete == false`, and emit only sound dependencies.
#[test]
fn deadline_is_respected_on_adversarial_width() {
    let r = wide_relation(14, 120, 0x71DE);
    let deadline = Duration::from_millis(50);

    // TANE: exponential lattice in max_lhs.
    let t0 = Instant::now();
    let t = tane::discover_bounded(
        &r,
        &tane::TaneConfig {
            max_lhs: 8,
            max_error: 0.0,
        },
        &Exec::new(Budget::default().with_deadline(deadline)),
    );
    let tane_elapsed = t0.elapsed();
    assert!(
        tane_elapsed < deadline * 2,
        "TANE took {tane_elapsed:?} against a {deadline:?} deadline"
    );
    assert!(!t.complete, "the lattice cannot finish in 50ms");
    assert_eq!(t.exhausted, Some(BudgetKind::Deadline));
    for fd in &t.result.fds {
        assert!(fd.holds(&r), "unsound FD {fd} under deadline pressure");
    }

    // FastFD: quadratic pair scan + exponential cover search.
    let t0 = Instant::now();
    let f = fastfd::discover_bounded(&r, &Exec::new(Budget::default().with_deadline(deadline)));
    let fastfd_elapsed = t0.elapsed();
    assert!(
        fastfd_elapsed < deadline * 2,
        "FastFD took {fastfd_elapsed:?} against a {deadline:?} deadline"
    );
    for fd in &f.result.fds {
        assert!(fd.holds(&r), "unsound FD {fd} under deadline pressure");
    }
    if !f.complete {
        assert_eq!(f.exhausted, Some(BudgetKind::Deadline));
    }
}

#[test]
fn cancellation_token_stops_discovery() {
    let r = wide_relation(10, 60, 0xCA);
    let token = CancelToken::new();
    token.cancel();
    let out = tane::discover_bounded(
        &r,
        &tane::TaneConfig {
            max_lhs: 4,
            max_error: 0.0,
        },
        &Exec::with_cancel(Budget::default(), token),
    );
    assert!(!out.complete);
    assert_eq!(out.exhausted, Some(BudgetKind::Cancelled));
}

/// Sweep every public library entry point over adversarial relation
/// shapes (empty, single-row, all-null columns, mixed types, garbled
/// strings): none may panic. Budgets keep each case cheap.
#[test]
fn no_public_function_panics_on_arbitrary_relations() {
    let mut rng = Rng::seed_from_u64(0x5AFE);
    for case in 0..common::CASES {
        let r = common::arbitrary_relation(&mut rng);
        let exec = || Exec::new(Budget::default().with_max_nodes(500));
        let attrs: Vec<AttrId> = r.schema().ids().collect();
        let (a0, a1) = (attrs[0], attrs[attrs.len() - 1]);
        let m0 = Metric::default_for(r.schema().ty(a0));
        let m1 = Metric::default_for(r.schema().ty(a1));

        // Discovery, all families.
        let t = tane::discover_bounded(
            &r,
            &tane::TaneConfig {
                max_lhs: 2,
                max_error: 0.1,
            },
            &exec(),
        );
        let _ = fastfd::discover_bounded(&r, &exec());
        let _ = cords::discover(&r, &cords::CordsConfig::default());
        let _ = pfd::discover_bounded(&r, &pfd::PfdConfig::default(), &exec());
        let _ = nud::discover_bounded(&r, &nud::NudConfig::default(), &exec());
        let _ = cfd::ctane_bounded(&r, &cfd::CfdConfig::default(), &exec());
        let _ = ecfd::discover_bounded(&r, &ecfd::ECfdConfig::default(), &exec());
        let _ = mvd::discover_bounded(&r, &mvd::MvdConfig::default(), &exec());
        let _ = schemes::discover_fhds(&r, &schemes::SchemeConfig::default());
        let _ = schemes::discover_amvds(&r, &schemes::SchemeConfig::default());
        let _ = schemes::discover_ofds(&r);
        let _ = mfd::discover_bounded(&r, &mfd::MfdConfig::default(), &exec());
        let _ = ned::discover_lhs_bounded(
            &r,
            vec![NedAtom::new(a1, m1.clone(), 1.0)],
            &ned::NedConfig::default(),
            &exec(),
        );
        let _ = dd::discover_bounded(&r, &dd::DdConfig::default(), &exec());
        let _ = conditional::discover_cdds(&r, &conditional::ConditionalConfig::default());
        let _ = conditional::discover_cmds(
            &r,
            AttrSet::single(a1),
            &conditional::ConditionalConfig::default(),
        );
        let _ = cd::discover_incremental(
            &r,
            &[SimFn::single(a0, m0, 1.0)],
            &SimFn::single(a1, m1, 1.0),
            &cd::CdConfig::default(),
        );
        let _ = pacman::instantiate(
            &r,
            &pacman::PacTemplate {
                lhs: vec![a0],
                rhs: vec![a1],
            },
            &pacman::PacManConfig::default(),
        );
        let _ = ffd::discover_bounded(&r, &ffd::FfdConfig::default(), &exec());
        let mds = md::discover_bounded(&r, AttrSet::single(a1), &md::MdConfig::default(), &exec());
        let _ = od::discover_bounded(&r, &od::OdConfig::default(), &exec());
        let _ = dc::discover_bounded(&r, &dc::DcConfig::default(), &exec());
        let _ = sd::discover_sd(&r, a0, a1, 0.8);
        let _ = sd::csd_tableau_bounded(&r, a0, a1, Interval::new(-2.0, 2.0), 0.8, &exec());

        // Quality, over whatever the discoveries produced.
        if r.n_attrs() >= 2 {
            let fd = Fd::new(r.schema(), AttrSet::single(a0), AttrSet::single(a1));
            let rules: Vec<Box<dyn Dependency>> = vec![Box::new(fd.clone())];
            let _ = detect::run(&r, &rules);
            let _ = repair::repair_fds_bounded(&r, std::slice::from_ref(&fd), 5, &exec());
            let _ = repair::deletion_repair_bounded(&r, &rules, &exec());
            let _ = cqa::consistent_rows_bounded(&r, &rules, &exec());
            let md_rules: Vec<deptree::core::Md> = mds.result.into_iter().map(|s| s.md).collect();
            let _ = dedup::cluster_bounded(&r, &md_rules, &exec());
        }

        // Streaming speed constraints are total on adversarial shapes
        // too (empty series, all-null columns, duplicate timestamps).
        let numeric: Vec<AttrId> = r
            .schema()
            .iter()
            .filter(|(_, a)| a.ty == ValueType::Numeric)
            .map(|(id, _)| id)
            .collect();
        if let (Some(&t), Some(&y)) = (numeric.first(), numeric.last()) {
            let sc = stream::SpeedConstraint::symmetric(2.0);
            let _ = stream::speed_violations(&r, t, y, sc);
            let (repaired, changed) = stream::screen_repair(&r, t, y, sc);
            assert_eq!(repaired.n_rows(), r.n_rows());
            assert!(changed.iter().all(|&row| row < r.n_rows()));
        }

        // Serialization round trip never panics either.
        let _ = deptree::relation::to_csv(&r);

        // Sound prefixes even on garbage: spot-check TANE's output.
        for fd in t.result.fds.iter().take(3) {
            let _ = fd.holds(&r);
        }
        let _ = case;
    }
}
